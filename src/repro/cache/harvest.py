"""Harvesting the keyspace log (steps 1–2 for Redis).

The reward of an eviction — time until the evicted item is next
accessed — is not in any single log record, because "Redis does not
maintain state for evicted items.  Instead, we reconstruct this
information during step 1 by looking ahead in the logs to when the
item next appears" (§3).  :func:`reconstruct_rewards` performs exactly
that look-ahead; evictions whose victim never reappears get the
censoring cap (evicting a never-again-used item is the best possible
outcome).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.audit.ledger import DecisionLedger
from repro.cache.eviction import candidate_features
from repro.cache.keyspace_log import KeyspaceEvent, parse_keyspace_line
from repro.core.columns import DatasetColumns
from repro.core.features import Featurizer
from repro.core.harvest import DEFAULT_BATCH_SIZE, HarvestRNG, harvest_columns
from repro.core.learners.cb import PerActionFeaturesLearner
from repro.core.policies import Policy, UniformRandomPolicy
from repro.core.propensity import DeclaredPropensityModel
from repro.core.types import ActionSpace, Context, Dataset, Interaction, RewardRange
from repro.obs.metrics import get_metrics
from repro.obs.tracing import get_tracer

#: Censoring cap for "never accessed again", in workload time units.
DEFAULT_REWARD_CAP = 2000.0


def _context_from_candidates(
    candidates: Sequence[tuple[str, float, float, float, float]]
) -> Context:
    context: dict[str, float] = {}
    for slot, (_key, idle, freq, size, age) in enumerate(candidates):
        context[f"cand{slot}_idle"] = idle
        context[f"cand{slot}_freq"] = freq
        context[f"cand{slot}_size"] = size
        context[f"cand{slot}_age"] = age
    return context


def reconstruct_rewards(
    events: Sequence[KeyspaceEvent],
    reward_cap: float = DEFAULT_REWARD_CAP,
) -> list[tuple[KeyspaceEvent, float]]:
    """Pair each EVICT event with its look-ahead reward.

    One forward pass: for every key, collect the sorted times of its
    GETs; for each eviction, binary-search the first access after the
    eviction time.  Rewards are clipped at ``reward_cap`` (also the
    value assigned when the key never reappears).
    """
    import bisect

    access_times: dict[str, list[float]] = {}
    for event in events:
        if event.kind == "GET":
            access_times.setdefault(event.key, []).append(event.time)
    # Log shippers may reorder lines; the look-ahead keys on
    # timestamps, so sort each key's accesses before binary search.
    for times in access_times.values():
        times.sort()
    rewarded = []
    for event in events:
        if event.kind != "EVICT":
            continue
        times = access_times.get(event.key, [])
        index = bisect.bisect_right(times, event.time)
        if index < len(times):
            reward = min(times[index] - event.time, reward_cap)
        else:
            reward = reward_cap
        rewarded.append((event, reward))
    return rewarded


def candidate_reward_matrix(
    events: Sequence[KeyspaceEvent],
    sample_size: int = 5,
    reward_cap: float = DEFAULT_REWARD_CAP,
) -> tuple[list[KeyspaceEvent], np.ndarray]:
    """Per-slot look-ahead rewards for every logged eviction point.

    The full-feedback analogue of :func:`reconstruct_rewards`: because
    the keyspace log names *every sampled candidate* (not just the
    victim), the time-to-next-access look-ahead works for any slot the
    policy might have evicted.  Returns the EVICT events alongside an
    ``(N, sample_size)`` reward matrix — rows align with the events,
    entry ``[t, s]`` is the capped time until candidate ``s``'s key
    reappears after eviction time ``t`` (slots beyond the row's sample
    hold the cap, but are never eligible).  This is what lets
    :func:`resample_eviction_columns` replay the same decision points
    under a different eviction policy.
    """
    import bisect

    access_times: dict[str, list[float]] = {}
    for event in events:
        if event.kind == "GET":
            access_times.setdefault(event.key, []).append(event.time)
    for times in access_times.values():
        times.sort()
    evictions = [event for event in events if event.kind == "EVICT"]
    rewards = np.full((len(evictions), sample_size), reward_cap)
    for row, event in enumerate(evictions):
        for slot, (key, *_features) in enumerate(event.candidates):
            if slot >= sample_size:
                break
            times = access_times.get(key, [])
            index = bisect.bisect_right(times, event.time)
            if index < len(times):
                rewards[row, slot] = min(times[index] - event.time, reward_cap)
    return evictions, rewards


def _coerce_events(lines_or_events) -> list[KeyspaceEvent]:
    """Parse raw log lines into events; pass parsed events through."""
    events: list[KeyspaceEvent] = []
    for item in lines_or_events:
        if isinstance(item, str):
            parsed = parse_keyspace_line(item)
            if parsed is not None:
                events.append(parsed)
        else:
            events.append(item)
    return events


def eviction_decision_points(
    lines_or_events,
    sample_size: int = 5,
    reward_cap: float = DEFAULT_REWARD_CAP,
) -> tuple[list[Context], list, np.ndarray, np.ndarray]:
    """Precompute the harvestable decision points of a keyspace log.

    Returns ``(contexts, eligible, timestamps, rewards)`` — one row
    per EVICT event: the candidate-feature context, the per-row
    eligible slots, the event time, and the ``(N, sample_size)``
    look-ahead reward matrix of :func:`candidate_reward_matrix`.
    This is the whole deterministic prepare step of an eviction
    harvest, shared by :func:`resample_eviction_columns` and the
    shard-input builder (:func:`exploration_shard_inputs`) — the
    decision points depend only on the log, never on the harvesting
    policy or RNG.
    """
    events = _coerce_events(lines_or_events)
    evictions, rewards = candidate_reward_matrix(events, sample_size, reward_cap)
    if not evictions:
        raise ValueError("no EVICT events to resample")
    contexts = [
        _context_from_candidates(event.candidates[:sample_size])
        for event in evictions
    ]
    eligible = [
        tuple(range(min(len(event.candidates), sample_size))) or (0,)
        for event in evictions
    ]
    timestamps = np.array([event.time for event in evictions])
    return contexts, eligible, timestamps, rewards


def resample_eviction_columns(
    lines_or_events,
    policy: Policy,
    rng: HarvestRNG,
    sample_size: int = 5,
    reward_cap: float = DEFAULT_REWARD_CAP,
    batch_size: int = DEFAULT_BATCH_SIZE,
    ledger: Optional[DecisionLedger] = None,
) -> DatasetColumns:
    """Replay logged eviction points under ``policy``, in batches.

    The cache instance of the batch harvest engine: every EVICT event
    in the keyspace log becomes a decision point whose candidate
    features form the context (see :func:`eviction_decision_points`);
    ``policy`` re-decides all of them through
    :meth:`~repro.core.policies.Policy.act_batch`, and the revealed
    reward is the chosen candidate's look-ahead time-to-next-access
    from :func:`candidate_reward_matrix`.  Eligibility is per-row
    (only the slots actually sampled at that decision).  Output is
    columnar and bit-identical for any ``batch_size`` under a fixed
    generator.
    """
    events = _coerce_events(lines_or_events)
    with get_tracer().span(
        "harvest.cache", sample_size=sample_size, batched=True
    ) as span:
        contexts, eligible, timestamps, rewards = eviction_decision_points(
            events, sample_size, reward_cap
        )

        def reveal(indices: np.ndarray, actions: np.ndarray) -> np.ndarray:
            return rewards[indices, actions]

        columns = harvest_columns(
            policy,
            contexts,
            reveal,
            rng,
            eligible=eligible,
            action_space=eviction_action_space(sample_size),
            batch_size=batch_size,
            reward_range=RewardRange(0.0, reward_cap, maximize=True),
            scenario="cache",
            timestamps=timestamps,
            ledger=ledger,
        )
        span.set(rows=columns.n, events=len(events))
    get_metrics().counter("harvest.rows", scenario="cache").inc(columns.n)
    return columns


def exploration_shard_inputs(job, registry):
    """Shard-input builder for coordinated cache harvests.

    See :data:`repro.core.coordinator.SCENARIO_BUILDERS`.  Recognized
    ``job.config`` keys: ``seed`` (workload + sim + logging policy),
    ``capacity``, ``n_big``, ``n_small``, ``sample_size``,
    ``reward_cap``.  The keyspace log is regenerated by replaying the
    big-small workload through :class:`~repro.cache.sim.CacheSim` —
    deterministic in the config, so every worker rebuilds identical
    decision points.  Note ``job.rows`` counts workload *requests*;
    the harvested row count is the number of EVICT events the sim
    produces (the coordinator plans shards over the latter).
    """
    from repro.cache.eviction import random_eviction_policy
    from repro.cache.sim import CacheSim
    from repro.cache.workload import BigSmallWorkload
    from repro.core.coordinator import HarvestInputs
    from repro.simsys.random_source import RandomSource

    config = job.config
    seed = int(config.get("seed", 0))
    sample_size = int(config.get("sample_size", 5))
    reward_cap = float(config.get("reward_cap", DEFAULT_REWARD_CAP))
    workload = BigSmallWorkload(
        n_big=int(config.get("n_big", 20)),
        n_small=int(config.get("n_small", 200)),
        randomness=RandomSource(seed, _name="harvest-wl"),
    )
    sim = CacheSim(
        int(config.get("capacity", 150)),
        random_eviction_policy(),
        sample_size=sample_size,
        seed=seed,
    )
    result = sim.run(workload.requests(job.rows), keep_log=True)
    contexts, eligible, timestamps, rewards = eviction_decision_points(
        result.log_lines, sample_size, reward_cap
    )

    def reveal(indices: np.ndarray, actions: np.ndarray) -> np.ndarray:
        return rewards[indices, actions]

    return HarvestInputs(
        contexts=tuple(contexts),
        reward_fn=reveal,
        eligible=tuple(eligible),
        action_space=eviction_action_space(sample_size),
        reward_range=RewardRange(0.0, reward_cap, maximize=True),
        timestamps=timestamps,
    )


def eviction_action_space(sample_size: int) -> ActionSpace:
    """Action space for eviction decisions: slots into the sample.

    The eligible actions depend on the context — near-empty caches
    yield samples smaller than ``maxmemory-samples``, so only the slots
    actually present (detected by their ``cand{i}_size`` feature) are
    eligible.  This is the paper's "the set A may depend on x" in the
    flesh.
    """

    def eligibility(context):
        eligible = [
            slot
            for slot in range(sample_size)
            if f"cand{slot}_size" in context
        ]
        return eligible or [0]

    return ActionSpace(sample_size, eligibility=eligibility)


def eviction_dataset_from_log(
    lines_or_events,
    logging_policy: Optional[Policy] = None,
    sample_size: int = 5,
    reward_cap: float = DEFAULT_REWARD_CAP,
) -> Dataset:
    """Keyspace log → exploration dataset for eviction decisions.

    Accepts raw log lines (str) or parsed :class:`KeyspaceEvent`
    objects.  ``logging_policy`` defaults to Redis's uniform random
    eviction (the Table 3 collection policy) for propensity
    declaration.
    """
    with get_tracer().span(
        "harvest.cache", sample_size=sample_size
    ) as span:
        events: list[KeyspaceEvent] = []
        dropped = 0
        for item in lines_or_events:
            if isinstance(item, str):
                parsed = parse_keyspace_line(item)
                if parsed is not None:
                    events.append(parsed)
                else:
                    dropped += 1
            else:
                events.append(item)
        if not events:
            raise ValueError("no parseable keyspace events")
        model = DeclaredPropensityModel(logging_policy or UniformRandomPolicy())
        dataset = Dataset(
            action_space=eviction_action_space(sample_size),
            reward_range=RewardRange(0.0, reward_cap, maximize=True),
        )
        for event, reward in reconstruct_rewards(events, reward_cap):
            context = _context_from_candidates(event.candidates)
            actions = list(range(len(event.candidates)))
            propensity = model.propensity(context, event.victim_slot, actions)
            dataset.append(
                Interaction(
                    context=context,
                    action=event.victim_slot,
                    reward=reward,
                    propensity=propensity,
                    timestamp=event.time,
                )
            )
        span.set(rows=len(dataset), events=len(events), dropped=dropped)
    metrics = get_metrics()
    metrics.counter("harvest.rows", scenario="cache").inc(len(dataset))
    if dropped:
        metrics.counter("harvest.dropped", scenario="cache").inc(dropped)
    return dataset


def train_cb_eviction(
    dataset: Dataset,
    passes: int = 3,
    learning_rate: float = 0.2,
    name: str = "CB policy",
) -> Policy:
    """Train the greedy CB eviction policy of Table 3.

    A shared model over candidate features (idle, freq, size, age)
    predicts time-to-next-access; the policy greedily evicts the
    candidate predicted to stay cold longest.  Table 3's lesson is that
    this *succeeds at its own objective* yet fails on hit rate, because
    the greedy reward ignores the opportunity cost of the bytes.
    """
    if passes <= 0:
        raise ValueError("passes must be positive")
    learner = PerActionFeaturesLearner(
        features_of=candidate_features,
        featurizer=Featurizer(n_dims=32),
        learning_rate=learning_rate,
        maximize=True,
        name=name,
    )
    for _ in range(passes):
        learner.observe_all(dataset)
    return learner.policy()
