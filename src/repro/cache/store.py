"""The key-value store with byte accounting.

Tracks, per resident item, the access metadata Redis keeps (or that
our custom logging records): last access time, access count, insert
time, and size.  Memory is accounted in bytes against a ``max_memory``
budget; the cache itself never decides *what* to evict — that's the
eviction engine's job — it only reports when eviction is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class CacheItem:
    """A resident cache entry and its access metadata."""

    key: str
    size: int
    insert_time: float
    last_access: float
    access_count: int = 1
    #: Absolute expiry time (Redis EXPIRE); None = lives forever.
    expires_at: Optional[float] = None

    def idle_time(self, now: float) -> float:
        """Seconds since last access (LRU's criterion)."""
        return now - self.last_access

    def age(self, now: float) -> float:
        """Seconds since insertion."""
        return now - self.insert_time

    def frequency(self, now: float) -> float:
        """Observed access rate since insertion (LFU's criterion)."""
        age = max(self.age(now), 1e-9)
        return self.access_count / age

    def is_expired(self, now: float) -> bool:
        """Whether the item's TTL has elapsed."""
        return self.expires_at is not None and now >= self.expires_at

    def remaining_ttl(self, now: float) -> float:
        """Seconds of TTL left (inf for non-volatile items)."""
        if self.expires_at is None:
            return float("inf")
        return max(self.expires_at - now, 0.0)


class KeyValueStore:
    """A byte-budgeted in-memory store (the data plane of our Redis)."""

    def __init__(self, max_memory: int) -> None:
        if max_memory <= 0:
            raise ValueError("max_memory must be positive")
        self.max_memory = max_memory
        self.used_memory = 0
        self.expired_count = 0
        self._items: dict[str, CacheItem] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    @property
    def keys(self) -> list[str]:
        """All resident keys (insertion order)."""
        return list(self._items)

    def item(self, key: str) -> Optional[CacheItem]:
        """The resident item for ``key``, or None."""
        return self._items.get(key)

    def access(self, key: str, now: float) -> bool:
        """A GET: returns hit/miss and updates metadata on hit.

        Expired items are removed lazily on access (Redis semantics)
        and the access counts as a miss.
        """
        item = self._items.get(key)
        if item is None:
            return False
        if item.is_expired(now):
            self.evict(key)
            self.expired_count += 1
            return False
        item.last_access = now
        item.access_count += 1
        return True

    def needs_eviction(self, incoming_size: int) -> bool:
        """Whether inserting ``incoming_size`` bytes requires eviction."""
        return self.used_memory + incoming_size > self.max_memory

    def insert(
        self, key: str, size: int, now: float, ttl: Optional[float] = None
    ) -> None:
        """A SET of a new key; caller must have made room first.

        ``ttl``, if given, marks the item volatile: it expires ``ttl``
        seconds from ``now`` (lazy removal on the next access).
        """
        if size <= 0:
            raise ValueError("item size must be positive")
        if size > self.max_memory:
            raise ValueError(
                f"item of {size} bytes cannot fit in a {self.max_memory}-byte cache"
            )
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive when given")
        if key in self._items:
            raise KeyError(f"key {key!r} already resident; access it instead")
        if self.needs_eviction(size):
            raise RuntimeError(
                "insert would exceed max_memory; evict before inserting"
            )
        self._items[key] = CacheItem(
            key=key,
            size=size,
            insert_time=now,
            last_access=now,
            expires_at=now + ttl if ttl is not None else None,
        )
        self.used_memory += size

    def evict(self, key: str) -> CacheItem:
        """Remove ``key`` and release its memory; returns the item."""
        item = self._items.pop(key, None)
        if item is None:
            raise KeyError(f"cannot evict non-resident key {key!r}")
        self.used_memory -= item.size
        return item

    def memory_utilization(self) -> float:
        """Fraction of the budget in use."""
        return self.used_memory / self.max_memory
