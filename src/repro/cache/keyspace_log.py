"""Keyspace event logging (our "custom logging" for Redis).

Redis "maintains per-item contextual information (e.g., last accessed
time) but does not log it by default, so we added custom logging for
this purpose" (§3).  Our log has two record kinds:

- ``GET`` lines — every access, hit or miss, with the key.  These are
  what the reward reconstruction scans forward through.
- ``EVICT`` lines — every eviction decision: the sampled candidates
  with their feature blocks, the victim, and (if code inspection has
  pinned the policy) nothing else; propensities are *inferred* at
  harvest time.

Format::

    <time> GET <key> <HIT|MISS> size=<bytes>
    <time> EVICT victim=<slot> cands=<key@idle@freq@size@age>,<...>
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cache.eviction import EvictionEvent


@dataclass(frozen=True)
class KeyspaceEvent:
    """One parsed keyspace log record."""

    time: float
    kind: str  # "GET" or "EVICT"
    key: str = ""  # GET: the key; EVICT: the victim key
    hit: bool = False
    size: int = 0
    victim_slot: int = -1
    candidates: tuple[tuple[str, float, float, float, float], ...] = ()
    # each candidate: (key, idle, freq, size, age)


def format_get_line(time: float, key: str, hit: bool, size: int) -> str:
    """Serialize a GET record."""
    status = "HIT" if hit else "MISS"
    return f"{time:.3f} GET {key} {status} size={size}"


def format_evict_line(event: EvictionEvent) -> str:
    """Serialize an EVICT record from an engine event."""
    parts = []
    for slot, key in enumerate(event.candidate_keys):
        idle = event.context.get(f"cand{slot}_idle", 0.0)
        freq = event.context.get(f"cand{slot}_freq", 0.0)
        size = event.context.get(f"cand{slot}_size", 0.0)
        age = event.context.get(f"cand{slot}_age", 0.0)
        parts.append(f"{key}@{idle:.3f}@{freq:.6f}@{size:g}@{age:.3f}")
    return (
        f"{event.time:.3f} EVICT victim={event.victim_slot} "
        f"cands={','.join(parts)}"
    )


def format_keyspace_line(event: "KeyspaceEvent") -> str:
    """Serialize a parsed event back to its line form."""
    if event.kind == "GET":
        return format_get_line(event.time, event.key, event.hit, event.size)
    parts = [
        f"{key}@{idle:.3f}@{freq:.6f}@{size:g}@{age:.3f}"
        for key, idle, freq, size, age in event.candidates
    ]
    return f"{event.time:.3f} EVICT victim={event.victim_slot} cands={','.join(parts)}"


_GET_RE = re.compile(
    r"^(?P<time>[\d.]+) GET (?P<key>\S+) (?P<status>HIT|MISS) size=(?P<size>\d+)$"
)
_EVICT_RE = re.compile(
    r"^(?P<time>[\d.]+) EVICT victim=(?P<slot>\d+) cands=(?P<cands>\S+)$"
)


def parse_keyspace_line(line: str) -> Optional[KeyspaceEvent]:
    """Parse one keyspace log line; None for malformed lines."""
    line = line.strip()
    match = _GET_RE.match(line)
    if match is not None:
        return KeyspaceEvent(
            time=float(match.group("time")),
            kind="GET",
            key=match.group("key"),
            hit=match.group("status") == "HIT",
            size=int(match.group("size")),
        )
    match = _EVICT_RE.match(line)
    if match is not None:
        candidates = []
        for blob in match.group("cands").split(","):
            fields = blob.split("@")
            if len(fields) != 5:
                return None
            key, idle, freq, size, age = fields
            try:
                candidates.append(
                    (key, float(idle), float(freq), float(size), float(age))
                )
            except ValueError:
                return None  # truncated numeric field
        slot = int(match.group("slot"))
        if slot >= len(candidates):
            return None
        return KeyspaceEvent(
            time=float(match.group("time")),
            kind="EVICT",
            key=candidates[slot][0],
            victim_slot=slot,
            candidates=tuple(candidates),
        )
    return None


def write_keyspace_log(lines: Sequence[str], path: str) -> None:
    """Write pre-formatted lines to a log file."""
    with open(path, "w", encoding="utf-8") as f:
        for line in lines:
            f.write(line + "\n")


def read_keyspace_log(path: str) -> list[KeyspaceEvent]:
    """Read a keyspace log, skipping malformed lines."""
    events = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            event = parse_keyspace_line(line)
            if event is not None:
                events.append(event)
    return events
