"""The cache simulator: workload → store + eviction engine → log.

Ground truth for Table 3: "to obtain the ground truth performance of a
policy, we deploy and measure it in our prototype."  Deploying a policy
here means running this simulator with it and reading the hit rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.cache.eviction import EvictionEvent, SampledEvictionEngine
from repro.cache.keyspace_log import format_evict_line, format_get_line
from repro.cache.store import KeyValueStore
from repro.cache.workload import CacheRequest
from repro.core.policies import Policy
from repro.simsys.random_source import RandomSource


@dataclass
class CacheSimResult:
    """Outcome of one cache run."""

    policy_name: str
    n_requests: int
    hits: int
    misses: int
    evictions: int
    hit_rate: float
    log_lines: list[str] = field(default_factory=list)
    eviction_events: list[EvictionEvent] = field(default_factory=list)

    def __repr__(self) -> str:
        return (
            f"CacheSimResult({self.policy_name}: hit_rate="
            f"{self.hit_rate:.1%}, n={self.n_requests}, "
            f"evictions={self.evictions})"
        )


class CacheSim:
    """Run an eviction policy over a request stream."""

    def __init__(
        self,
        max_memory: int,
        policy: Policy,
        sample_size: int = 5,
        seed: int = 0,
        pool_size: int = 0,
    ) -> None:
        self.max_memory = max_memory
        self.policy = policy
        self.sample_size = sample_size
        self.seed = seed
        self.pool_size = pool_size

    def run(
        self,
        requests: Iterable[CacheRequest],
        warmup_fraction: float = 0.1,
        n_requests_hint: Optional[int] = None,
        keep_log: bool = True,
    ) -> CacheSimResult:
        """Serve the request stream; report post-warmup hit rate.

        ``warmup_fraction`` excludes the cold-start misses from the hit
        rate (the log still records them; the harvest needs the full
        stream for reward reconstruction).
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup fraction must be in [0, 1)")
        store = KeyValueStore(self.max_memory)
        engine = SampledEvictionEngine(
            self.policy,
            sample_size=self.sample_size,
            randomness=RandomSource(self.seed, _name="cache-run"),
            pool_size=self.pool_size,
        )
        requests = list(requests)
        warmup_cutoff = int(len(requests) * warmup_fraction)
        hits = misses = evictions = 0
        log_lines: list[str] = []
        eviction_events: list[EvictionEvent] = []
        for index, request in enumerate(requests):
            counted = index >= warmup_cutoff
            if store.access(request.key, request.time):
                if counted:
                    hits += 1
                if keep_log:
                    log_lines.append(
                        format_get_line(request.time, request.key, True, request.size)
                    )
                continue
            if counted:
                misses += 1
            if keep_log:
                log_lines.append(
                    format_get_line(request.time, request.key, False, request.size)
                )
            for event in engine.make_room(store, request.size, request.time):
                evictions += 1
                eviction_events.append(event)
                if keep_log:
                    log_lines.append(format_evict_line(event))
            store.insert(
                request.key, request.size, request.time,
                ttl=getattr(request, "ttl", None),
            )
        total_counted = hits + misses
        return CacheSimResult(
            policy_name=self.policy.name,
            n_requests=len(requests),
            hits=hits,
            misses=misses,
            evictions=evictions,
            hit_rate=hits / total_counted if total_counted else 0.0,
            log_lines=log_lines,
            eviction_events=eviction_events,
        )
