"""Sampled eviction: the engine and the policy zoo.

Redis under ``maxmemory`` pressure does not scan every key: it samples
``maxmemory-samples`` keys uniformly at random and applies the eviction
policy to the sample.  §5 highlights this as a feature for harvesting:
"we can reduce the action space and data collection by considering
only a random subsample of the items.  This is already how eviction
works in Redis."

The CB framing: the *context* is the feature block of each sampled
candidate, the *action* is the index of the candidate evicted, the
*propensity* is the policy's probability of picking that index given
the sample.  (The sample itself is uniform, so candidate-set
randomness needs no correction — every resident key is equally likely
to appear in the sample.)

Two engine modes mirror Redis history:

- plain sampling (``pool_size=0``) — Redis 2.x; every decision is a
  fresh sample, propensities are clean.  This is the mode used for
  *data collection* under the random policy.
- eviction pool (``pool_size>0``) — Redis ≥3.0 keeps a small pool of
  the best eviction candidates seen in past samples, which sharply
  improves how quickly a score-based policy finds poor-value items.
  Used for *ground-truth deployments* of deterministic policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.cache.store import CacheItem, KeyValueStore
from repro.core.policies import Policy, UniformRandomPolicy
from repro.core.types import Context
from repro.simsys.random_source import RandomSource

#: Redis's default ``maxmemory-samples``.
DEFAULT_SAMPLE_SIZE = 5

#: Redis's eviction pool size (EVPOOL_SIZE).
DEFAULT_POOL_SIZE = 16

#: Finite stand-in for "no TTL" in feature vectors.
TTL_FEATURE_CAP = 1e5


def candidate_slot_context(items: Sequence[CacheItem], now: float) -> Context:
    """Pack the sampled candidates' features into one flat context.

    Slot ``i`` of the sample contributes ``cand{i}_idle``,
    ``cand{i}_freq``, ``cand{i}_size``, ``cand{i}_age``, and
    ``cand{i}_ttl`` — the per-item access history and size of Table 1's
    caching row.  TTLs are capped at :data:`TTL_FEATURE_CAP` so
    non-volatile items stay representable as finite features.
    """
    context: dict[str, float] = {}
    for index, item in enumerate(items):
        context[f"cand{index}_idle"] = item.idle_time(now)
        context[f"cand{index}_freq"] = item.frequency(now)
        context[f"cand{index}_size"] = float(item.size)
        context[f"cand{index}_age"] = item.age(now)
        context[f"cand{index}_ttl"] = min(
            item.remaining_ttl(now), TTL_FEATURE_CAP
        )
    return context


def candidate_features(context: Context, action: int) -> Context:
    """Extract one candidate's feature block from a slot context.

    This is the ``features_of`` hook for
    :class:`repro.core.learners.cb.PerActionFeaturesLearner`: the
    learner scores each candidate on its own features, independent of
    its slot position.
    """
    prefix = f"cand{action}_"
    return {
        name[len(prefix):]: value
        for name, value in context.items()
        if name.startswith(prefix)
    }


def _slot_value(context: Context, action: int, feature: str) -> float:
    return float(context.get(f"cand{action}_{feature}", 0.0))


class ScoredEvictionPolicy(Policy):
    """A deterministic eviction policy defined by a victim score.

    ``score_of(context, slot)`` returns the eviction priority of the
    candidate in ``slot`` — **higher score means evict sooner**.  The
    policy deterministically picks the argmax (ties toward the lowest
    slot), and exposes :meth:`score` so the eviction-pool engine can
    rank candidates across samples.
    """

    def __init__(
        self, score_of: Callable[[Context, int], float], name: str
    ) -> None:
        self._score_of = score_of
        self.name = name

    def score(self, context: Context, action: int) -> float:
        """Eviction priority of one candidate (higher = evict sooner)."""
        return float(self._score_of(context, action))

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        scores = np.array([self.score(context, a) for a in actions])
        probs = np.zeros(len(actions))
        probs[int(np.argmax(scores))] = 1.0
        return probs

    def probabilities_batch(self, columns) -> np.ndarray:
        # The score callable is opaque, so scores are gathered per row,
        # but the argmax/point-mass assembly is vectorized and the
        # estimators avoid any further per-row dispatch.
        if not columns.canonical_order:
            from repro.core.columns import loop_probabilities

            return loop_probabilities(self, columns)
        scores = np.zeros((columns.n, columns.n_actions))
        for row, context in enumerate(columns.contexts):
            for action in columns.eligible_lists[row]:
                scores[row, action] = self.score(context, action)
        return columns.point_mass_matrix(columns.masked_argbest(scores))


def random_eviction_policy() -> Policy:
    """Evict a uniformly random candidate (Redis ``allkeys-random``)."""
    policy = UniformRandomPolicy()
    policy.name = "random-eviction"
    return policy


def lru_policy() -> ScoredEvictionPolicy:
    """Evict the least-recently-used candidate (max idle time)."""
    return ScoredEvictionPolicy(
        lambda context, a: _slot_value(context, a, "idle"), name="lru"
    )


def lfu_policy() -> ScoredEvictionPolicy:
    """Evict the least-frequently-used candidate (min access rate)."""
    return ScoredEvictionPolicy(
        lambda context, a: -_slot_value(context, a, "freq"), name="lfu"
    )


def ttl_policy() -> ScoredEvictionPolicy:
    """Evict the oldest candidate (max time since insertion)."""
    return ScoredEvictionPolicy(
        lambda context, a: _slot_value(context, a, "age"), name="ttl-oldest"
    )


def volatile_ttl_policy() -> ScoredEvictionPolicy:
    """Evict the candidate closest to expiring (Redis ``volatile-ttl``).

    Items about to expire are the cheapest possible evictions — they
    were leaving anyway.  Non-volatile candidates carry the TTL feature
    cap, so they are only chosen when no expiring candidate is in the
    sample (ties break by idle time, LRU-style).
    """

    def score(context: Context, action: int) -> float:
        ttl = _slot_value(context, action, "ttl")
        idle = _slot_value(context, action, "idle")
        return -ttl + 1e-9 * idle

    return ScoredEvictionPolicy(score, name="volatile-ttl")


def freq_size_policy(
    prior_weight: float = 0.25, prior_horizon: float = 400.0
) -> ScoredEvictionPolicy:
    """Evict the candidate with the worst frequency/size ratio.

    The hand-designed winner of Table 3: an item's value per byte is
    its access rate divided by its size; evicting the lowest ratio
    maximizes hits per byte of capacity.  "A policy manually designed
    to take size into account (by optimizing the ratio of access
    frequency to size) has a hitrate 10 percentage points higher."

    The access rate is estimated as ``(count − 1) / age`` plus a weak
    optimism prior ``prior_weight / (age + prior_horizon)``: the raw
    ``count / age`` estimate is infinitely optimistic about freshly
    inserted items (count 1, age ≈ 0), which would shield every new
    large item from eviction exactly when evicting it is cheapest.  See
    :func:`naive_freq_size_policy` for the uncorrected variant, kept
    for the estimator-quality ablation.
    """
    if prior_weight < 0 or prior_horizon <= 0:
        raise ValueError("prior must be non-negative with positive horizon")

    def score(context: Context, action: int) -> float:
        freq = _slot_value(context, action, "freq")
        age = max(_slot_value(context, action, "age"), 1e-9)
        size = max(_slot_value(context, action, "size"), 1e-9)
        # freq == count/age, so count - 1 == freq*age - 1.
        established_rate = max(freq - 1.0 / age, 0.0)
        rate = established_rate + prior_weight / (age + prior_horizon)
        return -rate / size

    return ScoredEvictionPolicy(score, name="freq/size")


def naive_freq_size_policy() -> ScoredEvictionPolicy:
    """Frequency/size with the raw ``count / age`` rate estimate.

    Suffers fresh-item optimism: a just-inserted item has a huge
    apparent access rate, so new large items survive exactly when
    evicting them is cheapest.  Kept for ablation against
    :func:`freq_size_policy`.
    """

    def score(context: Context, action: int) -> float:
        size = max(_slot_value(context, action, "size"), 1e-9)
        return -_slot_value(context, action, "freq") / size

    return ScoredEvictionPolicy(score, name="freq/size-naive")


def cb_eviction_policy(predict, name: str = "CB policy") -> ScoredEvictionPolicy:
    """Greedy CB eviction from a learned score function.

    Evicts the candidate with the *largest* predicted
    time-to-next-access (the Table 1 CB reward).
    """
    return ScoredEvictionPolicy(predict, name=name)


@dataclass(frozen=True)
class EvictionEvent:
    """One eviction decision, as custom logging would record it."""

    time: float
    victim_key: str
    victim_slot: int
    propensity: float
    candidate_keys: tuple[str, ...]
    context: Context


class SampledEvictionEngine:
    """Redis-style eviction: sample candidates, let the policy choose.

    With ``pool_size > 0`` and a :class:`ScoredEvictionPolicy`, keeps
    an eviction pool of the best candidates seen so far (Redis ≥3.0
    behaviour); otherwise every decision sees only its fresh sample.
    """

    def __init__(
        self,
        policy: Policy,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        randomness: Optional[RandomSource] = None,
        pool_size: int = 0,
    ) -> None:
        if sample_size <= 0:
            raise ValueError("sample_size must be positive")
        if pool_size < 0:
            raise ValueError("pool_size must be non-negative")
        if pool_size > 0 and not isinstance(policy, ScoredEvictionPolicy):
            raise ValueError(
                "the eviction pool needs a ScoredEvictionPolicy to rank "
                "candidates across samples"
            )
        self.policy = policy
        self.sample_size = sample_size
        self.pool_size = pool_size
        self._pool: list[str] = []
        self._randomness = randomness or RandomSource(0, _name="eviction")
        self._sample_rng = self._randomness.child("candidate-sample")
        self._policy_rng = self._randomness.child("policy-choice").generator

    def evict_one(self, store: KeyValueStore, now: float) -> EvictionEvent:
        """Sample candidates, pick a victim, evict it from the store."""
        keys = store.keys
        if not keys:
            raise RuntimeError("nothing to evict from an empty store")
        k = min(self.sample_size, len(keys))
        sampled_keys = self._sample_rng.sample(keys, k)
        if self.pool_size > 0:
            seen = set(sampled_keys)
            pooled = [
                key for key in self._pool if key in store and key not in seen
            ]
            candidate_keys = sampled_keys + pooled
        else:
            candidate_keys = sampled_keys
        items = [store.item(key) for key in candidate_keys]
        context = candidate_slot_context(items, now)
        actions = list(range(len(candidate_keys)))
        if self.pool_size > 0:
            assert isinstance(self.policy, ScoredEvictionPolicy)
            scores = [self.policy.score(context, a) for a in actions]
            slot = int(np.argmax(scores))
            propensity = 1.0  # deterministic given the pool state
            ranked = sorted(
                (a for a in actions if a != slot),
                key=lambda a: scores[a],
                reverse=True,
            )
            self._pool = [candidate_keys[a] for a in ranked[: self.pool_size]]
        else:
            slot, propensity = self.policy.act(context, actions, self._policy_rng)
        victim_key = candidate_keys[slot]
        store.evict(victim_key)
        return EvictionEvent(
            time=now,
            victim_key=victim_key,
            victim_slot=slot,
            propensity=propensity,
            candidate_keys=tuple(candidate_keys),
            context=context,
        )

    def make_room(
        self, store: KeyValueStore, incoming_size: int, now: float
    ) -> list[EvictionEvent]:
        """Evict until ``incoming_size`` bytes fit; returns the events."""
        events = []
        while store.needs_eviction(incoming_size) and len(store) > 0:
            events.append(self.evict_one(store, now))
        return events
