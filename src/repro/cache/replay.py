"""Replay-based counterfactual evaluation of eviction policies.

§2 lists model-based off-policy evaluation — "model the system workings
and evaluate a policy against this model" — as the alternative to
importance sampling, biased exactly insofar as the model is wrong.
For caching, an unusually good model is available *from the logs
themselves*: the GET stream fully determines the workload, and a cache
is deterministic given its policy, so replaying the logged requests
through a simulated cache under a candidate policy predicts that
policy's hit rate.

This is how one escapes Table 3's trap offline: the greedy CB reward
(time-to-next-access) cannot see the opportunity cost of bytes, but a
replay *can*, because it charges every policy the full long-term
consequences of its evictions.  The cost is the model assumption —
here, that the request stream is policy-independent (true for caches:
clients ask for what they ask for) — plus simulation time per candidate.

The ``ext-replay`` benchmark shows replay evaluation ranks freq/size
above the CB policy from logs alone, matching deployment ground truth.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.cache.keyspace_log import KeyspaceEvent, parse_keyspace_line
from repro.cache.sim import CacheSim, CacheSimResult
from repro.cache.workload import CacheRequest
from repro.core.policies import Policy


def requests_from_log(
    lines_or_events: Iterable[Union[str, KeyspaceEvent]],
) -> list[CacheRequest]:
    """Reconstruct the request stream from a keyspace log.

    Every GET line (hit or miss) is one request; EVICT lines are the
    *logging* policy's decisions and are deliberately ignored — the
    whole point is that the replayed cache makes its own.
    """
    requests = []
    for item in lines_or_events:
        event = parse_keyspace_line(item) if isinstance(item, str) else item
        if event is None or event.kind != "GET":
            continue
        requests.append(
            CacheRequest(time=event.time, key=event.key, size=event.size)
        )
    if not requests:
        raise ValueError("log contains no GET events to replay")
    return requests


def replay_evaluate(
    lines_or_events: Iterable[Union[str, KeyspaceEvent]],
    policy: Policy,
    max_memory: int,
    sample_size: int = 10,
    pool_size: int = 0,
    seed: int = 0,
    warmup_fraction: float = 0.1,
) -> CacheSimResult:
    """Counterfactually evaluate ``policy`` against a logged GET stream.

    Replays the stream through a fresh simulated cache running
    ``policy`` instead of the logging policy.

    Returns the full :class:`CacheSimResult`; ``.hit_rate`` is the
    model-based estimate of the policy's deployed hit rate.
    """
    requests = requests_from_log(lines_or_events)
    sim = CacheSim(
        max_memory, policy, sample_size=sample_size, seed=seed,
        pool_size=pool_size,
    )
    return sim.run(requests, warmup_fraction=warmup_fraction, keep_log=False)


def replay_rank(
    lines_or_events: Sequence[Union[str, KeyspaceEvent]],
    policies: Sequence[Policy],
    max_memory: int,
    **kwargs,
) -> list[tuple[Policy, float]]:
    """Replay-evaluate several candidates; best hit rate first.

    A requested ``pool_size`` is applied only to policies that can use
    the eviction pool (scored policies); stochastic ones replay with
    plain sampling.
    """
    from repro.cache.eviction import ScoredEvictionPolicy

    requests = requests_from_log(lines_or_events)
    scored = []
    for policy in policies:
        pool = (
            kwargs.get("pool_size", 0)
            if isinstance(policy, ScoredEvictionPolicy)
            else 0
        )
        sim = CacheSim(
            max_memory,
            policy,
            sample_size=kwargs.get("sample_size", 10),
            seed=kwargs.get("seed", 0),
            pool_size=pool,
        )
        result = sim.run(
            requests,
            warmup_fraction=kwargs.get("warmup_fraction", 0.1),
            keep_log=False,
        )
        scored.append((policy, result.hit_rate))
    return sorted(scored, key=lambda pair: pair[1], reverse=True)
