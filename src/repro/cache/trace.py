"""Trace-driven cache workloads.

Downstream users rarely have the paper's synthetic big/small workload —
they have *traces*.  This module reads and writes a minimal
whitespace-separated trace format compatible with common cache-trace
dumps::

    <time> <key> <size>
    0.000 user:1017 512
    0.040 asset:/img/logo.png 20480

Lines starting with ``#`` and malformed lines are skipped (and
counted), per the scavenging contract.  The resulting requests drive
:class:`~repro.cache.sim.CacheSim` exactly like the synthetic
workloads, so Table 3's pipeline (collect under random eviction →
harvest → train → replay-evaluate) runs unchanged on real traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, TextIO, Union

from repro.cache.workload import CacheRequest


@dataclass
class TraceStats:
    """What a trace parse found (and dropped)."""

    n_requests: int
    n_dropped: int
    n_keys: int
    total_bytes_requested: int
    max_item_size: int


def parse_trace_line(line: str) -> Optional[CacheRequest]:
    """Parse one ``time key size`` line; None for comments/garbage."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    fields = line.split()
    if len(fields) != 3:
        return None
    try:
        time = float(fields[0])
        size = int(fields[2])
    except ValueError:
        return None
    if size <= 0 or time < 0:
        return None
    return CacheRequest(time=time, key=fields[1], size=size)


def read_trace(
    source: Union[str, TextIO, Iterable[str]],
) -> tuple[list[CacheRequest], TraceStats]:
    """Read a trace; returns (requests in time order, stats).

    Out-of-order timestamps are tolerated (shipping reorders lines) —
    requests are sorted by time before returning.
    """
    own = isinstance(source, str)
    handle = open(source, "r", encoding="utf-8") if own else source
    try:
        requests: list[CacheRequest] = []
        dropped = 0
        for line in handle:
            request = parse_trace_line(line)
            if request is None:
                if line.strip() and not line.strip().startswith("#"):
                    dropped += 1
                continue
            requests.append(request)
    finally:
        if own:
            handle.close()
    if not requests:
        raise ValueError("trace contains no parseable requests")
    requests.sort(key=lambda r: r.time)
    sizes: dict[str, int] = {}
    for request in requests:
        sizes[request.key] = request.size
    stats = TraceStats(
        n_requests=len(requests),
        n_dropped=dropped,
        n_keys=len(sizes),
        total_bytes_requested=sum(r.size for r in requests),
        max_item_size=max(r.size for r in requests),
    )
    return requests, stats


def write_trace(
    requests: Sequence[CacheRequest],
    destination: Union[str, TextIO],
    header: bool = True,
) -> int:
    """Write requests in trace format; returns lines written."""
    own = isinstance(destination, str)
    handle = open(destination, "w", encoding="utf-8") if own else destination
    try:
        count = 0
        if header:
            handle.write("# time key size\n")
        for request in requests:
            handle.write(f"{request.time:.6f} {request.key} {request.size}\n")
            count += 1
        return count
    finally:
        if own:
            handle.close()


def working_set_bytes(requests: Iterable[CacheRequest]) -> int:
    """Bytes needed to hold every distinct key (capacity planning)."""
    sizes: dict[str, int] = {}
    for request in requests:
        sizes[request.key] = request.size
    return sum(sizes.values())
