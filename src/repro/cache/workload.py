"""Cache workloads.

:class:`BigSmallWorkload` is the Table 3 workload: "a few
frequently-queried large items and many less-frequently-queried small
items.  The large items are queried twice as frequently but are four
times as big: it is thus more efficient to cache the small items."

:class:`ZipfWorkload` is the standard skewed-popularity workload for
additional experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.simsys.random_source import RandomSource


@dataclass(frozen=True)
class CacheRequest:
    """One GET; on a miss the item of ``size`` bytes is inserted.

    ``ttl`` (seconds), if set, makes the inserted item volatile.
    """

    time: float
    key: str
    size: int
    ttl: float = None


class BigSmallWorkload:
    """The big/small item workload of Table 3.

    ``n_big`` large items, each ``frequency_ratio``× as likely to be
    queried as any one of the ``n_small`` small items, and
    ``size_ratio``× as big.  Per byte, a big item is
    ``frequency_ratio / size_ratio`` (default 2/4 = 0.5×) as valuable
    as a small one — greedy recency/frequency policies keep the bigs
    anyway, which is the trap.
    """

    def __init__(
        self,
        n_big: int = 100,
        n_small: int = 1000,
        small_size: int = 1,
        size_ratio: int = 4,
        frequency_ratio: float = 2.0,
        randomness: RandomSource = None,
    ) -> None:
        if n_big <= 0 or n_small <= 0:
            raise ValueError("need at least one item of each kind")
        if small_size <= 0 or size_ratio <= 0:
            raise ValueError("sizes must be positive")
        if frequency_ratio <= 0:
            raise ValueError("frequency ratio must be positive")
        self.n_big = n_big
        self.n_small = n_small
        self.small_size = small_size
        self.big_size = small_size * size_ratio
        self.frequency_ratio = frequency_ratio
        self.randomness = randomness or RandomSource(0, _name="bigsmall")
        big_mass = n_big * frequency_ratio
        total = big_mass + n_small
        self._p_big_group = big_mass / total

    @property
    def total_bytes(self) -> int:
        """Bytes needed to hold every item."""
        return self.n_big * self.big_size + self.n_small * self.small_size

    def size_of(self, key: str) -> int:
        """Size of the item behind a key."""
        if key.startswith("big-"):
            return self.big_size
        if key.startswith("small-"):
            return self.small_size
        raise ValueError(f"unknown key {key!r}")

    def requests(self, n: int) -> Iterator[CacheRequest]:
        """Yield ``n`` i.i.d. requests at unit time steps."""
        if n <= 0:
            raise ValueError("n must be positive")
        group_rng = self.randomness.child("group")
        item_rng = self.randomness.child("item")
        for step in range(n):
            if group_rng.bernoulli(self._p_big_group):
                key = f"big-{item_rng.randint(0, self.n_big)}"
                size = self.big_size
            else:
                key = f"small-{item_rng.randint(0, self.n_small)}"
                size = self.small_size
            yield CacheRequest(time=float(step), key=key, size=size)


class ZipfWorkload:
    """Zipf-popularity requests over a uniform-size keyspace.

    Items get mildly heterogeneous sizes (drawn once per key) so that
    size-aware policies have signal here too.
    """

    def __init__(
        self,
        n_items: int = 1000,
        alpha: float = 0.9,
        min_size: int = 1,
        max_size: int = 8,
        randomness: RandomSource = None,
    ) -> None:
        if n_items <= 0:
            raise ValueError("need at least one item")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if not 0 < min_size <= max_size:
            raise ValueError("need 0 < min_size <= max_size")
        self.n_items = n_items
        self.alpha = alpha
        self.randomness = randomness or RandomSource(0, _name="zipf")
        size_rng = self.randomness.child("sizes")
        self._sizes = [
            size_rng.randint(min_size, max_size + 1) for _ in range(n_items)
        ]
        weights = 1.0 / np.power(np.arange(1, n_items + 1), alpha)
        self._probabilities = weights / weights.sum()

    def size_of(self, key: str) -> int:
        """Size of the item behind a key."""
        return self._sizes[int(key.split("-")[1])]

    def requests(self, n: int) -> Iterator[CacheRequest]:
        """Yield ``n`` i.i.d. Zipf-popular requests at unit time steps."""
        if n <= 0:
            raise ValueError("n must be positive")
        rng = self.randomness.child("draws").generator
        indices = rng.choice(self.n_items, size=n, p=self._probabilities)
        for step, index in enumerate(indices):
            yield CacheRequest(
                time=float(step), key=f"item-{index}", size=self._sizes[int(index)]
            )
