"""Caching scenario (Redis), simulated.

A byte-budgeted key-value cache with Redis-style *sampled* eviction:
when memory runs out, a uniform random sample of resident keys is
drawn and the eviction policy picks the victim among them.  That
sampling is precisely the "existing randomness" the paper harvests —
the candidate set is random, so the victim choice has a well-defined
propensity.

The reward for an eviction (Table 1, CB row) is the *time to the next
access of the evicted item*: evicting something that won't be needed
for a long time is good.  Redis retains no state for evicted keys, so
the reward is reconstructed at harvest time by looking ahead in the
keyspace log (§3).

Table 3's punchline lives here: on a big/small workload, greedy CB
eviction ≈ LRU ≈ random, all beaten by ~10 points by a hand-built
frequency/size policy — long-term opportunity cost is invisible to the
greedy reward.
"""

from repro.cache.store import CacheItem, KeyValueStore
from repro.cache.eviction import (
    EvictionEvent,
    SampledEvictionEngine,
    candidate_features,
    cb_eviction_policy,
    freq_size_policy,
    lfu_policy,
    lru_policy,
    naive_freq_size_policy,
    random_eviction_policy,
    ttl_policy,
    volatile_ttl_policy,
)
from repro.cache.workload import BigSmallWorkload, CacheRequest, ZipfWorkload
from repro.cache.sim import CacheSim, CacheSimResult
from repro.cache.keyspace_log import (
    KeyspaceEvent,
    format_keyspace_line,
    parse_keyspace_line,
)
from repro.cache.harvest import (
    candidate_reward_matrix,
    eviction_dataset_from_log,
    reconstruct_rewards,
    resample_eviction_columns,
    train_cb_eviction,
)
from repro.cache.replay import replay_evaluate, replay_rank, requests_from_log
from repro.cache.trace import (
    TraceStats,
    read_trace,
    working_set_bytes,
    write_trace,
)

__all__ = [
    "CacheItem",
    "KeyValueStore",
    "EvictionEvent",
    "SampledEvictionEngine",
    "candidate_features",
    "random_eviction_policy",
    "lru_policy",
    "lfu_policy",
    "ttl_policy",
    "volatile_ttl_policy",
    "freq_size_policy",
    "naive_freq_size_policy",
    "cb_eviction_policy",
    "BigSmallWorkload",
    "ZipfWorkload",
    "CacheRequest",
    "CacheSim",
    "CacheSimResult",
    "KeyspaceEvent",
    "format_keyspace_line",
    "parse_keyspace_line",
    "candidate_reward_matrix",
    "eviction_dataset_from_log",
    "reconstruct_rewards",
    "resample_eviction_columns",
    "train_cb_eviction",
    "replay_evaluate",
    "replay_rank",
    "requests_from_log",
    "TraceStats",
    "read_trace",
    "write_trace",
    "working_set_bytes",
]
