"""Harvesting Randomness to Optimize Distributed Systems — reproduction.

A faithful, from-scratch reproduction of the HotNets 2017 paper.  The
package is organized as:

- :mod:`repro.core` — the paper's contribution: contextual-bandit
  exploration data, off-policy estimators (IPS, SNIPS, DM, DR,
  trajectory IS), confidence bounds (Eq. 1), CB learners, propensity
  inference, and the scavenge→infer→evaluate harvesting pipeline.
- :mod:`repro.simsys` — a discrete-event simulation kernel.
- :mod:`repro.loadbalance` — an Nginx-like reverse-proxy simulation
  (Table 2, Fig. 5) plus the Front Door hierarchy (Fig. 6).
- :mod:`repro.cache` — a Redis-like cache with sampled eviction
  (Table 3).
- :mod:`repro.machinehealth` — a synthetic Azure-Compute machine-health
  scenario with full-feedback logs (Figs. 3–4).
- :mod:`repro.chaos` — fault injection for exploration-coverage
  experiments (§5).
- :mod:`repro.audit` — HKDF-derived RNG streams and the hash-chained,
  verifiable decision ledger (ADR-0001/0002).
- :mod:`repro.obs` — tracing, metrics, manifests, streaming health
  monitors, and the run-history dashboard.
- :mod:`repro.serve` — the online policy server closing the
  harvest → evaluate → deploy loop (ADR-0003): live decisions,
  shadow/canary candidates, OPE-gated hot swaps.
"""

__version__ = "1.0.0"

from repro import core

__all__ = ["core", "__version__"]
