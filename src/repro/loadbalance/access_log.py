"""Nginx-style access log writing and parsing.

The paper's methodology is *non-invasive*: it scavenges logs the
system already produces.  Nginx's logging modules can emit the
variables we need (``$upstream_addr``, ``$upstream_response_time``,
``$upstream_connect_time``, custom headers with per-upstream connection
counts) — "existing logging modules already provided what we needed,
and simply needed to be configured" (§5).

We emit a custom ``log_format`` close to what such a configuration
produces, one line per request, and parse it back.  Harvesting then
operates on the *text log*, not on in-memory simulation state — keeping
the reproduction honest about where the data comes from.

Format (space-separated, quoted request field, key=value extensions)::

    <time> <client> "<method> /<kind> HTTP/1.1" <status> rt=<total>
    upstream=<id> urt=<latency> conns=<c0>:<c1>:...:<ck>
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class AccessLogEntry:
    """One parsed access-log line."""

    time: float
    client_key: str
    kind: str
    status: int
    upstream: int
    upstream_response_time: float
    connections: tuple[int, ...]
    request_weight: float = 1.0

    def context_record(self) -> dict:
        """The raw context record this entry encodes (for scavenging)."""
        record: dict = {
            "kind": self.kind,
            "request_weight": self.request_weight,
        }
        for server, conns in enumerate(self.connections):
            record[f"conns_{server}"] = conns
        return record


def format_access_log_line(entry: AccessLogEntry) -> str:
    """Serialize an entry in our Nginx-style log format."""
    conns = ":".join(str(c) for c in entry.connections)
    return (
        f"{entry.time:.6f} {entry.client_key} "
        f'"GET /{entry.kind} HTTP/1.1" {entry.status} '
        f"rt={entry.upstream_response_time:.6f} "
        f"upstream={entry.upstream} "
        f"urt={entry.upstream_response_time:.6f} "
        f"w={entry.request_weight:g} "
        f"conns={conns}"
    )


_LINE_RE = re.compile(
    r"^(?P<time>[\d.]+) (?P<client>\S+) "
    r'"GET /(?P<kind>\S+) HTTP/1\.1" (?P<status>\d+) '
    r"rt=(?P<rt>[\d.]+) "
    r"upstream=(?P<upstream>\d+) "
    r"urt=(?P<urt>[\d.]+) "
    r"w=(?P<weight>[\d.]+) "
    r"conns=(?P<conns>[\d:]+)$"
)


def parse_access_log_line(line: str) -> Optional[AccessLogEntry]:
    """Parse one log line; returns ``None`` for malformed lines.

    Scavengers must tolerate garbage — real logs contain truncated
    lines, rotations, and unrelated records.
    """
    match = _LINE_RE.match(line.strip())
    if match is None:
        return None
    try:
        return AccessLogEntry(
            time=float(match.group("time")),
            client_key=match.group("client"),
            kind=match.group("kind"),
            status=int(match.group("status")),
            upstream=int(match.group("upstream")),
            upstream_response_time=float(match.group("urt")),
            connections=tuple(
                int(c) for c in match.group("conns").split(":")
            ),
            request_weight=float(match.group("weight")),
        )
    except ValueError:
        # Truncated numerics (e.g. a cut-off "conns=3:") match the
        # regex shape but not the grammar; treat as a damaged line.
        return None


def write_access_log(entries: Sequence[AccessLogEntry], path: str) -> None:
    """Write entries to a log file, one line each."""
    with open(path, "w", encoding="utf-8") as f:
        for entry in entries:
            f.write(format_access_log_line(entry) + "\n")


def read_access_log(path: str) -> list[AccessLogEntry]:
    """Read a log file, silently skipping malformed lines."""
    entries = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            entry = parse_access_log_line(line)
            if entry is not None:
                entries.append(entry)
    return entries
