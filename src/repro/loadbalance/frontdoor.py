"""Hierarchical load balancing (Azure Front Door, Fig. 6).

§5: "Azure's edge proxy (Front Door) load balances over tens of
service endpoints, while standard load balancers distribute requests
within the local clusters.  This reduces the action space at each
level, allowing us to apply our methodology to both levels."

We simulate exactly that: an edge policy chooses a *cluster*
(seeing only per-cluster aggregate load — the edge cannot see
individual servers), then the cluster's local policy chooses a server
within it.  Each level logs its own exploration tuples with its own
(small) action space, so the Fig. 6 benchmark can compare the data
requirements of flat vs. hierarchical evaluation via Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.policies import Policy
from repro.core.types import ActionSpace, Dataset, Interaction, RewardRange
from repro.loadbalance.harvest import LATENCY_CAP
from repro.loadbalance.server import BackendServer, ServerConfig
from repro.loadbalance.workload import Workload
from repro.simsys.events import Simulator
from repro.simsys.metrics import PercentileTracker
from repro.simsys.random_source import RandomSource


@dataclass
class Cluster:
    """A named group of backends with its own local balancing policy."""

    name: str
    server_configs: list[ServerConfig]
    local_policy: Policy

    def __post_init__(self) -> None:
        if not self.server_configs:
            raise ValueError(f"cluster {self.name} has no servers")


@dataclass
class HierarchicalResult:
    """Outcome of a Front Door run: metrics plus per-level datasets."""

    mean_latency: float
    p99_latency: float
    n_requests: int
    edge_dataset: Dataset = field(default_factory=Dataset)
    cluster_datasets: dict[str, Dataset] = field(default_factory=dict)

    @property
    def edge_min_propensity(self) -> float:
        """ε at the edge level (drives Eq. 1 for cluster choice)."""
        return self.edge_dataset.min_propensity()


class FrontDoorSim:
    """Two-level routing: edge picks a cluster, cluster picks a server."""

    def __init__(
        self,
        clusters: Sequence[Cluster],
        edge_policy: Policy,
        workload: Workload,
        seed: int = 0,
        latency_noise: float = 0.01,
    ) -> None:
        if not clusters:
            raise ValueError("need at least one cluster")
        self.clusters = list(clusters)
        self.edge_policy = edge_policy
        self.workload = workload
        self.latency_noise = latency_noise
        self._randomness = RandomSource(seed, _name="frontdoor")
        self._servers: list[list[BackendServer]] = [
            [BackendServer(c) for c in cluster.server_configs]
            for cluster in self.clusters
        ]

    def _edge_context(self, weight: float) -> dict[str, float]:
        # The edge sees only aggregate load per cluster — the "stale or
        # incomplete contexts" situation of §5 in its mildest form.
        context = {
            f"cluster_conns_{index}": float(
                sum(s.open_connections for s in servers)
            )
            for index, servers in enumerate(self._servers)
        }
        context["req_weight"] = weight
        return context

    def _cluster_context(self, cluster_index: int, weight: float) -> dict[str, float]:
        context = {
            f"conns_{pos}": float(s.open_connections)
            for pos, s in enumerate(self._servers[cluster_index])
        }
        context["req_weight"] = weight
        return context

    def run(self, n_requests: int, warmup_fraction: float = 0.1) -> HierarchicalResult:
        """Serve requests through both levels, harvesting each level."""
        if n_requests <= 0:
            raise ValueError("n_requests must be positive")
        sim = Simulator()
        edge_rng = self._randomness.child("edge").generator
        local_rngs = [
            self._randomness.child(f"cluster-{i}").generator
            for i in range(len(self.clusters))
        ]
        noise_rng = self._randomness.child("noise")
        latencies = PercentileTracker("latency")
        warmup_cutoff = int(n_requests * warmup_fraction)

        reward_range = RewardRange(0.0, LATENCY_CAP, maximize=False)
        edge_dataset = Dataset(
            action_space=ActionSpace(
                len(self.clusters), labels=[c.name for c in self.clusters]
            ),
            reward_range=reward_range,
        )
        cluster_datasets = {
            cluster.name: Dataset(
                action_space=ActionSpace(len(cluster.server_configs)),
                reward_range=reward_range,
            )
            for cluster in self.clusters
        }

        cluster_actions = list(range(len(self.clusters)))

        def handle_arrival(request) -> None:
            edge_context = self._edge_context(request.weight)
            cluster_index, edge_p = self.edge_policy.act(
                edge_context, cluster_actions, edge_rng
            )
            cluster = self.clusters[cluster_index]
            servers = self._servers[cluster_index]
            local_context = self._cluster_context(cluster_index, request.weight)
            local_actions = list(range(len(servers)))
            server_index, local_p = cluster.local_policy.act(
                local_context, local_actions, local_rngs[cluster_index]
            )
            server = servers[server_index]
            latency = server.service_latency(request.weight, request.kind)
            if self.latency_noise > 0:
                latency = max(
                    0.001, latency + noise_rng.normal(0.0, self.latency_noise)
                )
            server.connect()
            if request.request_id >= warmup_cutoff:
                latencies.observe(latency)
            edge_dataset.append(
                Interaction(
                    context=edge_context,
                    action=cluster_index,
                    reward=latency,
                    propensity=edge_p,
                    timestamp=sim.now,
                )
            )
            cluster_datasets[cluster.name].append(
                Interaction(
                    context=local_context,
                    action=server_index,
                    reward=latency,
                    propensity=local_p,
                    timestamp=sim.now,
                )
            )
            sim.schedule(latency, lambda s=server, l=latency: s.disconnect(l))

        for request in self.workload.first_n(n_requests):
            sim.schedule_at(request.arrival_time, lambda r=request: handle_arrival(r))
        sim.run()

        return HierarchicalResult(
            mean_latency=latencies.mean(),
            p99_latency=latencies.p99(),
            n_requests=n_requests,
            edge_dataset=edge_dataset,
            cluster_datasets=cluster_datasets,
        )
