"""Load-balancing policies, as `repro.core` Policy objects.

The context presented to every policy is the decision-time snapshot the
proxy logs: per-server open-connection counts (``conns_<i>``) and the
request's type features (``req_<kind>``, ``req_weight``).  Expressing
the classic heuristics in this vocabulary is what lets one exploration
log evaluate all of them offline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.core.columns import as_decision_batch, loop_probabilities
from repro.core.policies import (
    ConstantPolicy,
    Policy,
    UniformRandomPolicy,
    _point_mass,
    sample_from_probabilities,
)
from repro.core.types import Context

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.columns import ContextColumns, DatasetColumns, EligibleSpec


def connection_count(context: Context, server: int) -> float:
    """Read a server's open-connection count out of a logged context."""
    return float(context.get(f"conns_{server}", 0.0))


def _connection_matrix(columns: "DatasetColumns") -> np.ndarray:
    """``(N, K)`` open-connection counts read from the logged contexts.

    Reuses the columnar view's memoized named-feature matrix (the
    trailing bias column is dropped), so every load-aware policy in a
    candidate set shares one extraction pass.
    """
    names = tuple(f"conns_{server}" for server in range(columns.n_actions))
    return columns.feature_matrix(names)[:, :-1]


class _LeastLoaded(Policy):
    """Route to the server with the fewest open connections.

    Nginx's ``least_conn``.  Ties break toward the lowest server id
    (deterministically), as Nginx's implementation effectively does for
    equal-weight peers.
    """

    name = "least-loaded"

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        chosen = min(actions, key=lambda a: (connection_count(context, a), a))
        return _point_mass(actions, chosen)

    def probabilities_batch(self, columns: "DatasetColumns") -> np.ndarray:
        if not columns.canonical_order:
            return loop_probabilities(self, columns)
        best = columns.masked_argbest(_connection_matrix(columns), maximize=False)
        return columns.point_mass_matrix(best)


def least_loaded_policy() -> Policy:
    """Route to the server with the fewest open connections."""
    return _LeastLoaded()


def send_to_policy(server: int) -> Policy:
    """The degenerate policy of Table 2: always route to one server."""
    return ConstantPolicy(server, name=f"send-to-{server}")


def random_policy() -> Policy:
    """Uniform random routing — Table 2's logging policy."""
    return UniformRandomPolicy()


def weighted_random_policy(weights: Sequence[float]) -> Policy:
    """Random routing with fixed server weights (Nginx ``weight=``)."""

    weights_arr = np.asarray(weights, dtype=float)
    if (weights_arr < 0).any() or weights_arr.sum() <= 0:
        raise ValueError("weights must be non-negative with positive sum")

    class _Weighted(Policy):
        name = "weighted-random[" + ",".join(f"{w:g}" for w in weights) + "]"

        def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
            local = np.array([weights_arr[a] for a in actions], dtype=float)
            if local.sum() <= 0:
                return np.full(len(actions), 1.0 / len(actions))
            return local / local.sum()

        def probabilities_batch(self, columns: "DatasetColumns") -> np.ndarray:
            if columns.n_actions > len(weights_arr):
                return loop_probabilities(self, columns)
            local = np.where(
                columns.eligible_mask, weights_arr[: columns.n_actions], 0.0
            )
            sums = local.sum(axis=1, keepdims=True)
            return np.where(sums > 0, local / np.where(sums > 0, sums, 1.0),
                            columns.uniform_matrix())

    return _Weighted()


def round_robin_policy(n_servers: int) -> Policy:
    """Cycle through servers.

    Stateful and deterministic per-request, but its *marginal* action
    distribution is uniform and independent of the context, so — per
    §2's "exploration scavenging" observation — its logs are usable
    with propensity ``1/n``.
    """
    state = {"next": 0}

    class _RoundRobin(Policy):
        name = f"round-robin[{n_servers}]"

        def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
            # Marginal distribution: uniform (used for propensities).
            return np.full(len(actions), 1.0 / len(actions))

        def probabilities_batch(self, columns: "DatasetColumns") -> np.ndarray:
            return columns.uniform_matrix()

        def act(
            self, context: Context, actions: Sequence[int], rng: np.random.Generator
        ) -> tuple[int, float]:
            action = actions[state["next"] % len(actions)]
            state["next"] += 1
            return action, 1.0 / len(actions)

        def act_batch(
            self,
            contexts: "Sequence[Context] | ContextColumns",
            eligible: "Optional[EligibleSpec]",
            rng: np.random.Generator,
        ) -> tuple[np.ndarray, np.ndarray]:
            """Continue the cycle across the batch — consumes no randomness.

            The rotation counter persists across calls, so splitting a
            harvest into batches of any size produces the identical
            action sequence (the determinism contract for stateful,
            non-randomizing policies).
            """
            batch = as_decision_batch(contexts, eligible)
            if batch.uniform_eligibility and batch.n > 0:
                lookup = np.asarray(batch.eligible_lists[0], dtype=np.int64)
                offsets = (state["next"] + np.arange(batch.n)) % len(lookup)
                actions_out = lookup[offsets]
                state["next"] += batch.n
            else:
                actions_out = np.empty(batch.n, dtype=np.int64)
                for row in range(batch.n):
                    row_eligible = batch.eligible_lists[row]
                    actions_out[row] = row_eligible[
                        state["next"] % len(row_eligible)
                    ]
                    state["next"] += 1
            return actions_out, 1.0 / batch.eligible_counts

    return _RoundRobin()


def power_of_two_policy(randomness_name: str = "p2c") -> Policy:
    """Power-of-two-choices: sample two servers, pick the less loaded.

    Genuinely randomized *and* load-aware.  Its propensity is exactly
    computable from the logged connection counts, making it an ideal
    harvesting source: for the less-loaded server ``i`` beaten only by
    ties, ``p_i = (1 + 2·|{j : c_j > c_i}| + |{j≠i : c_j = c_i}|−…)``
    — we compute it by enumeration over pairs, which is O(n²) but exact.
    """

    class _PowerOfTwo(Policy):
        name = "power-of-two"

        def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
            n = len(actions)
            if n == 1:
                return np.array([1.0])
            probs = np.zeros(n)
            # Enumerate ordered pairs (i, j), i != j, each w.p. 1/(n(n-1)).
            for first_index in range(n):
                for second_index in range(n):
                    if first_index == second_index:
                        continue
                    a, b = actions[first_index], actions[second_index]
                    ca, cb = connection_count(context, a), connection_count(context, b)
                    if ca < cb or (ca == cb and a < b):
                        probs[first_index] += 1.0
                    else:
                        probs[second_index] += 1.0
            return probs / probs.sum()

        def probabilities_batch(self, columns: "DatasetColumns") -> np.ndarray:
            k = columns.n_actions
            if not columns.uniform_eligibility or k == 1:
                return loop_probabilities(self, columns)
            counts = _connection_matrix(columns)
            ids = np.arange(k)
            # beats[t, i, j]: in the ordered draw (i, j), i wins.  Each
            # unordered pair is drawn in both orders, so a server's
            # probability is twice its win count over n(n-1) draws.
            beats = (counts[:, :, None] < counts[:, None, :]) | (
                (counts[:, :, None] == counts[:, None, :])
                & (ids[:, None] < ids[None, :])
            )
            wins = 2.0 * beats.sum(axis=2)
            return wins / wins.sum(axis=1, keepdims=True)

    return _PowerOfTwo()


def window_randomized_weights_policy(
    n_servers: int,
    window: int = 20,
    seed: int = 0,
    concentration: float = 0.5,
) -> Policy:
    """Randomize *traffic shares* per window instead of per request.

    §5's richer-exploration proposal: "instead of randomizing each
    request, a load balancer could randomize the share of traffic sent
    to each server during the next N requests.  In Nginx, this is
    easily implemented by randomizing the weights assigned to each
    server."  Every ``window`` requests, fresh weights are drawn from a
    Dirichlet(``concentration``); within the window requests follow
    those weights i.i.d.  Low concentration produces skewed windows —
    including near-"send everything to one server" episodes that
    per-request uniform randomization essentially never generates.

    The per-request propensity (the drawn weight of the chosen server)
    is still exact, so the logs remain harvestable.
    """
    if n_servers <= 1:
        raise ValueError("need at least two servers to balance")
    if window <= 0:
        raise ValueError("window must be positive")
    if concentration <= 0:
        raise ValueError("concentration must be positive")
    state = {
        "rng": np.random.default_rng(seed),
        "weights": np.full(n_servers, 1.0 / n_servers),
        "remaining": 0,
    }

    class _WindowRandomized(Policy):
        name = f"window-weights[w={window}]"

        def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
            local = np.array([state["weights"][a] for a in actions])
            return local / local.sum()

        def act(
            self, context: Context, actions: Sequence[int], rng: np.random.Generator
        ) -> tuple[int, float]:
            if state["remaining"] <= 0:
                state["weights"] = state["rng"].dirichlet(
                    np.full(n_servers, concentration)
                )
                # Keep every propensity strictly positive.
                state["weights"] = np.maximum(state["weights"], 1e-3)
                state["weights"] /= state["weights"].sum()
                state["remaining"] = window
            state["remaining"] -= 1
            probs = self.distribution(context, actions)
            index = int(rng.choice(len(actions), p=probs))
            return actions[index], float(probs[index])

        def act_batch(
            self,
            contexts: "Sequence[Context] | ContextColumns",
            eligible: "Optional[EligibleSpec]",
            rng: np.random.Generator,
        ) -> tuple[np.ndarray, np.ndarray]:
            """Sample whole windows at once, carrying state across batches.

            Walks the batch in window-aligned segments — drawing fresh
            Dirichlet weights from the policy's *own* seeded generator
            exactly when the scalar path would — then samples every row
            with one uniform from the caller's generator.  Window
            boundaries and weight draws therefore land on the same rows
            for any batch split, preserving the determinism contract.
            """
            batch = as_decision_batch(contexts, eligible)
            matrix = np.zeros((batch.n, batch.n_actions))
            start = 0
            while start < batch.n:
                if state["remaining"] <= 0:
                    weights = state["rng"].dirichlet(
                        np.full(n_servers, concentration)
                    )
                    weights = np.maximum(weights, 1e-3)
                    state["weights"] = weights / weights.sum()
                    state["remaining"] = window
                stop = min(batch.n, start + state["remaining"])
                state["remaining"] -= stop - start
                segment = np.where(
                    batch.eligible_mask[start:stop],
                    state["weights"][: batch.n_actions],
                    0.0,
                )
                matrix[start:stop] = segment / segment.sum(
                    axis=1, keepdims=True
                )
                start = stop
            return sample_from_probabilities(matrix, rng)

    return _WindowRandomized()


def cb_policy_name() -> str:
    """Display name used for learned CB policies in Table 2 outputs."""
    return "CB policy"
