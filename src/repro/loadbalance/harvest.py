"""Harvesting the load-balancer access log (steps 1–2 for Nginx).

Turns parsed :class:`~repro.loadbalance.access_log.AccessLogEntry`
records into exploration datasets: the context is the decision-time
snapshot the log line carries (connection counts + request features),
the action is the chosen upstream, and the reward is the *negative-ish*
request latency (we keep raw latency and minimize, per Table 1's CB
reward "[-] request latency").

For *generating* exploration data at scale the module also ships a
batched path: :func:`synthetic_decision_snapshots` draws decision-time
snapshots (connection counts + request features) without running the
event-driven proxy, and :func:`batch_exploration_columns` routes them
through any policy's :meth:`~repro.core.policies.Policy.act_batch`
with the Fig. 5 latency law fully vectorized — the per-request
feedback loop of :class:`~repro.loadbalance.proxy.LoadBalancerSim` is
deliberately absent, which is exactly what makes the rows independent
and batchable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.audit.ledger import DecisionLedger
from repro.audit.streams import ShardedNormal, StreamKey, StreamRegistry
from repro.core.harvest import (
    DEFAULT_BATCH_SIZE,
    HarvestPipeline,
    HarvestRNG,
    LogScavenger,
    harvest_columns,
)
from repro.core.columns import DatasetColumns
from repro.core.policies import Policy
from repro.core.propensity import (
    DeclaredPropensityModel,
    EmpiricalPropensityModel,
    PropensityModel,
)
from repro.core.types import ActionSpace, Context, Dataset, Interaction, RewardRange
from repro.loadbalance.access_log import AccessLogEntry
from repro.loadbalance.server import ServerConfig
from repro.loadbalance.workload import DEFAULT_MIX, RequestType
from repro.obs.metrics import get_metrics
from repro.obs.tracing import get_tracer
from repro.simsys.random_source import RandomSource

#: Latency cap (seconds) for the declared reward range.
LATENCY_CAP = 10.0


def _entry_context(entry: AccessLogEntry) -> Context:
    context: dict[str, float] = {
        f"conns_{server}": float(c) for server, c in enumerate(entry.connections)
    }
    context[f"req_{entry.kind}"] = 1.0
    context["req_weight"] = entry.request_weight
    return context


def lb_action_space(n_servers: int) -> ActionSpace:
    """Action space: one action per backend server."""
    return ActionSpace(n_servers, labels=[f"server-{i}" for i in range(n_servers)])


def lb_reward_range() -> RewardRange:
    """Latency in seconds, minimized."""
    return RewardRange(0.0, LATENCY_CAP, maximize=False)


def exploration_dataset_from_entries(
    entries: Sequence[AccessLogEntry],
    propensity_model: PropensityModel,
    n_servers: Optional[int] = None,
) -> Dataset:
    """Annotate parsed log entries with propensities → exploration data."""
    if not entries:
        raise ValueError("no log entries to harvest")
    if n_servers is None:
        n_servers = len(entries[0].connections)
    actions = list(range(n_servers))
    dataset = Dataset(
        action_space=lb_action_space(n_servers), reward_range=lb_reward_range()
    )
    with get_tracer().span(
        "harvest.loadbalance", n_servers=n_servers
    ) as span:
        for entry in entries:
            context = _entry_context(entry)
            propensity = propensity_model.propensity(
                context, entry.upstream, actions
            )
            dataset.append(
                Interaction(
                    context=context,
                    action=entry.upstream,
                    reward=entry.upstream_response_time,
                    propensity=propensity,
                    timestamp=entry.time,
                )
            )
        span.set(rows=len(dataset))
    get_metrics().counter("harvest.rows", scenario="loadbalance").inc(
        len(dataset)
    )
    return dataset


def access_log_scavenger() -> LogScavenger:
    """A :class:`LogScavenger` over *raw dict* records, for use with the
    generic :class:`~repro.core.harvest.HarvestPipeline`.

    Accepts dicts shaped like ``AccessLogEntry.__dict__`` (e.g. produced
    by JSON-ifying the access log).
    """

    def context_of(record: dict) -> Optional[Context]:
        connections = record.get("connections")
        if connections is None:
            return None
        context: dict[str, float] = {
            f"conns_{server}": float(c) for server, c in enumerate(connections)
        }
        context[f"req_{record.get('kind', 'unknown')}"] = 1.0
        context["req_weight"] = float(record.get("request_weight", 1.0))
        return context

    return LogScavenger(
        context_of=context_of,
        action_of=lambda record: int(record["upstream"]),
        reward_of=lambda record: float(record["upstream_response_time"]),
        timestamp_of=lambda record: float(record.get("time", 0.0)),
    )


def build_lb_pipeline(
    n_servers: int,
    logging_policy=None,
    entries_for_empirical: Optional[Sequence[AccessLogEntry]] = None,
) -> HarvestPipeline:
    """A ready-made pipeline for load-balancer logs.

    If the logging policy is known (code inspection), pass it; otherwise
    supply entries so propensities can be estimated empirically.
    """
    if logging_policy is not None:
        propensity_model: PropensityModel = DeclaredPropensityModel(logging_policy)
    elif entries_for_empirical is not None:
        propensity_model = EmpiricalPropensityModel().fit(
            [entry.upstream for entry in entries_for_empirical]
        )
    else:
        raise ValueError(
            "need either a declared logging policy or entries to fit "
            "empirical propensities"
        )
    return HarvestPipeline(
        scavenger=access_log_scavenger(),
        propensity_model=propensity_model,
        action_space=lb_action_space(n_servers),
        reward_range=lb_reward_range(),
    )


def dataset_from_access_log(
    entries: Sequence[AccessLogEntry],
    logging_policy=None,
) -> Dataset:
    """One-call harvest: entries → exploration dataset.

    Uses declared propensities when the logging policy is given,
    empirical frequencies otherwise.
    """
    if logging_policy is not None:
        model: PropensityModel = DeclaredPropensityModel(logging_policy)
    else:
        model = EmpiricalPropensityModel().fit([e.upstream for e in entries])
    return exploration_dataset_from_entries(entries, model)


def train_cb_policy(
    dataset: Dataset,
    n_servers: int,
    passes: int = 4,
    learning_rate: float = 0.5,
    name: str = "CB policy",
):
    """Train the Table 2 CB policy from harvested exploration data.

    Reduction to importance-weighted regression: per-server latency
    models over the logged context, augmented with weight×connections
    interaction terms (latency is multiplicative in request cost), then
    greedy argmin — "the CB algorithm learns a good estimator of each
    server's latency based on context, and greedily picking the lowest
    latency yields a good policy" (§5).
    """
    from repro.core.features import Featurizer, interaction_features
    from repro.core.learners.cb import EpsilonGreedyLearner
    from repro.core.policies import GreedyRegressorPolicy

    if passes <= 0:
        raise ValueError("passes must be positive")
    pairs = [("req_weight", f"conns_{server}") for server in range(n_servers)]

    def augment(context: Context) -> Context:
        return interaction_features(context, pairs)

    augmented = Dataset(
        action_space=dataset.action_space, reward_range=dataset.reward_range
    )
    for interaction in dataset:
        augmented.append(
            Interaction(
                context=augment(interaction.context),
                action=interaction.action,
                reward=interaction.reward,
                propensity=interaction.propensity,
                timestamp=interaction.timestamp,
            )
        )
    learner = EpsilonGreedyLearner(
        n_servers,
        featurizer=Featurizer(n_dims=64),
        learning_rate=learning_rate,
        maximize=False,
    )
    for _ in range(passes):
        learner.observe_all(augmented)
    return GreedyRegressorPolicy(
        lambda context, action: learner.predict(augment(context), action),
        maximize=False,
        name=name,
    )


@dataclass
class DecisionSnapshots:
    """A batch of decision-time snapshots in both dict and array form.

    ``contexts`` is what policies see (the same vocabulary the proxy
    logs: ``conns_<i>``, ``req_<kind>``, ``req_weight``); the parallel
    arrays are what the vectorized latency law consumes, so harvesting
    never re-parses feature dicts.
    """

    contexts: list[Context]
    connections: np.ndarray  #: ``(N, n_servers)`` open-connection counts.
    kind_index: np.ndarray  #: ``(N,)`` index into :attr:`kinds`.
    weights: np.ndarray  #: ``(N,)`` request weights.
    kinds: list[str]  #: Distinct request-kind names, index order.

    def __len__(self) -> int:
        return len(self.contexts)


def synthetic_decision_snapshots(
    n: int,
    n_servers: int,
    seed: int = 0,
    mix: Sequence[RequestType] = DEFAULT_MIX,
    mean_connections: float = 4.0,
) -> DecisionSnapshots:
    """Draw ``n`` independent decision-time snapshots.

    Connection counts are Poisson(``mean_connections``) per server and
    request kinds/weights follow ``mix`` — the stationary marginals a
    long uniform-random proxy run produces, without the event loop's
    sequential dependence.  That independence is the point: rows can be
    harvested in batches of any size with identical results.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if n_servers <= 0:
        raise ValueError("need at least one server")
    randomness = RandomSource(seed, _name="lb-snapshots")
    connections = randomness.child("connections").generator.poisson(
        mean_connections, size=(n, n_servers)
    ).astype(np.float64)
    probabilities = np.array([t.probability for t in mix])
    kind_index = randomness.child("types").generator.choice(
        len(mix), size=n, p=probabilities / probabilities.sum()
    )
    weights = np.array([t.weight for t in mix])[kind_index]
    kinds = [t.name for t in mix]
    contexts: list[Context] = []
    for row in range(n):
        context: dict[str, float] = {
            f"conns_{server}": connections[row, server]
            for server in range(n_servers)
        }
        context[f"req_{kinds[kind_index[row]]}"] = 1.0
        context["req_weight"] = float(weights[row])
        contexts.append(context)
    return DecisionSnapshots(
        contexts=contexts,
        connections=connections,
        kind_index=kind_index,
        weights=weights,
        kinds=kinds,
    )


def batch_latency_law(
    snapshots: DecisionSnapshots,
    server_configs: Sequence[ServerConfig],
) -> np.ndarray:
    """``(N, n_servers)`` Fig. 5 latencies for every snapshot × server.

    Vectorizes :meth:`~repro.loadbalance.server.BackendServer.
    service_latency` over the snapshot arrays: ``weight × multiplier ×
    (base + slope × conns)``, with per-kind multipliers gathered from a
    ``(n_kinds, n_servers)`` table.
    """
    base = np.array([c.base_latency for c in server_configs])
    slope = np.array([c.latency_per_connection for c in server_configs])
    multipliers = np.array(
        [
            [config.multiplier_for(kind) for config in server_configs]
            for kind in snapshots.kinds
        ]
    )
    return (
        snapshots.weights[:, None]
        * multipliers[snapshots.kind_index]
        * (base[None, :] + slope[None, :] * snapshots.connections)
    )


def latency_noise_stream(
    registry: StreamRegistry,
    shard_size: int,
    scale: float,
) -> ShardedNormal:
    """The sharded latency-noise stream of an audited loadbalance harvest.

    Noise values are addressed by *global row*, derived per
    ``shard_size`` rows from the registry's master seed — so a shard
    harvested in isolation (or on another machine) reads exactly the
    noise a serial run would, with no up-front whole-run draw.
    """
    return ShardedNormal(
        registry,
        StreamKey("loadbalance", "harvest", "latency-noise"),
        shard_size=shard_size,
        scale=scale,
    )


def batch_exploration_columns(
    policy: Policy,
    snapshots: DecisionSnapshots,
    server_configs: Sequence[ServerConfig],
    rng: HarvestRNG,
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
    latency_noise: float = 0.01,
    noise_seed: int = 0,
    noise: Optional[ShardedNormal] = None,
    noise_start: int = 0,
    timeout: float = LATENCY_CAP,
    ledger: Optional[DecisionLedger] = None,
) -> DatasetColumns:
    """Batched exploration harvest over decision snapshots, columnar.

    The load-balance instance of the batch engine: the policy samples
    upstreams via :meth:`~repro.core.policies.Policy.act_batch` (one
    ``rng`` uniform per row) and observed latencies come from
    :func:`batch_latency_law` plus Gaussian noise, clamped to
    ``[0.001, timeout]`` exactly as the proxy does — so the produced
    log is bit-identical for any ``batch_size``.

    Two noise schemes:

    - ``noise=`` (a :class:`~repro.audit.streams.ShardedNormal`, see
      :func:`latency_noise_stream`): shard-derived, addressed by global
      row ``noise_start + i`` — the audited scheme, fork-equivalent
      under sharding.  Harvesting rows ``[k·S, (k+1)·S)`` of a run in
      isolation means passing the sliced snapshots with
      ``noise_start=k·S`` and the *same* noise stream parameters.
      ``latency_noise``/``noise_seed`` are ignored when set.
    - legacy ``latency_noise``/``noise_seed``: one up-front
      whole-run ``normal(size=n)`` draw on a
      :class:`~repro.simsys.random_source.RandomSource` child,
      indexed by local row — batch-size independent but *not*
      re-derivable per shard, kept for unaudited harvests.
    """
    if len(server_configs) == 0:
        raise ValueError("need at least one server")
    if latency_noise < 0:
        raise ValueError("latency noise must be non-negative")
    if noise_start < 0:
        raise ValueError("noise_start must be non-negative")
    n = len(snapshots)
    latency_matrix = batch_latency_law(snapshots, server_configs)
    if noise is not None:

        def observe(indices: np.ndarray, actions: np.ndarray) -> np.ndarray:
            latency = latency_matrix[indices, actions] + noise.values(
                indices + noise_start
            )
            return np.minimum(np.maximum(latency, 0.001), timeout)

    else:
        if latency_noise > 0:
            flat_noise = RandomSource(
                noise_seed, _name="lb-harvest"
            ).child("latency-noise").generator.normal(0.0, latency_noise, size=n)
        else:
            flat_noise = np.zeros(n)

        def observe(indices: np.ndarray, actions: np.ndarray) -> np.ndarray:
            latency = latency_matrix[indices, actions] + flat_noise[indices]
            return np.minimum(np.maximum(latency, 0.001), timeout)

    n_servers = len(server_configs)
    with get_tracer().span(
        "harvest.loadbalance", n_servers=n_servers, batched=True
    ) as span:
        columns = harvest_columns(
            policy,
            snapshots.contexts,
            observe,
            rng,
            action_space=lb_action_space(n_servers),
            batch_size=batch_size,
            reward_range=lb_reward_range(),
            scenario="loadbalance",
            ledger=ledger,
        )
        span.set(rows=columns.n)
    get_metrics().counter("harvest.rows", scenario="loadbalance").inc(columns.n)
    return columns


def exploration_shard_inputs(job, registry: StreamRegistry):
    """Shard-input builder for coordinated loadbalance harvests.

    See :data:`repro.core.coordinator.SCENARIO_BUILDERS`.  Recognized
    ``job.config`` keys: ``seed`` (snapshot draw), ``n_servers``,
    ``mean_connections``, ``servers`` (explicit
    :class:`~repro.loadbalance.server.ServerConfig` list; defaults to
    the Fig. 5 pair), ``latency_noise`` (scale; 0 disables), and
    ``timeout``.  Latency noise rides the sharded
    ``loadbalance/harvest/latency-noise`` stream
    (:func:`latency_noise_stream`) keyed by global row, so a worker
    harvesting rows ``[k·S, (k+1)·S)`` derives exactly its own noise
    shards — no up-front whole-run draw, bit-identical to serial.
    """
    from repro.core.coordinator import HarvestInputs
    from repro.loadbalance.proxy import fig5_servers

    config = job.config
    seed = int(config.get("seed", 0))
    servers = config.get("servers")
    if servers is None:
        servers = fig5_servers()
    n_servers = int(config.get("n_servers", len(servers)))
    if n_servers != len(servers):
        raise ValueError(
            f"config names {n_servers} servers but supplies {len(servers)} "
            f"server configs"
        )
    snapshots = synthetic_decision_snapshots(
        job.rows,
        n_servers,
        seed=seed,
        mean_connections=float(config.get("mean_connections", 4.0)),
    )
    latency_matrix = batch_latency_law(snapshots, servers)
    scale = float(config.get("latency_noise", 0.01))
    timeout = float(config.get("timeout", LATENCY_CAP))
    noise = (
        latency_noise_stream(registry, job.shard_size, scale)
        if scale > 0
        else None
    )

    def reward_fn(indices: np.ndarray, actions: np.ndarray) -> np.ndarray:
        latency = latency_matrix[indices, actions]
        if noise is not None:
            latency = latency + noise.values(indices)
        return np.minimum(np.maximum(latency, 0.001), timeout)

    return HarvestInputs(
        contexts=snapshots.contexts,
        reward_fn=reward_fn,
        action_space=lb_action_space(n_servers),
        reward_range=lb_reward_range(),
    )
