"""Harvesting the load-balancer access log (steps 1–2 for Nginx).

Turns parsed :class:`~repro.loadbalance.access_log.AccessLogEntry`
records into exploration datasets: the context is the decision-time
snapshot the log line carries (connection counts + request features),
the action is the chosen upstream, and the reward is the *negative-ish*
request latency (we keep raw latency and minimize, per Table 1's CB
reward "[-] request latency").
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.harvest import HarvestPipeline, LogScavenger
from repro.core.propensity import (
    DeclaredPropensityModel,
    EmpiricalPropensityModel,
    PropensityModel,
)
from repro.core.types import ActionSpace, Context, Dataset, Interaction, RewardRange
from repro.loadbalance.access_log import AccessLogEntry
from repro.obs.metrics import get_metrics
from repro.obs.tracing import get_tracer

#: Latency cap (seconds) for the declared reward range.
LATENCY_CAP = 10.0


def _entry_context(entry: AccessLogEntry) -> Context:
    context: dict[str, float] = {
        f"conns_{server}": float(c) for server, c in enumerate(entry.connections)
    }
    context[f"req_{entry.kind}"] = 1.0
    context["req_weight"] = entry.request_weight
    return context


def lb_action_space(n_servers: int) -> ActionSpace:
    """Action space: one action per backend server."""
    return ActionSpace(n_servers, labels=[f"server-{i}" for i in range(n_servers)])


def lb_reward_range() -> RewardRange:
    """Latency in seconds, minimized."""
    return RewardRange(0.0, LATENCY_CAP, maximize=False)


def exploration_dataset_from_entries(
    entries: Sequence[AccessLogEntry],
    propensity_model: PropensityModel,
    n_servers: Optional[int] = None,
) -> Dataset:
    """Annotate parsed log entries with propensities → exploration data."""
    if not entries:
        raise ValueError("no log entries to harvest")
    if n_servers is None:
        n_servers = len(entries[0].connections)
    actions = list(range(n_servers))
    dataset = Dataset(
        action_space=lb_action_space(n_servers), reward_range=lb_reward_range()
    )
    with get_tracer().span(
        "harvest.loadbalance", n_servers=n_servers
    ) as span:
        for entry in entries:
            context = _entry_context(entry)
            propensity = propensity_model.propensity(
                context, entry.upstream, actions
            )
            dataset.append(
                Interaction(
                    context=context,
                    action=entry.upstream,
                    reward=entry.upstream_response_time,
                    propensity=propensity,
                    timestamp=entry.time,
                )
            )
        span.set(rows=len(dataset))
    get_metrics().counter("harvest.rows", scenario="loadbalance").inc(
        len(dataset)
    )
    return dataset


def access_log_scavenger() -> LogScavenger:
    """A :class:`LogScavenger` over *raw dict* records, for use with the
    generic :class:`~repro.core.harvest.HarvestPipeline`.

    Accepts dicts shaped like ``AccessLogEntry.__dict__`` (e.g. produced
    by JSON-ifying the access log).
    """

    def context_of(record: dict) -> Optional[Context]:
        connections = record.get("connections")
        if connections is None:
            return None
        context: dict[str, float] = {
            f"conns_{server}": float(c) for server, c in enumerate(connections)
        }
        context[f"req_{record.get('kind', 'unknown')}"] = 1.0
        context["req_weight"] = float(record.get("request_weight", 1.0))
        return context

    return LogScavenger(
        context_of=context_of,
        action_of=lambda record: int(record["upstream"]),
        reward_of=lambda record: float(record["upstream_response_time"]),
        timestamp_of=lambda record: float(record.get("time", 0.0)),
    )


def build_lb_pipeline(
    n_servers: int,
    logging_policy=None,
    entries_for_empirical: Optional[Sequence[AccessLogEntry]] = None,
) -> HarvestPipeline:
    """A ready-made pipeline for load-balancer logs.

    If the logging policy is known (code inspection), pass it; otherwise
    supply entries so propensities can be estimated empirically.
    """
    if logging_policy is not None:
        propensity_model: PropensityModel = DeclaredPropensityModel(logging_policy)
    elif entries_for_empirical is not None:
        propensity_model = EmpiricalPropensityModel().fit(
            [entry.upstream for entry in entries_for_empirical]
        )
    else:
        raise ValueError(
            "need either a declared logging policy or entries to fit "
            "empirical propensities"
        )
    return HarvestPipeline(
        scavenger=access_log_scavenger(),
        propensity_model=propensity_model,
        action_space=lb_action_space(n_servers),
        reward_range=lb_reward_range(),
    )


def dataset_from_access_log(
    entries: Sequence[AccessLogEntry],
    logging_policy=None,
) -> Dataset:
    """One-call harvest: entries → exploration dataset.

    Uses declared propensities when the logging policy is given,
    empirical frequencies otherwise.
    """
    if logging_policy is not None:
        model: PropensityModel = DeclaredPropensityModel(logging_policy)
    else:
        model = EmpiricalPropensityModel().fit([e.upstream for e in entries])
    return exploration_dataset_from_entries(entries, model)


def train_cb_policy(
    dataset: Dataset,
    n_servers: int,
    passes: int = 4,
    learning_rate: float = 0.5,
    name: str = "CB policy",
):
    """Train the Table 2 CB policy from harvested exploration data.

    Reduction to importance-weighted regression: per-server latency
    models over the logged context, augmented with weight×connections
    interaction terms (latency is multiplicative in request cost), then
    greedy argmin — "the CB algorithm learns a good estimator of each
    server's latency based on context, and greedily picking the lowest
    latency yields a good policy" (§5).
    """
    from repro.core.features import Featurizer, interaction_features
    from repro.core.learners.cb import EpsilonGreedyLearner
    from repro.core.policies import GreedyRegressorPolicy

    if passes <= 0:
        raise ValueError("passes must be positive")
    pairs = [("req_weight", f"conns_{server}") for server in range(n_servers)]

    def augment(context: Context) -> Context:
        return interaction_features(context, pairs)

    augmented = Dataset(
        action_space=dataset.action_space, reward_range=dataset.reward_range
    )
    for interaction in dataset:
        augmented.append(
            Interaction(
                context=augment(interaction.context),
                action=interaction.action,
                reward=interaction.reward,
                propensity=interaction.propensity,
                timestamp=interaction.timestamp,
            )
        )
    learner = EpsilonGreedyLearner(
        n_servers,
        featurizer=Featurizer(n_dims=64),
        learning_rate=learning_rate,
        maximize=False,
    )
    for _ in range(passes):
        learner.observe_all(augmented)
    return GreedyRegressorPolicy(
        lambda context, action: learner.predict(augment(context), action),
        maximize=False,
        name=name,
    )
