"""Backend server model (the Fig. 5 latency law).

"Each server's latency is a linear function of the number of open
connections, and server 2 is slower than server 1 by an additive
constant."  A server here is exactly that: a base latency, a
per-connection slope, and a live count of open connections.  The
feedback loop — more routed traffic ⇒ more open connections ⇒ higher
latency ⇒ connections stay open longer — is what makes plain off-policy
evaluation fail in this scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class ServerConfig:
    """Latency law of one backend: ``latency = base + slope × conns``.

    ``type_multipliers`` optionally makes a server faster or slower at
    specific request kinds (e.g. a backend with a tuned API stack) —
    the request-specific structure §5 says a contextual learner can
    exploit but load-only heuristics cannot.
    """

    server_id: int
    base_latency: float
    latency_per_connection: float
    name: str = ""
    type_multipliers: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.base_latency <= 0:
            raise ValueError("base latency must be positive")
        if self.latency_per_connection < 0:
            raise ValueError("latency slope must be non-negative")
        for kind, multiplier in self.type_multipliers.items():
            if multiplier <= 0:
                raise ValueError(f"multiplier for {kind!r} must be positive")

    def multiplier_for(self, kind: str) -> float:
        """Service-cost multiplier for a request kind (default 1)."""
        return float(self.type_multipliers.get(kind, 1.0))


class BackendServer:
    """A live backend tracking its open connections."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.open_connections = 0
        self.completed_requests = 0
        self.total_busy_time = 0.0
        #: Chaos-injection hook: multiplies service latency (1.0 = healthy,
        #: large values model a degraded or effectively crashed backend).
        #: Owned by the chaos monkey, which overwrites it as faults
        #: start and expire.
        self.fault_multiplier = 1.0
        #: Permanent environment drift (bad rollout, hardware change).
        #: A separate channel so transient chaos faults can't clobber it.
        self.drift_multiplier = 1.0

    @property
    def server_id(self) -> int:
        """Stable id of this backend (the action id in CB terms)."""
        return self.config.server_id

    def service_latency(self, request_weight: float = 1.0, kind: str = "") -> float:
        """Latency this server would serve a request at *right now*.

        Linear in the number of connections currently open (the
        request being placed is not yet counted), scaled by the
        request's weight and this server's affinity for its kind.
        """
        if request_weight <= 0:
            raise ValueError("request weight must be positive")
        base = (
            self.config.base_latency
            + self.config.latency_per_connection * self.open_connections
        )
        return (
            request_weight
            * self.config.multiplier_for(kind)
            * self.fault_multiplier
            * self.drift_multiplier
            * base
        )

    def connect(self) -> None:
        """Open one connection (a request starts being served)."""
        self.open_connections += 1

    def disconnect(self, busy_time: float) -> None:
        """Close one connection (a request completed)."""
        if self.open_connections <= 0:
            raise RuntimeError(
                f"server {self.server_id}: disconnect with no open connections"
            )
        self.open_connections -= 1
        self.completed_requests += 1
        self.total_busy_time += busy_time

    def reset(self) -> None:
        """Drop all state (between simulation runs)."""
        self.open_connections = 0
        self.completed_requests = 0
        self.total_busy_time = 0.0
        self.fault_multiplier = 1.0
        self.drift_multiplier = 1.0

    def __repr__(self) -> str:
        return (
            f"BackendServer(id={self.server_id}, "
            f"open={self.open_connections}, done={self.completed_requests})"
        )
