"""The reverse-proxy simulation (our Nginx).

Event-driven: requests arrive (Poisson workload), the balancing policy
observes the decision-time context (per-server open connections +
request features), picks a backend, the backend serves at the Fig. 5
latency law, and the completion frees the connection.  Every request
appends an access-log entry.

The same simulator serves both sides of Table 2:

- **data collection** — run with the uniform-random policy and harvest
  the access log;
- **online (ground-truth) evaluation** — run with a candidate policy
  deployed and measure its live mean latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.policies import Policy
from repro.core.types import Context
from repro.loadbalance.access_log import AccessLogEntry
from repro.loadbalance.server import BackendServer, ServerConfig
from repro.loadbalance.workload import Workload
from repro.simsys.events import Simulator
from repro.simsys.metrics import PercentileTracker
from repro.simsys.random_source import RandomSource


def fig5_servers(
    base_latency: float = 0.20,
    additive_penalty: float = 0.28,
    latency_per_connection: float = 0.08,
    api_affinity: bool = True,
) -> list[ServerConfig]:
    """The two-server setup of Fig. 5.

    Server 1 (id 0) is the fast server; server 2 (id 1) is "slower ...
    by an additive constant"; both have the same per-connection slope.

    With ``api_affinity`` (default), server 2 is specialized for heavy
    ``api`` requests (a tuned stack), which it serves at a fraction of
    the cost while server 1 pays a premium.  This request-specific
    structure is invisible to load-only heuristics but learnable from
    context (§5: "the algorithm would learn how different types of
    requests are processed by different servers, something least
    loaded cannot do").
    """
    multipliers_fast = {"api": 0.9} if api_affinity else {}
    multipliers_slow = {"api": 0.4} if api_affinity else {}
    return [
        ServerConfig(
            0,
            base_latency,
            latency_per_connection,
            name="server-1",
            type_multipliers=multipliers_fast,
        ),
        ServerConfig(
            1,
            base_latency + additive_penalty,
            latency_per_connection,
            name="server-2",
            type_multipliers=multipliers_slow,
        ),
    ]


@dataclass
class SimulationResult:
    """Outcome of one proxy run."""

    policy_name: str
    n_requests: int
    mean_latency: float
    p99_latency: float
    latencies: list[float] = field(default_factory=list)
    access_log: list[AccessLogEntry] = field(default_factory=list)
    per_server_requests: dict[int, int] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.policy_name}: n={self.n_requests}, "
            f"mean={self.mean_latency:.3f}s, p99={self.p99_latency:.3f}s)"
        )


class LoadBalancerSim:
    """Drive a balancing policy against simulated backends."""

    def __init__(
        self,
        server_configs: Sequence[ServerConfig],
        policy: Policy,
        workload: Workload,
        seed: int = 0,
        latency_noise: float = 0.01,
        chaos=None,
        timeout: float = 10.0,
        context_refresh_interval: float = 0.0,
    ) -> None:
        if not server_configs:
            raise ValueError("need at least one backend")
        if latency_noise < 0:
            raise ValueError("latency noise must be non-negative")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if context_refresh_interval < 0:
            raise ValueError("context refresh interval must be non-negative")
        self.servers = [BackendServer(c) for c in server_configs]
        self.policy = policy
        self.workload = workload
        self.latency_noise = latency_noise
        #: Optional fault injector (see :mod:`repro.chaos`), called as
        #: ``chaos.tick(now, servers)`` before every routing decision.
        self.chaos = chaos
        #: Proxy-side request timeout (Nginx ``proxy_read_timeout``):
        #: observed latency is capped here, which also bounds the
        #: connection-pileup spiral when a backend is crashed by chaos.
        self.timeout = timeout
        #: §5 "distributed state": with a positive interval, the policy
        #: sees connection counts refreshed only every this many
        #: (virtual) seconds — stale contexts, as when load metrics are
        #: scraped rather than tracked inline.
        self.context_refresh_interval = context_refresh_interval
        self._stale_snapshot: dict[str, float] = {}
        self._stale_snapshot_time = -float("inf")
        self._randomness = RandomSource(seed, _name="proxy")

    def _decision_context(self, kind: str, weight: float, now: float) -> Context:
        fresh = {
            f"conns_{s.server_id}": float(s.open_connections) for s in self.servers
        }
        if self.context_refresh_interval > 0:
            if now - self._stale_snapshot_time >= self.context_refresh_interval:
                self._stale_snapshot = fresh
                self._stale_snapshot_time = now
            loads = dict(self._stale_snapshot)
        else:
            loads = fresh
        context = loads
        context[f"req_{kind}"] = 1.0
        context["req_weight"] = weight
        return context

    def run(
        self,
        n_requests: int,
        warmup_fraction: float = 0.1,
        observer=None,
    ) -> SimulationResult:
        """Serve ``n_requests`` and report latency statistics.

        The first ``warmup_fraction`` of requests are excluded from the
        statistics (queues start empty; the paper's online numbers are
        steady-state) but still appear in the access log, timestamped.

        ``observer(context, action, latency, propensity)``, if given,
        is called after every routing decision — the hook that lets an
        incremental CB learner keep learning *while deployed* (the §5
        fix for non-stationary rewards: "incremental learning
        algorithms that continuously update the policy").
        """
        if n_requests <= 0:
            raise ValueError("n_requests must be positive")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup fraction must be in [0, 1)")
        for server in self.servers:
            server.reset()
        sim = Simulator()
        policy_rng = self._randomness.child("policy-choices").generator
        noise_rng = self._randomness.child("latency-noise")
        latencies = PercentileTracker("latency")
        access_log: list[AccessLogEntry] = []
        per_server: dict[int, int] = {s.server_id: 0 for s in self.servers}
        warmup_cutoff = int(n_requests * warmup_fraction)
        actions = [s.server_id for s in self.servers]
        requests = self.workload.first_n(n_requests)

        def handle_arrival(request) -> None:
            if self.chaos is not None:
                self.chaos.tick(sim.now, self.servers)
            context = self._decision_context(request.kind, request.weight, sim.now)
            action, propensity = self.policy.act(context, actions, policy_rng)
            server = self.servers[action]
            latency = server.service_latency(request.weight, request.kind)
            if self.latency_noise > 0:
                latency = max(
                    0.001, latency + noise_rng.normal(0.0, self.latency_noise)
                )
            latency = min(latency, self.timeout)
            if observer is not None:
                observer(context, action, latency, propensity)
            server.connect()
            per_server[action] += 1
            if request.request_id >= warmup_cutoff:
                latencies.observe(latency)
            access_log.append(
                AccessLogEntry(
                    time=sim.now,
                    client_key=request.client_key,
                    kind=request.kind,
                    status=200,
                    upstream=action,
                    upstream_response_time=latency,
                    connections=tuple(
                        int(context[f"conns_{s.server_id}"]) for s in self.servers
                    ),
                    request_weight=request.weight,
                )
            )
            sim.schedule(latency, lambda s=server, l=latency: s.disconnect(l))

        for request in requests:
            sim.schedule_at(request.arrival_time, lambda r=request: handle_arrival(r))
        sim.run()

        return SimulationResult(
            policy_name=self.policy.name,
            n_requests=n_requests,
            mean_latency=latencies.mean(),
            p99_latency=latencies.p99(),
            latencies=latencies.values,
            access_log=access_log,
            per_server_requests=per_server,
        )
