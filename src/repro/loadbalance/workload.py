"""Request workload generation.

Open-loop Poisson arrivals with a mix of request types.  Types carry a
*weight* — a large dynamic page costs proportionally more server time
than a small static asset — giving a contextual learner something the
load-oblivious heuristics cannot exploit (§5: "the benefit of CB would
increase with more request-specific context").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.simsys.random_source import RandomSource


@dataclass(frozen=True)
class RequestType:
    """A class of requests with a relative service cost."""

    name: str
    weight: float
    probability: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("request weight must be positive")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")


#: Default request mix: mostly small static requests, some medium
#: dynamic pages, a few heavy API calls.
DEFAULT_MIX = (
    RequestType("static", weight=0.6, probability=0.5),
    RequestType("dynamic", weight=1.0, probability=0.35),
    RequestType("api", weight=1.8, probability=0.15),
)


@dataclass(frozen=True)
class Request:
    """One incoming request."""

    request_id: int
    arrival_time: float
    kind: str
    weight: float
    client_key: str = ""


class Workload:
    """Poisson arrival process over a request-type mix."""

    def __init__(
        self,
        rate: float,
        mix: Sequence[RequestType] = DEFAULT_MIX,
        randomness: RandomSource = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        if not mix:
            raise ValueError("request mix must be non-empty")
        total = sum(t.probability for t in mix)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"request mix probabilities sum to {total}, not 1")
        self.rate = rate
        self.mix = list(mix)
        self.randomness = randomness or RandomSource(0, _name="workload")

    def requests(self, horizon: float) -> Iterator[Request]:
        """Yield requests arriving on ``[0, horizon)`` in time order."""
        arrival_rng = self.randomness.child("arrivals")
        type_rng = self.randomness.child("types")
        client_rng = self.randomness.child("clients")
        probabilities = [t.probability for t in self.mix]
        for request_id, t in enumerate(arrival_rng.poisson_process(self.rate, horizon)):
            kind = type_rng.choice(self.mix, p=probabilities)
            yield Request(
                request_id=request_id,
                arrival_time=t,
                kind=kind.name,
                weight=kind.weight,
                client_key=f"client-{client_rng.randint(0, 1000)}",
            )

    def first_n(self, n: int, horizon_hint: float = None) -> list[Request]:
        """The first ``n`` requests (expands the horizon as needed)."""
        if n <= 0:
            raise ValueError("n must be positive")
        horizon = horizon_hint or (2.0 * n / self.rate)
        while True:
            out = list(self.requests(horizon))
            if len(out) >= n:
                return out[:n]
            horizon *= 2.0


class DiurnalWorkload(Workload):
    """Poisson arrivals with a sinusoidal (diurnal) rate.

    §5 notes A2 is violated "when the workload or environment changes";
    the mildest real-world version is the daily traffic cycle.  The
    instantaneous rate is::

        rate(t) = base_rate · (1 + amplitude · sin(2π t / period))

    sampled by Lewis–Shedler thinning, so the process is an exact
    non-homogeneous Poisson process.
    """

    def __init__(
        self,
        base_rate: float,
        amplitude: float = 0.5,
        period: float = 600.0,
        mix: Sequence[RequestType] = DEFAULT_MIX,
        randomness: RandomSource = None,
    ) -> None:
        super().__init__(base_rate, mix, randomness)
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if period <= 0:
            raise ValueError("period must be positive")
        self.amplitude = amplitude
        self.period = period

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at virtual time ``t``."""
        import math

        return self.rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)
        )

    def requests(self, horizon: float) -> Iterator[Request]:
        """Yield thinned non-homogeneous Poisson arrivals."""
        arrival_rng = self.randomness.child("arrivals")
        thin_rng = self.randomness.child("thinning")
        type_rng = self.randomness.child("types")
        client_rng = self.randomness.child("clients")
        probabilities = [t.probability for t in self.mix]
        rate_max = self.rate * (1.0 + self.amplitude)
        t = 0.0
        request_id = 0
        while True:
            t += arrival_rng.exponential(1.0 / rate_max)
            if t >= horizon:
                return
            if not thin_rng.bernoulli(self.rate_at(t) / rate_max):
                continue
            kind = type_rng.choice(self.mix, p=probabilities)
            yield Request(
                request_id=request_id,
                arrival_time=t,
                kind=kind.name,
                weight=kind.weight,
                client_key=f"client-{client_rng.randint(0, 1000)}",
            )
            request_id += 1
