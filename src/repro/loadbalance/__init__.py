"""Load-balancing scenario (Nginx), simulated.

A discrete-event reverse proxy over backend servers whose latency is a
linear function of open connections — the Fig. 5 setup — with
Nginx-style access logging, log scavenging, and the full set of
balancing policies from Table 2 (random, least-loaded, send-to-one,
CB-learned) plus the usual production suspects (round-robin, weighted
random, hashing, power-of-two-choices).

This substrate exists to reproduce Table 2's cautionary tale: plain
IPS evaluation *breaks* here because routing decisions change the
context (load) distribution, violating CB assumption A1.
"""

from repro.loadbalance.server import BackendServer, ServerConfig
from repro.loadbalance.workload import (
    DiurnalWorkload,
    Request,
    RequestType,
    Workload,
)
from repro.loadbalance.policies import (
    cb_policy_name,
    least_loaded_policy,
    power_of_two_policy,
    round_robin_policy,
    send_to_policy,
    weighted_random_policy,
)
from repro.loadbalance.access_log import (
    AccessLogEntry,
    format_access_log_line,
    parse_access_log_line,
)
from repro.loadbalance.proxy import LoadBalancerSim, SimulationResult, fig5_servers
from repro.loadbalance.harvest import (
    DecisionSnapshots,
    batch_exploration_columns,
    batch_latency_law,
    build_lb_pipeline,
    dataset_from_access_log,
    exploration_dataset_from_entries,
    synthetic_decision_snapshots,
)
from repro.loadbalance.frontdoor import (
    Cluster,
    FrontDoorSim,
    HierarchicalResult,
)

__all__ = [
    "BackendServer",
    "ServerConfig",
    "Request",
    "RequestType",
    "Workload",
    "DiurnalWorkload",
    "least_loaded_policy",
    "round_robin_policy",
    "send_to_policy",
    "weighted_random_policy",
    "power_of_two_policy",
    "cb_policy_name",
    "AccessLogEntry",
    "format_access_log_line",
    "parse_access_log_line",
    "LoadBalancerSim",
    "SimulationResult",
    "fig5_servers",
    "DecisionSnapshots",
    "batch_exploration_columns",
    "batch_latency_law",
    "build_lb_pipeline",
    "dataset_from_access_log",
    "exploration_dataset_from_entries",
    "synthetic_decision_snapshots",
    "Cluster",
    "FrontDoorSim",
    "HierarchicalResult",
]
