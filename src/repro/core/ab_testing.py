"""A/B testing: the baseline methodology the paper argues against.

A/B testing "randomizes over policies" (§4): each candidate gets a
slice of live traffic and is judged only on its own slice.  This module
simulates that protocol against any environment callback so that
Fig. 1's comparison — A/B's per-policy data cost vs. IPS's shared log —
can be measured, not just computed from the bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.policies import Policy

#: Environment callback: run ``policy`` on ``n`` live interactions and
#: return the observed rewards.  The RNG makes runs reproducible.
Environment = Callable[[Policy, int, np.random.Generator], np.ndarray]


@dataclass
class ArmResult:
    """Outcome of one experiment arm."""

    policy_name: str
    n: int
    mean: float
    std_error: float

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the arm mean."""
        return (self.mean - z * self.std_error, self.mean + z * self.std_error)


@dataclass
class ABTestReport:
    """Results of a multi-arm A/B test."""

    total_traffic: int
    arms: list[ArmResult] = field(default_factory=list)

    def best(self, maximize: bool = True) -> ArmResult:
        """The winning arm by mean reward."""
        key = (lambda a: a.mean) if maximize else (lambda a: -a.mean)
        return max(self.arms, key=key)

    def significant(self, first: int, second: int, z: float = 1.96) -> bool:
        """Whether arms ``first`` and ``second`` are separated at ``z``
        standard errors (two-sample normal test)."""
        a, b = self.arms[first], self.arms[second]
        pooled = math.sqrt(a.std_error**2 + b.std_error**2)
        if pooled == 0.0:
            return a.mean != b.mean
        return abs(a.mean - b.mean) / pooled > z


class ABTest:
    """Run ``K`` policies each on an equal share of live traffic.

    Contrast with off-policy evaluation: every datapoint here is
    consumed by exactly one arm, so evaluating ``K`` policies to fixed
    accuracy needs ``K×`` the traffic (Fig. 1's linear-in-K curve).
    """

    def __init__(self, environment: Environment, seed: int = 0) -> None:
        self.environment = environment
        self.seed = seed

    def run(self, policies: Sequence[Policy], total_traffic: int) -> ABTestReport:
        """Split ``total_traffic`` evenly over ``policies`` and measure."""
        if not policies:
            raise ValueError("need at least one arm")
        if total_traffic < len(policies):
            raise ValueError(
                f"{total_traffic} samples cannot cover {len(policies)} arms"
            )
        per_arm = total_traffic // len(policies)
        report = ABTestReport(total_traffic=total_traffic)
        for index, policy in enumerate(policies):
            rng = np.random.default_rng(self.seed + index)
            rewards = np.asarray(self.environment(policy, per_arm, rng), dtype=float)
            if len(rewards) != per_arm:
                raise ValueError(
                    f"environment returned {len(rewards)} rewards, "
                    f"expected {per_arm}"
                )
            std_error = (
                float(rewards.std(ddof=1) / math.sqrt(per_arm))
                if per_arm > 1
                else float("inf")
            )
            report.arms.append(
                ArmResult(
                    policy_name=policy.name,
                    n=per_arm,
                    mean=float(rewards.mean()),
                    std_error=std_error,
                )
            )
        return report
