"""Exploration design: plan the randomness before harvesting it.

§4 derives how much optimization power a system's existing randomness
holds; this module turns those formulas into *planning* tools for a
team deciding how to instrument a system:

- :func:`exploration_plan` — given a policy-class size, accuracy
  target, and traffic rate, how much exploration (ε) and how much time
  is needed?
- :func:`wasted_potential` — the paper's closing argument quantified:
  given a system's decision volume and exploration floor, how many
  policies could its discarded logs have evaluated?
- :func:`epsilon_for_deadline` — the minimum exploration floor that
  meets an accuracy target within a traffic budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.estimators.bounds import (
    DEFAULT_C,
    ips_error_bound,
    ips_sample_size,
)


@dataclass(frozen=True)
class ExplorationPlan:
    """A concrete instrumentation plan for one decision point."""

    n_actions: int
    epsilon: float
    policy_class_size: float
    target_error: float
    delta: float
    required_n: float
    traffic_per_day: float

    @property
    def days_to_target(self) -> float:
        """Calendar time to collect the required log volume."""
        return self.required_n / self.traffic_per_day

    @property
    def min_action_propensity(self) -> float:
        """Per-action floor the logging policy must guarantee."""
        return self.epsilon

    def __repr__(self) -> str:
        return (
            f"ExplorationPlan(eps={self.epsilon:g}, N={self.required_n:,.0f},"
            f" ~{self.days_to_target:.1f} days at "
            f"{self.traffic_per_day:,.0f}/day)"
        )


def exploration_plan(
    n_actions: int,
    traffic_per_day: float,
    policy_class_size: float = 10**6,
    target_error: float = 0.05,
    delta: float = 0.05,
    exploration_fraction: float = 1.0,
    c: float = DEFAULT_C,
) -> ExplorationPlan:
    """Plan the log volume needed to optimize over a policy class.

    ``exploration_fraction`` is the share of traffic routed through the
    randomized policy (an ε-greedy deployment explores with probability
    ε ≤ 1, uniformly over actions): the effective per-action floor is
    ``exploration_fraction / n_actions``.
    """
    if n_actions <= 0:
        raise ValueError("n_actions must be positive")
    if traffic_per_day <= 0:
        raise ValueError("traffic must be positive")
    if not 0.0 < exploration_fraction <= 1.0:
        raise ValueError("exploration fraction must be in (0, 1]")
    epsilon = exploration_fraction / n_actions
    required = ips_sample_size(
        target_error, epsilon, k=policy_class_size, delta=delta, c=c
    )
    return ExplorationPlan(
        n_actions=n_actions,
        epsilon=epsilon,
        policy_class_size=policy_class_size,
        target_error=target_error,
        delta=delta,
        required_n=required,
        traffic_per_day=traffic_per_day,
    )


def wasted_potential(
    decisions_logged: float,
    epsilon: float,
    target_error: float = 0.05,
    delta: float = 0.05,
    c: float = DEFAULT_C,
) -> float:
    """How many policies the discarded logs could have evaluated.

    Inverts Eq. 1 for K: with N randomized decisions at exploration
    floor ε, the log supports simultaneous evaluation of::

        K = δ · exp(ε N err² / C)

    policies at the target accuracy.  This is the paper's "wasted
    optimization potential", as a number.  Capped at 1e300 to stay
    finite (the exponent grows linearly in N).
    """
    if decisions_logged <= 0:
        raise ValueError("decision count must be positive")
    if not 0.0 < epsilon <= 1.0:
        raise ValueError("epsilon must be in (0, 1]")
    exponent = epsilon * decisions_logged * target_error**2 / c
    if exponent > 690.0:  # exp() overflow guard
        return 1e300
    return delta * math.exp(exponent)


def epsilon_for_deadline(
    n_actions: int,
    traffic_total: float,
    policy_class_size: float = 10**6,
    target_error: float = 0.05,
    delta: float = 0.05,
    c: float = DEFAULT_C,
) -> float:
    """Minimum exploration floor ε meeting the target within a budget.

    Solves Eq. 1 for ε at N = ``traffic_total``.  Raises if even full
    randomization (ε = 1/n_actions) cannot meet the target — the signal
    to shrink the policy class, relax the target, or reduce the action
    space (§5's hierarchy discussion).
    """
    if traffic_total <= 0:
        raise ValueError("traffic budget must be positive")
    if n_actions <= 0:
        raise ValueError("n_actions must be positive")
    needed = c * math.log(policy_class_size / delta) / (
        target_error**2 * traffic_total
    )
    ceiling = 1.0 / n_actions
    if needed > ceiling:
        raise ValueError(
            f"even uniform randomization (eps={ceiling:g}) cannot reach "
            f"error {target_error} with {traffic_total:,.0f} decisions; "
            f"need eps >= {needed:.4f}"
        )
    return needed


def verify_plan(plan: ExplorationPlan) -> bool:
    """Self-check: the plan's N indeed achieves its target error."""
    achieved = ips_error_bound(
        plan.required_n,
        plan.epsilon,
        k=plan.policy_class_size,
        delta=plan.delta,
    )
    return math.isclose(achieved, plan.target_error, rel_tol=1e-9)
