"""Trajectory (sequence) importance-sampling estimators.

§5 explains why plain IPS breaks when decisions influence future
contexts (the load-balancing scenario of Table 2): the estimator
ignores the candidate policy's long-term impact on the context
distribution.  The fix it sketches is to "reweigh the data based on the
probability of matching *sequences* of actions rather than single
actions" — the classic per-trajectory importance sampling of Precup
(2000) — at the cost of variance exponential in the horizon.

Both estimators here are exercised by
``benchmarks/test_ablation_trajectory.py``, which shows (a) they do not
share IPS's optimism about the degenerate "send to 1" policy, and
(b) their variance explodes with horizon, as §5 predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.estimators.base import (
    EstimatorResult,
    OffPolicyEstimator,
    eligible_actions_fn,
)
from repro.core.policies import Policy
from repro.core.types import Dataset, Interaction


@dataclass
class Trajectory:
    """A sequence of interactions generated under one policy run."""

    interactions: list[Interaction]

    def __len__(self) -> int:
        return len(self.interactions)

    def total_reward(self) -> float:
        """Sum of rewards along the trajectory."""
        return float(sum(i.reward for i in self.interactions))


def split_into_trajectories(dataset: Dataset, horizon: int) -> list[Trajectory]:
    """Chop a logged dataset into consecutive length-``horizon`` episodes.

    Systems logs are one long stream, not episodic; windowing is the
    standard way to bound the horizon (and thus the variance) of
    trajectory estimators.  A trailing partial window is dropped.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    interactions = list(dataset)
    trajectories = []
    for start in range(0, len(interactions) - horizon + 1, horizon):
        trajectories.append(Trajectory(interactions[start : start + horizon]))
    return trajectories


class TrajectoryISEstimator(OffPolicyEstimator):
    """Per-trajectory importance sampling.

    Each episode is weighted by the product of per-step importance
    ratios; the estimate is the weighted mean of per-step average
    rewards.  Unbiased even when actions affect future contexts, but
    the weight product decays geometrically, so almost all episodes get
    weight ≈ 0 unless the candidate closely tracks the logging policy —
    the §5 "exploration coverage" problem, made quantitative.
    """

    def __init__(self, horizon: int) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = horizon
        self.name = f"trajectory-is[h={horizon}]"

    def _episode_weight(
        self, policy: Policy, trajectory: Trajectory, eligible
    ) -> float:
        weight = 1.0
        for interaction in trajectory.interactions:
            pi_prob = policy.probability_of(
                interaction.context, eligible(interaction), interaction.action
            )
            weight *= pi_prob / interaction.propensity
            if weight == 0.0:
                return 0.0
        return weight

    def estimate(self, policy: Policy, dataset: Dataset) -> EstimatorResult:
        self._require_data(dataset)
        trajectories = split_into_trajectories(dataset, self.horizon)
        if not trajectories:
            raise ValueError(
                f"dataset of {len(dataset)} points has no complete "
                f"horizon-{self.horizon} episodes"
            )
        eligible = eligible_actions_fn(dataset)
        terms = np.empty(len(trajectories))
        nonzero = 0
        for index, trajectory in enumerate(trajectories):
            weight = self._episode_weight(policy, trajectory, eligible)
            terms[index] = weight * trajectory.total_reward() / len(trajectory)
            if weight > 0:
                nonzero += 1
        return EstimatorResult(
            value=float(terms.mean()),
            std_error=self._standard_error(terms),
            n=len(trajectories),
            effective_n=nonzero,
            estimator=self.name,
            details={"episodes": len(trajectories), "nonzero_weight": nonzero},
        )


class PerDecisionISEstimator(OffPolicyEstimator):
    """Per-decision importance sampling (PDIS).

    Weights each step's reward by the product of ratios only *up to*
    that step, never by later steps' ratios.  Still unbiased for
    sequential settings, with strictly lower variance than whole-
    trajectory IS — the first rung on §5's ladder of variance
    reduction.
    """

    def __init__(self, horizon: int) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = horizon
        self.name = f"pdis[h={horizon}]"

    def estimate(self, policy: Policy, dataset: Dataset) -> EstimatorResult:
        self._require_data(dataset)
        trajectories = split_into_trajectories(dataset, self.horizon)
        if not trajectories:
            raise ValueError(
                f"dataset of {len(dataset)} points has no complete "
                f"horizon-{self.horizon} episodes"
            )
        eligible = eligible_actions_fn(dataset)
        terms = np.empty(len(trajectories))
        nonzero = 0
        for index, trajectory in enumerate(trajectories):
            weight = 1.0
            total = 0.0
            for interaction in trajectory.interactions:
                pi_prob = policy.probability_of(
                    interaction.context, eligible(interaction), interaction.action
                )
                weight *= pi_prob / interaction.propensity
                if weight == 0.0:
                    break
                total += weight * interaction.reward
            terms[index] = total / len(trajectory)
            if weight > 0:
                nonzero += 1
        return EstimatorResult(
            value=float(terms.mean()),
            std_error=self._standard_error(terms),
            n=len(trajectories),
            effective_n=nonzero,
            estimator=self.name,
            details={"episodes": len(trajectories), "nonzero_weight": nonzero},
        )
