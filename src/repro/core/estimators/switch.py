"""The SWITCH estimator: cap IPS variance with a model fallback.

SWITCH (Wang, Agarwal, Dudík 2017) interpolates between IPS and the
Direct Method *per datapoint*: where the importance weight is small
(≤ τ) it trusts the unbiased IPS term; where the weight explodes it
falls back to the reward model::

    switch(π) = (1/N) Σ_t [ w_t r_t · 1{w_t ≤ τ}
                            + r̂(x_t, π) · 1{w_t > τ} ]

with ``w_t = π(a_t|x_t)/p_t``.  τ → ∞ recovers IPS.

Two notes on this implementation, which thresholds the *realized*
weight of the logged action (the only weight a scavenged log exposes —
Wang et al.'s original form thresholds every action's weight, which
requires the full logging distribution):

- it trades bias for variance only where the log actually produces
  extreme weights; on logs with a *single* propensity level (e.g.
  uniform-random logging) it degenerates to exactly IPS (τ above the
  level) or a heavily biased DM hybrid (τ below), so it earns its keep
  on skewed logging policies, not uniform ones;
- the residual bias is bounded by the candidate's probability mass on
  actions whose weights exceed τ at points where the logged action's
  weight did not.

It rounds out the §5 toolbox next to Doubly Robust for scavenged logs
whose propensities span orders of magnitude.
"""

from __future__ import annotations

from typing import Optional

from repro.core.estimators.base import OffPolicyEstimator
from repro.core.estimators.direct import RewardModel, fit_default_model
from repro.core.policies import Policy
from repro.core.types import Dataset


class SwitchEstimator(OffPolicyEstimator):
    """SWITCH: IPS below the weight threshold τ, Direct Method above."""

    needs_model = True

    def __init__(
        self,
        tau: float = 10.0,
        model: Optional[RewardModel] = None,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(backend=backend)
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = tau
        self.model = model
        self.name = f"switch[tau={tau:g}]"

    def reduction(self, policy: Policy, context, model=None):
        from repro.core.estimators.reductions import SwitchReduction

        model = self.model or model
        if model is None:
            raise ValueError(
                f"{self.name}: reduction requires a fitted reward model"
            )
        return SwitchReduction(
            policy, context, name=self.name, model=model, tau=self.tau
        )

    def _reduction(self, policy: Policy, dataset: Dataset, context):
        return self.reduction(
            policy, context, model=self.model or fit_default_model(dataset)
        )
