"""The SWITCH estimator: cap IPS variance with a model fallback.

SWITCH (Wang, Agarwal, Dudík 2017) interpolates between IPS and the
Direct Method *per datapoint*: where the importance weight is small
(≤ τ) it trusts the unbiased IPS term; where the weight explodes it
falls back to the reward model::

    switch(π) = (1/N) Σ_t [ w_t r_t · 1{w_t ≤ τ}
                            + r̂(x_t, π) · 1{w_t > τ} ]

with ``w_t = π(a_t|x_t)/p_t``.  τ → ∞ recovers IPS.

Two notes on this implementation, which thresholds the *realized*
weight of the logged action (the only weight a scavenged log exposes —
Wang et al.'s original form thresholds every action's weight, which
requires the full logging distribution):

- it trades bias for variance only where the log actually produces
  extreme weights; on logs with a *single* propensity level (e.g.
  uniform-random logging) it degenerates to exactly IPS (τ above the
  level) or a heavily biased DM hybrid (τ below), so it earns its keep
  on skewed logging policies, not uniform ones;
- the residual bias is bounded by the candidate's probability mass on
  actions whose weights exceed τ at points where the logged action's
  weight did not.

It rounds out the §5 toolbox next to Doubly Robust for scavenged logs
whose propensities span orders of magnitude.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.estimators.base import (
    EstimatorResult,
    OffPolicyEstimator,
    eligible_actions_fn,
)
from repro.core.estimators.direct import RewardModel, fit_default_model
from repro.core.policies import Policy
from repro.core.types import Dataset


class SwitchEstimator(OffPolicyEstimator):
    """SWITCH: IPS below the weight threshold τ, Direct Method above."""

    def __init__(
        self,
        tau: float = 10.0,
        model: Optional[RewardModel] = None,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(backend=backend)
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = tau
        self.model = model
        self.name = f"switch[tau={tau:g}]"

    def estimate(self, policy: Policy, dataset: Dataset) -> EstimatorResult:
        self._require_data(dataset)
        model = self.model or fit_default_model(dataset)
        if self.resolved_backend() == "vectorized":
            columns = dataset.columns()
            probs = policy.probabilities_batch(columns)
            weight = (
                columns.probability_of_logged(probs) / columns.propensities
            )
            dm_terms = (probs * model.predict_matrix(columns)).sum(axis=1)
            use_ips = weight <= self.tau
            terms = np.where(use_ips, weight * columns.rewards, dm_terms)
            switched = int(np.count_nonzero(~use_ips))
            matched = int(np.count_nonzero(weight > 0))
        else:
            eligible = eligible_actions_fn(dataset)
            terms = np.empty(len(dataset))
            switched = 0
            matched = 0
            for index, interaction in enumerate(dataset):
                actions = eligible(interaction)
                pi_prob = policy.probability_of(
                    interaction.context, actions, interaction.action
                )
                weight = pi_prob / interaction.propensity
                if weight > 0:
                    matched += 1
                if weight <= self.tau:
                    terms[index] = weight * interaction.reward
                else:
                    switched += 1
                    probs = policy.distribution(interaction.context, actions)
                    terms[index] = sum(
                        p * model.predict(interaction.context, a)
                        for p, a in zip(probs, actions)
                    )
        return EstimatorResult(
            value=float(terms.mean()),
            std_error=self._standard_error(terms),
            n=len(dataset),
            effective_n=matched,
            estimator=self.name,
            details={
                "match_rate": matched / len(dataset),
                "switch_fraction": switched / len(dataset),
            },
        )
