"""Off-policy estimators and their confidence bounds.

Implements the evaluation half of the methodology: given exploration
data ``⟨x, a, r, p⟩`` logged by one policy, estimate the average reward
any *other* policy would have obtained.

- :mod:`~repro.core.estimators.ips` — inverse propensity scoring
  (Eq. in §4), clipped IPS, and self-normalized IPS.
- :mod:`~repro.core.estimators.direct` — the model-based Direct Method.
- :mod:`~repro.core.estimators.doubly_robust` — the hybrid DR estimator
  §5 proposes for variance reduction.
- :mod:`~repro.core.estimators.trajectory` — per-trajectory importance
  sampling for settings where decisions affect future contexts (the
  load-balancing failure mode of Table 2).
- :mod:`~repro.core.estimators.bounds` — the Eq. 1 confidence interval,
  the A/B-testing bound, and the sample-size calculators behind
  Figs. 1–2.
- :mod:`~repro.core.estimators.fallback` — graceful degradation down
  the IPS → clipped IPS → SNIPS → DM ladder when reliability
  diagnostics flag an estimate as untrustworthy.
"""

from repro.core.estimators.base import EstimatorResult, OffPolicyEstimator
from repro.core.estimators.ips import ClippedIPSEstimator, IPSEstimator, SNIPSEstimator
from repro.core.estimators.direct import DirectMethodEstimator, RewardModel
from repro.core.estimators.doubly_robust import DoublyRobustEstimator
from repro.core.estimators.fallback import FallbackEstimator, default_ladder
from repro.core.estimators.switch import SwitchEstimator
from repro.core.estimators.trajectory import (
    PerDecisionISEstimator,
    Trajectory,
    TrajectoryISEstimator,
    split_into_trajectories,
)
from repro.core.estimators.bounds import (
    ConfidenceInterval,
    ab_testing_error_bound,
    ab_testing_sample_size,
    empirical_bernstein_interval,
    hoeffding_interval,
    ips_error_bound,
    ips_sample_size,
)

__all__ = [
    "EstimatorResult",
    "OffPolicyEstimator",
    "IPSEstimator",
    "ClippedIPSEstimator",
    "SNIPSEstimator",
    "DirectMethodEstimator",
    "RewardModel",
    "DoublyRobustEstimator",
    "FallbackEstimator",
    "default_ladder",
    "SwitchEstimator",
    "Trajectory",
    "TrajectoryISEstimator",
    "PerDecisionISEstimator",
    "split_into_trajectories",
    "ConfidenceInterval",
    "hoeffding_interval",
    "empirical_bernstein_interval",
    "ips_error_bound",
    "ips_sample_size",
    "ab_testing_error_bound",
    "ab_testing_sample_size",
]
