"""The fold-based reduction kernel behind every estimator backend.

Every estimator in this package — IPS, clipped IPS, SNIPS, the Direct
Method, Doubly Robust, SWITCH — is a mean of per-interaction terms plus
a handful of moments.  That makes each of them a *reduction*::

    state = reduction.init_state()
    for chunk in chunks:                 # any partition of the log
        state = reduction.fold(state, chunk_columns)
    merged = reduction.merge(state_a, state_b)   # associative
    result = reduction.finalize(state, log_summary)

``fold`` consumes a :class:`~repro.core.columns.DatasetColumns` view of
one chunk; states carry only sufficient statistics (weighted sums,
match counts, Welford term moments, and the diagnostics accumulators
for Kish ESS / weight tails / the E[w]=1 identity), so peak memory is
O(chunk), not O(log).  Because ``merge`` is associative, chunks can be
folded in parallel worker processes and combined in chunk order — the
engine's ``"chunked"`` backend and the streaming wrappers both run on
these states (see :mod:`repro.core.engine` and
:mod:`repro.core.streaming`).

Backends map onto the kernel as follows:

- ``"vectorized"`` — one ``fold`` over the whole-log columnar view;
- ``"scalar"`` — :meth:`EstimatorReduction.fold_scalar` gathers the
  per-row reference loop's outputs into one chunk, then folds it;
- ``"chunked"`` — many folds, one per chunk, optionally in parallel.

All three paths share ``finalize``, so they agree to floating-point
reassociation (asserted by ``tests/core/test_reduction_equivalence.py``).

Exact chunk-size invariance caveats worth knowing:

- The 99th-percentile weight is *order statistics*, not a sum.  Each
  :class:`WeightStats` keeps the top ``N − floor(0.99·(N−1))`` weights
  for the known total row count ``N`` (~1% of N), which makes the
  merged q99 exact under any merge pattern — not an approximation.
- Welford/Chan moment merging and the per-action inverse-propensity
  sums reassociate float additions, so chunked results match whole-log
  results to ~1e-12 relative, not bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.columns import DatasetColumns
from repro.core.diagnostics import (
    ReliabilityDiagnostics,
    WeightSummary,
    diagnose_from_stats,
)
from repro.core.estimators.base import (
    EstimatorResult,
    eligible_actions_fn,
)
from repro.core.policies import Policy
from repro.core.types import Dataset


# ---------------------------------------------------------------------------
# accumulators


@dataclass
class Moments:
    """Running count / mean / sum of squared deviations of a series.

    ``push`` is Welford's single-point recurrence (the one
    :class:`~repro.core.streaming.StreamingIPS` has always used);
    ``fold`` ingests a whole chunk at array speed; ``merge_in`` is
    Chan's parallel combination.  All three agree with the batch
    ``mean``/``std(ddof=1)`` up to float reassociation, and ``fold`` of
    a single whole-log chunk reproduces them exactly.
    """

    n: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def push(self, value: float) -> None:
        """Welford update with one observation (O(1) streaming mode)."""
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (value - self.mean)

    @classmethod
    def from_array(cls, values: np.ndarray) -> "Moments":
        values = np.asarray(values, dtype=float)
        n = int(values.size)
        if n == 0:
            return cls()
        mean = float(values.mean())
        return cls(n=n, mean=mean, m2=float(np.sum((values - mean) ** 2)))

    def fold(self, values: np.ndarray) -> None:
        """Ingest one chunk of observations."""
        self.merge_in(Moments.from_array(values))

    def merge_in(self, other: "Moments") -> None:
        """Chan's parallel-variance combination; associative."""
        if other.n == 0:
            return
        if self.n == 0:
            self.n, self.mean, self.m2 = other.n, other.mean, other.m2
            return
        n = self.n + other.n
        delta = other.mean - self.mean
        self.mean = (self.n * self.mean + other.n * other.mean) / n
        self.m2 = self.m2 + other.m2 + delta * delta * (self.n * other.n) / n
        self.n = n

    def std_error(self) -> float:
        """Standard error of the mean; ``inf`` below two observations."""
        if self.n <= 1:
            return float("inf")
        variance = self.m2 / (self.n - 1)
        return math.sqrt(variance / self.n)


@dataclass
class WeightStats:
    """Diagnostics accumulator over an importance-weight vector.

    Folds the power sums behind Kish ESS and the E[w]=1 identity, the
    running maximum, the match count, and — because a quantile is not a
    sum — the largest ``tail_k`` weights seen so far.  ``tail_k`` is
    sized from the *total* row count (known up front by every driver:
    ``len(dataset)`` in memory, the discovery pass for files) as
    ``N − floor(0.99·(N−1))``, the exact number of weights at or above
    the q99 order statistic; keeping that many per partial state makes
    the merged q99 exact for any merge tree.
    """

    tail_k: int
    n: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    maximum: float = 0.0
    matches: int = 0
    tail: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=float)
    )

    @classmethod
    def for_rows(cls, total_rows: int) -> "WeightStats":
        if total_rows > 0:
            tail_k = total_rows - int(0.99 * (total_rows - 1))
        else:
            tail_k = 1
        return cls(tail_k=max(1, tail_k))

    def fold(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=float)
        size = int(weights.size)
        if size == 0:
            return
        self.n += size
        self.total += float(np.sum(weights))
        self.total_sq += float(np.sum(np.square(weights)))
        self.maximum = max(self.maximum, float(weights.max()))
        self.matches += int(np.count_nonzero(weights))
        if size > self.tail_k:
            cut = size - self.tail_k
            chunk_tail = np.partition(weights, cut)[cut:]
        else:
            chunk_tail = weights
        self._absorb_tail(chunk_tail)

    def _absorb_tail(self, candidates: np.ndarray) -> None:
        merged = np.sort(np.concatenate([self.tail, candidates]))
        if merged.size > self.tail_k:
            merged = merged[merged.size - self.tail_k:]
        self.tail = merged

    def merge_in(self, other: "WeightStats") -> None:
        if other.n == 0:
            return
        if self.tail_k != other.tail_k:
            raise ValueError(
                "cannot merge WeightStats sized for different totals "
                f"({self.tail_k} vs {other.tail_k})"
            )
        self.n += other.n
        self.total += other.total
        self.total_sq += other.total_sq
        self.maximum = max(self.maximum, other.maximum)
        self.matches += other.matches
        self._absorb_tail(other.tail)

    def q99(self) -> float:
        """The 0.99-quantile weight, exact while ``n ≤`` the sized total."""
        if self.n == 0:
            return 0.0
        needed = self.n - int(0.99 * (self.n - 1))
        position = self.tail.size - min(needed, self.tail.size)
        return float(self.tail[position])

    def summary(self) -> WeightSummary:
        return WeightSummary(
            n=self.n,
            total=self.total,
            total_sq=self.total_sq,
            maximum=self.maximum,
            q99=self.q99(),
        )


@dataclass
class RatioMoments:
    """Sufficient statistics of the SNIPS ratio ``Σwr / Σw``.

    Carries the five power sums that reconstruct both the ratio and its
    delta-method standard error
    ``sqrt(Σ w²(r−v)²)/Σw = sqrt(Σ(wr)² − 2vΣw²r + v²Σw²)/Σw``.
    """

    n: int = 0
    weight_sum: float = 0.0
    numerator_sum: float = 0.0  # Σ w·r
    sq_weight_sum: float = 0.0  # Σ w²
    sq_cross_sum: float = 0.0  # Σ w²·r
    sq_numerator_sum: float = 0.0  # Σ (w·r)²

    def fold(self, weights: np.ndarray, rewards: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=float)
        rewards = np.asarray(rewards, dtype=float)
        if weights.size == 0:
            return
        numerators = weights * rewards
        self.n += int(weights.size)
        self.weight_sum += float(np.sum(weights))
        self.numerator_sum += float(np.sum(numerators))
        self.sq_weight_sum += float(np.sum(weights * weights))
        self.sq_cross_sum += float(np.sum(numerators * weights))
        self.sq_numerator_sum += float(np.sum(numerators * numerators))

    def merge_in(self, other: "RatioMoments") -> None:
        self.n += other.n
        self.weight_sum += other.weight_sum
        self.numerator_sum += other.numerator_sum
        self.sq_weight_sum += other.sq_weight_sum
        self.sq_cross_sum += other.sq_cross_sum
        self.sq_numerator_sum += other.sq_numerator_sum

    def value(self) -> float:
        if self.weight_sum == 0.0:
            return float("nan")
        return self.numerator_sum / self.weight_sum

    def std_error(self) -> float:
        if self.n <= 1 or self.weight_sum == 0.0:
            return float("inf")
        v = self.value()
        residual_sq = (
            self.sq_numerator_sum
            - 2.0 * v * self.sq_cross_sum
            + v * v * self.sq_weight_sum
        )
        # The expansion can go microscopically negative by cancellation.
        return math.sqrt(max(0.0, residual_sq)) / self.weight_sum


@dataclass
class LogStats:
    """Policy-independent facts of the log, folded chunk by chunk.

    Row count, propensity floor, and the per-action ``Σ 1/p`` sums
    behind the A1 identity check.  One instance serves every (policy ×
    estimator) reduction in a run — the identity error depends only on
    the log, so class searches must not pay for it per candidate.
    """

    n: int = 0
    min_propensity: float = float("inf")
    inverse_sums: dict = field(default_factory=dict)

    def fold(self, actions: np.ndarray, propensities: np.ndarray) -> None:
        propensities = np.asarray(propensities, dtype=float)
        actions = np.asarray(actions)
        if propensities.size == 0:
            return
        self.n += int(propensities.size)
        self.min_propensity = min(
            self.min_propensity, float(propensities.min())
        )
        inverse = 1.0 / propensities
        for action in np.unique(actions):
            key = int(action)
            self.inverse_sums[key] = self.inverse_sums.get(key, 0.0) + float(
                inverse[actions == action].sum()
            )

    def merge_in(self, other: "LogStats") -> None:
        self.n += other.n
        self.min_propensity = min(self.min_propensity, other.min_propensity)
        for key, value in other.inverse_sums.items():
            self.inverse_sums[key] = self.inverse_sums.get(key, 0.0) + value

    def identity_error(self) -> float:
        if self.n == 0:
            return 0.0
        return max(
            (abs(total / self.n - 1.0) for total in self.inverse_sums.values()),
            default=0.0,
        )

    def summary(self) -> "LogSummary":
        return LogSummary(
            n=self.n,
            min_propensity=(
                self.min_propensity if self.n else 0.0
            ),
            identity_error=self.identity_error(),
        )


@dataclass(frozen=True)
class LogSummary:
    """What ``finalize`` needs to know about the whole log."""

    n: int
    min_propensity: float
    identity_error: float

    @classmethod
    def from_columns(cls, columns: DatasetColumns) -> "LogSummary":
        return cls(
            n=columns.n,
            min_propensity=(
                float(columns.propensities.min()) if columns.n else 0.0
            ),
            identity_error=columns.propensity_identity_error(),
        )


@dataclass
class ReductionContext:
    """Log-level facts pinned before folding starts.

    ``observed_actions`` (the global logged support) and ``total_rows``
    must describe the *whole* log, not a chunk — coverage and the q99
    tail buffer depend on them.  In-memory drivers read both off the
    dataset; the file driver discovers them in its first pass.
    """

    observed_actions: np.ndarray
    total_rows: int

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "ReductionContext":
        columns = dataset.columns()
        return cls(
            observed_actions=columns.observed_actions(),
            total_rows=len(dataset),
        )


@dataclass
class ChunkTerms:
    """Per-row quantities of one chunk, ready to fold into a state."""

    n: int
    terms: Optional[np.ndarray] = None
    weights: Optional[np.ndarray] = None
    rewards: Optional[np.ndarray] = None
    coverage_sum: float = 0.0
    matched: int = 0
    clipped: int = 0
    switched: int = 0


@dataclass
class FoldState:
    """Sufficient statistics of a partial evaluation; mergeable."""

    terms: Moments = field(default_factory=Moments)
    weights: Optional[WeightStats] = None
    ratio: Optional[RatioMoments] = None
    coverage_sum: float = 0.0
    matched: int = 0
    clipped: int = 0
    switched: int = 0
    #: Raw per-row term chunks, in fold order — populated only when the
    #: reduction was built with ``collect_terms=True`` (bootstrap needs
    #: the term vector; 8 bytes/row is cheap even when the log is not).
    term_chunks: Optional[list] = None


# ---------------------------------------------------------------------------
# the reduction protocol


class EstimatorReduction:
    """One estimator's fold/merge/finalize over one candidate policy.

    Subclasses supply :meth:`chunk_batch` (array math over a chunk's
    columnar view — shared by the vectorized and chunked backends) and
    :meth:`chunk_scalar` (the per-row reference loop), both returning a
    :class:`ChunkTerms`; folding and merging are generic.
    """

    #: Diagnostics profile, or ``None`` for estimators without a verdict.
    profile: Optional[str] = None

    def __init__(
        self,
        policy: Policy,
        context: ReductionContext,
        name: str,
        collect_terms: bool = False,
    ) -> None:
        self.policy = policy
        self.context = context
        self.name = name
        self.collect_terms = collect_terms

    # -- state lifecycle ---------------------------------------------------

    def init_state(self) -> FoldState:
        state = FoldState()
        if self.profile is not None and self._uses_weights():
            state.weights = WeightStats.for_rows(self.context.total_rows)
        if self._uses_ratio():
            state.ratio = RatioMoments()
        if self.collect_terms:
            state.term_chunks = []
        return state

    def _uses_weights(self) -> bool:
        return True

    def _uses_ratio(self) -> bool:
        return False

    def fold(self, state: FoldState, columns: DatasetColumns) -> FoldState:
        """Fold one chunk's columnar view into ``state``."""
        return self.fold_chunk(state, self.chunk_batch(columns))

    def fold_scalar(self, state: FoldState, dataset: Dataset) -> FoldState:
        """Fold the whole dataset via the per-row reference loop."""
        return self.fold_chunk(state, self.chunk_scalar(dataset))

    def fold_chunk(self, state: FoldState, chunk: ChunkTerms) -> FoldState:
        if chunk.terms is not None:
            terms = np.asarray(chunk.terms, dtype=float)
            state.terms.fold(terms)
            if state.term_chunks is not None:
                state.term_chunks.append(terms)
        if state.weights is not None and chunk.weights is not None:
            state.weights.fold(chunk.weights)
        if state.ratio is not None:
            state.ratio.fold(chunk.weights, chunk.rewards)
        state.coverage_sum += chunk.coverage_sum
        state.matched += chunk.matched
        state.clipped += chunk.clipped
        state.switched += chunk.switched
        return state

    def merge(self, state: FoldState, other: FoldState) -> FoldState:
        """Combine two partial states (associative); returns ``state``."""
        state.terms.merge_in(other.terms)
        if state.weights is not None and other.weights is not None:
            state.weights.merge_in(other.weights)
        if state.ratio is not None and other.ratio is not None:
            state.ratio.merge_in(other.ratio)
        state.coverage_sum += other.coverage_sum
        state.matched += other.matched
        state.clipped += other.clipped
        state.switched += other.switched
        if state.term_chunks is not None and other.term_chunks is not None:
            state.term_chunks.extend(other.term_chunks)
        return state

    def collected_terms(self, state: FoldState) -> np.ndarray:
        """The per-row term vector, in log order (collect_terms mode)."""
        if state.term_chunks is None:
            raise ValueError(
                "reduction was not built with collect_terms=True"
            )
        if not state.term_chunks:
            return np.empty(0, dtype=float)
        return np.concatenate(state.term_chunks)

    # -- per-estimator hooks ----------------------------------------------

    def chunk_batch(self, columns: DatasetColumns) -> ChunkTerms:
        raise NotImplementedError

    def chunk_scalar(self, dataset: Dataset) -> ChunkTerms:
        raise NotImplementedError

    def finalize(self, state: FoldState, log: LogSummary) -> EstimatorResult:
        raise NotImplementedError

    # -- shared pieces -----------------------------------------------------

    def _coverage(self, state: FoldState, log: LogSummary) -> float:
        return state.coverage_sum / log.n if log.n else 0.0

    def _diagnostics(
        self, state: FoldState, log: LogSummary
    ) -> Optional[ReliabilityDiagnostics]:
        if self.profile is None:
            return None
        summary = (
            state.weights.summary() if state.weights is not None else None
        )
        return diagnose_from_stats(
            summary,
            n=log.n,
            min_propensity=log.min_propensity,
            identity_error=log.identity_error,
            support_coverage=self._coverage(state, log),
            profile=self.profile,
        )


def _batch_weights_and_coverage(
    policy: Policy,
    columns: DatasetColumns,
    observed: np.ndarray,
) -> tuple[np.ndarray, float]:
    """One probability pass: importance weights + summed coverage mass."""
    matrix = policy.probabilities_batch(columns)
    weights = columns.probability_of_logged(matrix) / columns.propensities
    coverage_sum = float(matrix[:, observed].sum(axis=1).sum())
    return weights, coverage_sum


def _scalar_weights_and_coverage(
    policy: Policy,
    dataset: Dataset,
    observed: np.ndarray,
) -> tuple[np.ndarray, float]:
    """Per-row reference loop for weights + coverage (one pass)."""
    eligible = eligible_actions_fn(dataset)
    observed_set = set(np.asarray(observed).tolist())
    weights = np.empty(len(dataset))
    coverage_sum = 0.0
    for index, interaction in enumerate(dataset):
        actions = eligible(interaction)
        probs = policy.distribution(interaction.context, actions)
        pi_prob = 0.0
        for position, action in enumerate(actions):
            if action == interaction.action:
                pi_prob = float(probs[position])
            if action in observed_set:
                coverage_sum += float(probs[position])
        weights[index] = pi_prob / interaction.propensity
    return weights, coverage_sum


class IPSReduction(EstimatorReduction):
    """Plain inverse-propensity scoring as a reduction."""

    profile = "ips"

    def chunk_batch(self, columns: DatasetColumns) -> ChunkTerms:
        weights, coverage_sum = _batch_weights_and_coverage(
            self.policy, columns, self.context.observed_actions
        )
        return self._chunk_from_weights(
            weights, columns.rewards, coverage_sum
        )

    def chunk_scalar(self, dataset: Dataset) -> ChunkTerms:
        weights, coverage_sum = _scalar_weights_and_coverage(
            self.policy, dataset, self.context.observed_actions
        )
        return self._chunk_from_weights(
            weights, dataset.rewards(), coverage_sum
        )

    def _chunk_from_weights(
        self,
        weights: np.ndarray,
        rewards: np.ndarray,
        coverage_sum: float,
    ) -> ChunkTerms:
        return ChunkTerms(
            n=int(weights.size),
            terms=weights * rewards,
            weights=weights,
            rewards=rewards,
            coverage_sum=coverage_sum,
            matched=int(np.count_nonzero(weights)),
        )

    def finalize(self, state: FoldState, log: LogSummary) -> EstimatorResult:
        n = state.terms.n
        return EstimatorResult(
            value=state.terms.mean if n else float("nan"),
            std_error=state.terms.std_error(),
            n=n,
            effective_n=state.matched,
            estimator=self.name,
            details={"match_rate": state.matched / n if n else 0.0},
            diagnostics=self._diagnostics(state, log),
        )


class ClippedIPSReduction(IPSReduction):
    """IPS with weights clipped at ``max_weight``."""

    profile = "clipped"

    def __init__(
        self,
        policy: Policy,
        context: ReductionContext,
        name: str,
        max_weight: float,
        collect_terms: bool = False,
    ) -> None:
        super().__init__(policy, context, name, collect_terms=collect_terms)
        self.max_weight = max_weight

    def _chunk_from_weights(
        self,
        raw: np.ndarray,
        rewards: np.ndarray,
        coverage_sum: float,
    ) -> ChunkTerms:
        weights = np.minimum(raw, self.max_weight)
        return ChunkTerms(
            n=int(raw.size),
            terms=weights * rewards,
            # Diagnose the weights actually used: clipping caps the
            # tail, which the "clipped" profile accounts for.
            weights=weights,
            rewards=rewards,
            coverage_sum=coverage_sum,
            matched=int(np.count_nonzero(weights)),
            clipped=int(np.count_nonzero(raw > self.max_weight)),
        )

    def finalize(self, state: FoldState, log: LogSummary) -> EstimatorResult:
        result = super().finalize(state, log)
        n = state.terms.n
        result.details["clipped_fraction"] = (
            state.clipped / n if n else 0.0
        )
        return result


class SNIPSReduction(IPSReduction):
    """Self-normalized IPS: a ratio of folded sums."""

    profile = "snips"

    def _uses_ratio(self) -> bool:
        return True

    def finalize(self, state: FoldState, log: LogSummary) -> EstimatorResult:
        assert state.ratio is not None
        n = state.ratio.n
        diagnostics = self._diagnostics(state, log)
        if state.ratio.weight_sum == 0.0:
            # The candidate never matches the log: no information at all.
            return EstimatorResult(
                value=float("nan"),
                std_error=float("inf"),
                n=n,
                effective_n=0,
                estimator=self.name,
                details={"match_rate": 0.0},
                diagnostics=diagnostics,
            )
        summary = state.weights.summary() if state.weights else None
        return EstimatorResult(
            value=state.ratio.value(),
            std_error=state.ratio.std_error(),
            n=n,
            effective_n=state.matched,
            estimator=self.name,
            details={
                "match_rate": state.matched / n if n else 0.0,
                # Kish ESS with the underflow guard: denormal weights
                # can make Σw² exactly 0 while Σw > 0.
                "effective_sample_size": (
                    summary.effective_sample_size if summary else 0.0
                ),
            },
            diagnostics=diagnostics,
        )


class DirectMethodReduction(EstimatorReduction):
    """Model-based evaluation: fold the model's predicted values."""

    profile = "model"

    def __init__(
        self,
        policy: Policy,
        context: ReductionContext,
        name: str,
        model,
        collect_terms: bool = False,
    ) -> None:
        super().__init__(policy, context, name, collect_terms=collect_terms)
        self.model = model

    def _uses_weights(self) -> bool:
        return False

    def chunk_batch(self, columns: DatasetColumns) -> ChunkTerms:
        probs = self.policy.probabilities_batch(columns)
        predictions = (probs * self.model.predict_matrix(columns)).sum(axis=1)
        observed = self.context.observed_actions
        coverage_sum = float(probs[:, observed].sum(axis=1).sum())
        return ChunkTerms(
            n=columns.n,
            terms=predictions,
            coverage_sum=coverage_sum,
            matched=columns.n,
        )

    def chunk_scalar(self, dataset: Dataset) -> ChunkTerms:
        eligible = eligible_actions_fn(dataset)
        observed_set = set(
            np.asarray(self.context.observed_actions).tolist()
        )
        predictions = np.empty(len(dataset))
        coverage_sum = 0.0
        for index, interaction in enumerate(dataset):
            actions = eligible(interaction)
            probs = self.policy.distribution(interaction.context, actions)
            predictions[index] = sum(
                p * self.model.predict(interaction.context, a)
                for p, a in zip(probs, actions)
            )
            coverage_sum += sum(
                float(p)
                for p, a in zip(probs, actions)
                if a in observed_set
            )
        return ChunkTerms(
            n=len(dataset),
            terms=predictions,
            coverage_sum=coverage_sum,
            matched=len(dataset),
        )

    def finalize(self, state: FoldState, log: LogSummary) -> EstimatorResult:
        n = state.terms.n
        return EstimatorResult(
            value=state.terms.mean if n else float("nan"),
            std_error=state.terms.std_error(),
            n=n,
            effective_n=n,
            estimator=self.name,
            diagnostics=self._diagnostics(state, log),
        )


class DoublyRobustReduction(EstimatorReduction):
    """Model baseline + importance-weighted residual correction."""

    profile = "ips"

    def __init__(
        self,
        policy: Policy,
        context: ReductionContext,
        name: str,
        model,
        collect_terms: bool = False,
    ) -> None:
        super().__init__(policy, context, name, collect_terms=collect_terms)
        self.model = model

    def chunk_batch(self, columns: DatasetColumns) -> ChunkTerms:
        probs = self.policy.probabilities_batch(columns)
        predictions = self.model.predict_matrix(columns)
        baseline = (probs * predictions).sum(axis=1)
        ratio = columns.probability_of_logged(probs) / columns.propensities
        residual = columns.rewards - columns.probability_of_logged(
            predictions
        )
        observed = self.context.observed_actions
        return ChunkTerms(
            n=columns.n,
            terms=baseline + ratio * residual,
            weights=ratio,
            coverage_sum=float(probs[:, observed].sum(axis=1).sum()),
            matched=int(np.count_nonzero(ratio > 0)),
        )

    def chunk_scalar(self, dataset: Dataset) -> ChunkTerms:
        eligible = eligible_actions_fn(dataset)
        observed_set = set(
            np.asarray(self.context.observed_actions).tolist()
        )
        terms = np.empty(len(dataset))
        weights = np.empty(len(dataset))
        matched = 0
        coverage_sum = 0.0
        for index, interaction in enumerate(dataset):
            actions = eligible(interaction)
            probs = self.policy.distribution(interaction.context, actions)
            baseline = sum(
                p * self.model.predict(interaction.context, a)
                for p, a in zip(probs, actions)
            )
            pi_prob = 0.0
            for position, action in enumerate(actions):
                if action == interaction.action:
                    pi_prob = float(probs[position])
                if action in observed_set:
                    coverage_sum += float(probs[position])
            ratio = pi_prob / interaction.propensity
            if ratio > 0:
                matched += 1
            residual = interaction.reward - self.model.predict(
                interaction.context, interaction.action
            )
            terms[index] = baseline + ratio * residual
            weights[index] = ratio
        return ChunkTerms(
            n=len(dataset),
            terms=terms,
            weights=weights,
            coverage_sum=coverage_sum,
            matched=matched,
        )

    def finalize(self, state: FoldState, log: LogSummary) -> EstimatorResult:
        n = state.terms.n
        return EstimatorResult(
            value=state.terms.mean if n else float("nan"),
            std_error=state.terms.std_error(),
            n=n,
            effective_n=state.matched,
            estimator=self.name,
            details={"match_rate": state.matched / n if n else 0.0},
            diagnostics=self._diagnostics(state, log),
        )


class SwitchReduction(EstimatorReduction):
    """SWITCH: IPS below the weight threshold τ, Direct Method above."""

    profile = None  # SWITCH reports no reliability verdict

    def __init__(
        self,
        policy: Policy,
        context: ReductionContext,
        name: str,
        model,
        tau: float,
        collect_terms: bool = False,
    ) -> None:
        super().__init__(policy, context, name, collect_terms=collect_terms)
        self.model = model
        self.tau = tau

    def chunk_batch(self, columns: DatasetColumns) -> ChunkTerms:
        probs = self.policy.probabilities_batch(columns)
        weight = columns.probability_of_logged(probs) / columns.propensities
        dm_terms = (probs * self.model.predict_matrix(columns)).sum(axis=1)
        use_ips = weight <= self.tau
        return ChunkTerms(
            n=columns.n,
            terms=np.where(use_ips, weight * columns.rewards, dm_terms),
            matched=int(np.count_nonzero(weight > 0)),
            switched=int(np.count_nonzero(~use_ips)),
        )

    def chunk_scalar(self, dataset: Dataset) -> ChunkTerms:
        eligible = eligible_actions_fn(dataset)
        terms = np.empty(len(dataset))
        switched = 0
        matched = 0
        for index, interaction in enumerate(dataset):
            actions = eligible(interaction)
            pi_prob = self.policy.probability_of(
                interaction.context, actions, interaction.action
            )
            weight = pi_prob / interaction.propensity
            if weight > 0:
                matched += 1
            if weight <= self.tau:
                terms[index] = weight * interaction.reward
            else:
                switched += 1
                probs = self.policy.distribution(
                    interaction.context, actions
                )
                terms[index] = sum(
                    p * self.model.predict(interaction.context, a)
                    for p, a in zip(probs, actions)
                )
        return ChunkTerms(
            n=len(dataset),
            terms=terms,
            matched=matched,
            switched=switched,
        )

    def finalize(self, state: FoldState, log: LogSummary) -> EstimatorResult:
        n = state.terms.n
        return EstimatorResult(
            value=state.terms.mean if n else float("nan"),
            std_error=state.terms.std_error(),
            n=n,
            effective_n=state.matched,
            estimator=self.name,
            details={
                "match_rate": state.matched / n if n else 0.0,
                "switch_fraction": state.switched / n if n else 0.0,
            },
        )


class CompositeReduction(EstimatorReduction):
    """Fold several reductions over the same chunks simultaneously.

    The state is a list of the member states; ``finalize`` is supplied
    by subclasses (the fallback ladder selects among rung results).
    Used where a single streamed pass must feed multiple estimators.
    """

    def __init__(self, members: Sequence[EstimatorReduction], name: str) -> None:
        if not members:
            raise ValueError("composite reduction needs at least one member")
        self.members = tuple(members)
        self.name = name
        self.policy = members[0].policy
        self.context = members[0].context
        self.collect_terms = False

    def init_state(self) -> list:  # type: ignore[override]
        return [member.init_state() for member in self.members]

    def fold(self, state: list, columns: DatasetColumns) -> list:  # type: ignore[override]
        return [
            member.fold(part, columns)
            for member, part in zip(self.members, state)
        ]

    def fold_scalar(self, state: list, dataset: Dataset) -> list:  # type: ignore[override]
        return [
            member.fold_scalar(part, dataset)
            for member, part in zip(self.members, state)
        ]

    def merge(self, state: list, other: list) -> list:  # type: ignore[override]
        return [
            member.merge(a, b)
            for member, a, b in zip(self.members, state, other)
        ]

    def finalize(self, state: list, log: LogSummary) -> EstimatorResult:  # type: ignore[override]
        raise NotImplementedError
