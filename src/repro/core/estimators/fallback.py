"""Graceful degradation: fall down an estimator ladder, never crash.

When the reliability diagnostics (:mod:`repro.core.diagnostics`) flag
an IPS estimate as ``UNRELIABLE`` — the Table 2 situation — the honest
move is not to return the number anyway, nor to crash, but to degrade
to an estimator whose failure mode is gentler and *say so*.
:class:`FallbackEstimator` walks a ladder::

    IPS  →  clipped IPS  →  SNIPS  →  Direct Method

accepting the first rung whose estimate is finite and whose diagnostics
clear the UNRELIABLE bar.  The last rung (DM by default) is terminal:
its value is always finite, so the caller is guaranteed a usable —
if biased — number.  Every attempt, with its verdict and the reasons
it was rejected, is logged (``repro.fallback`` logger) and recorded in
``details["fallback"]`` so the downgrade is auditable.
"""

from __future__ import annotations

import logging
import math
from typing import Optional, Sequence

from repro.core.estimators.base import EstimatorResult, OffPolicyEstimator
from repro.core.estimators.direct import DirectMethodEstimator
from repro.core.estimators.ips import (
    ClippedIPSEstimator,
    IPSEstimator,
    SNIPSEstimator,
)
from repro.core.policies import Policy
from repro.core.types import Dataset

logger = logging.getLogger("repro.fallback")


def default_ladder(backend: Optional[str] = None) -> tuple[OffPolicyEstimator, ...]:
    """The standard degradation ladder, most-trusted first."""
    return (
        IPSEstimator(backend=backend),
        ClippedIPSEstimator(backend=backend),
        SNIPSEstimator(backend=backend),
        DirectMethodEstimator(backend=backend),
    )


class FallbackEstimator(OffPolicyEstimator):
    """Try each ladder rung until one produces a reliable estimate.

    The returned :class:`EstimatorResult` is the accepted rung's result
    with two additions in ``details``:

    - ``"fallback"`` — one entry per attempted rung: its name, verdict,
      whether it was accepted, and the diagnostic reasons if not;
    - ``"degraded"`` — True when the first rung was rejected, i.e. the
      caller is looking at a downgraded estimate.

    The result's ``estimator`` field names the rung that produced it,
    so downstream reporting stays truthful about what was computed.
    """

    name = "auto"

    def __init__(
        self,
        ladder: Optional[Sequence[OffPolicyEstimator]] = None,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(backend=backend)
        self.ladder = tuple(ladder) if ladder is not None else default_ladder(backend)
        if not self.ladder:
            raise ValueError("fallback ladder must have at least one rung")

    def estimate(self, policy: Policy, dataset: Dataset) -> EstimatorResult:
        self._require_data(dataset)
        attempts: list[dict] = []
        chosen: Optional[EstimatorResult] = None
        for rung in self.ladder:
            result = rung.estimate(policy, dataset)
            finite = math.isfinite(result.value)
            reasons: list[str] = []
            if not finite:
                reasons.append(f"estimate is {result.value}")
            if result.diagnostics is not None:
                reasons.extend(result.diagnostics.reasons)
            accepted = finite and result.reliable
            attempts.append(
                {
                    "estimator": result.estimator,
                    "verdict": (
                        result.diagnostics.verdict
                        if result.diagnostics is not None
                        else "OK"
                    ),
                    "accepted": accepted,
                    "reasons": reasons,
                }
            )
            chosen = result
            if accepted:
                break
            logger.info(
                "fallback: %s rejected %s for policy %r: %s",
                self.name,
                result.estimator,
                policy.name,
                "; ".join(reasons) or "unreliable",
            )
        assert chosen is not None
        degraded = len(attempts) > 1 or not attempts[0]["accepted"]
        if degraded:
            logger.info(
                "fallback: policy %r served by %s after %d attempt(s)",
                policy.name,
                chosen.estimator,
                len(attempts),
            )
        details = dict(chosen.details)
        details["fallback"] = attempts
        details["degraded"] = degraded
        return EstimatorResult(
            value=chosen.value,
            std_error=chosen.std_error,
            n=chosen.n,
            effective_n=chosen.effective_n,
            estimator=chosen.estimator,
            details=details,
            diagnostics=chosen.diagnostics,
        )
