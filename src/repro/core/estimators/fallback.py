"""Graceful degradation: fall down an estimator ladder, never crash.

When the reliability diagnostics (:mod:`repro.core.diagnostics`) flag
an IPS estimate as ``UNRELIABLE`` — the Table 2 situation — the honest
move is not to return the number anyway, nor to crash, but to degrade
to an estimator whose failure mode is gentler and *say so*.
:class:`FallbackEstimator` walks a ladder::

    IPS  →  clipped IPS  →  SNIPS  →  Direct Method

accepting the first rung whose estimate is finite and whose diagnostics
clear the UNRELIABLE bar.  The last rung (DM by default) is terminal:
its value is always finite, so the caller is guaranteed a usable —
if biased — number.  Every attempt, with its verdict and the reasons
it was rejected, is logged (``repro.fallback`` logger) and recorded in
``details["fallback"]`` so the downgrade is auditable.

Two execution modes share the selection logic:

- :meth:`FallbackEstimator.estimate` walks the ladder *lazily* — rung
  ``k+1`` is never evaluated when rung ``k`` is accepted, which keeps
  the in-memory happy path at one estimator's cost;
- :class:`FallbackReduction` folds *every* rung over the same chunks
  in one pass (a
  :class:`~repro.core.estimators.reductions.CompositeReduction`) and
  selects at ``finalize``.  The chunked file driver uses it: when the
  log streams by once, re-reading it per rung would cost more than
  folding four cheap states side by side.
"""

from __future__ import annotations

import logging
import math
from typing import Iterable, Optional, Sequence

from repro.core.estimators.base import EstimatorResult, OffPolicyEstimator
from repro.core.estimators.direct import DirectMethodEstimator
from repro.core.estimators.ips import (
    ClippedIPSEstimator,
    IPSEstimator,
    SNIPSEstimator,
)
from repro.core.estimators.reductions import CompositeReduction, LogSummary
from repro.core.policies import Policy
from repro.core.types import Dataset
from repro.obs.metrics import get_metrics

logger = logging.getLogger("repro.fallback")


def default_ladder(backend: Optional[str] = None) -> tuple[OffPolicyEstimator, ...]:
    """The standard degradation ladder, most-trusted first."""
    return (
        IPSEstimator(backend=backend),
        ClippedIPSEstimator(backend=backend),
        SNIPSEstimator(backend=backend),
        DirectMethodEstimator(backend=backend),
    )


def _assess(result: EstimatorResult) -> tuple[bool, dict]:
    """One rung's accept/reject decision and its audit-trail entry."""
    finite = math.isfinite(result.value)
    reasons: list[str] = []
    if not finite:
        reasons.append(f"estimate is {result.value}")
    if result.diagnostics is not None:
        reasons.extend(result.diagnostics.reasons)
    accepted = finite and result.reliable
    return accepted, {
        "estimator": result.estimator,
        "verdict": (
            result.diagnostics.verdict
            if result.diagnostics is not None
            else "OK"
        ),
        "accepted": accepted,
        "reasons": reasons,
    }


def select_down_ladder(
    results: Iterable[EstimatorResult],
    ladder_name: str,
    policy_name: str,
) -> EstimatorResult:
    """Walk rung results in ladder order; keep the first acceptable one.

    ``results`` is consumed lazily — pass a generator to avoid
    evaluating rungs below the accepted one.  The returned result is the
    accepted (or last) rung's, annotated with the ``"fallback"`` audit
    trail and the ``"degraded"`` flag.
    """
    metrics = get_metrics()
    attempts: list[dict] = []
    chosen: Optional[EstimatorResult] = None
    for result in results:
        accepted, attempt = _assess(result)
        attempts.append(attempt)
        chosen = result
        metrics.counter(
            "fallback.attempts",
            estimator=result.estimator,
            accepted=str(accepted).lower(),
        ).inc()
        if accepted:
            break
        logger.info(
            "fallback: %s rejected %s for policy %r: %s",
            ladder_name,
            result.estimator,
            policy_name,
            "; ".join(attempt["reasons"]) or "unreliable",
        )
    assert chosen is not None
    degraded = len(attempts) > 1 or not attempts[0]["accepted"]
    if degraded:
        # Counted on the per-run registry (not just logged once per
        # process): how many estimates this run served from a rung
        # below the ladder's head, and which rung served them.
        metrics.counter(
            "fallback.downgrades",
            ladder=ladder_name,
            served_by=chosen.estimator,
        ).inc()
        logger.info(
            "fallback: policy %r served by %s after %d attempt(s)",
            policy_name,
            chosen.estimator,
            len(attempts),
        )
    details = dict(chosen.details)
    details["fallback"] = attempts
    details["degraded"] = degraded
    return EstimatorResult(
        value=chosen.value,
        std_error=chosen.std_error,
        n=chosen.n,
        effective_n=chosen.effective_n,
        estimator=chosen.estimator,
        details=details,
        diagnostics=chosen.diagnostics,
    )


class FallbackReduction(CompositeReduction):
    """Every ladder rung folded in one pass; selection at finalize.

    The single-pass counterpart of the lazy estimate walk: the states
    are cheap (sufficient statistics only), the data pass is the
    expensive part, so the chunked driver folds all rungs at once and
    applies the identical ladder selection to the finalized results.
    """

    def __init__(self, members, name: str) -> None:
        super().__init__(members, name)

    def finalize(self, state: list, log: LogSummary) -> EstimatorResult:  # type: ignore[override]
        results = [
            member.finalize(part, log)
            for member, part in zip(self.members, state)
        ]
        return select_down_ladder(results, self.name, self.policy.name)


class FallbackEstimator(OffPolicyEstimator):
    """Try each ladder rung until one produces a reliable estimate.

    The returned :class:`EstimatorResult` is the accepted rung's result
    with two additions in ``details``:

    - ``"fallback"`` — one entry per attempted rung: its name, verdict,
      whether it was accepted, and the diagnostic reasons if not;
    - ``"degraded"`` — True when the first rung was rejected, i.e. the
      caller is looking at a downgraded estimate.

    The result's ``estimator`` field names the rung that produced it,
    so downstream reporting stays truthful about what was computed.
    """

    name = "auto"
    needs_model = True  # the terminal DM rung needs one in reduction mode

    def __init__(
        self,
        ladder: Optional[Sequence[OffPolicyEstimator]] = None,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(backend=backend)
        self.ladder = tuple(ladder) if ladder is not None else default_ladder(backend)
        if not self.ladder:
            raise ValueError("fallback ladder must have at least one rung")

    def estimate(self, policy: Policy, dataset: Dataset) -> EstimatorResult:
        self._require_data(dataset)
        return select_down_ladder(
            (rung.estimate(policy, dataset) for rung in self.ladder),
            self.name,
            policy.name,
        )

    def reduction(self, policy: Policy, context, model=None):
        members = [
            rung.reduction(policy, context, model=model)
            if rung.needs_model
            else rung.reduction(policy, context)
            for rung in self.ladder
        ]
        return FallbackReduction(members, name=self.name)
