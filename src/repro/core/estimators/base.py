"""Shared estimator interfaces."""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.diagnostics import ReliabilityDiagnostics, diagnose
from repro.core.engine import resolve_backend
from repro.core.policies import Policy
from repro.core.types import Dataset, Interaction
from repro.obs.tracing import get_tracer


@dataclass
class EstimatorResult:
    """The outcome of one off-policy evaluation.

    ``value`` is the estimated average reward of the candidate policy;
    ``std_error`` the standard error of that estimate; ``n`` the number
    of exploration datapoints used; ``effective_n`` the number whose
    logged action matched the candidate policy (the "match rate"
    governs the variance of IPS-style estimators).  ``diagnostics``
    carries the reliability verdict (see :mod:`repro.core.diagnostics`)
    when the estimator computes one.
    """

    value: float
    std_error: float
    n: int
    effective_n: int
    estimator: str
    details: dict = field(default_factory=dict)
    diagnostics: Optional[ReliabilityDiagnostics] = None

    @property
    def reliable(self) -> bool:
        """Whether diagnostics (if computed) clear the UNRELIABLE bar."""
        return self.diagnostics is None or self.diagnostics.reliable

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI at ``z`` standard errors."""
        return (self.value - z * self.std_error, self.value + z * self.std_error)

    def __repr__(self) -> str:
        lo, hi = self.confidence_interval()
        flag = "" if self.reliable else " UNRELIABLE"
        return (
            f"EstimatorResult({self.estimator}: {self.value:.4f} "
            f"[{lo:.4f}, {hi:.4f}], n={self.n}{flag})"
        )


def eligible_actions_fn(dataset: Dataset) -> Callable[[Interaction], list[int]]:
    """Build a per-interaction eligible-action lookup for a dataset.

    Uses the dataset's :class:`~repro.core.types.ActionSpace` when one
    is attached (it may restrict actions per context); otherwise falls
    back to the set of action ids observed anywhere in the log, which
    is the best reconstruction available when scavenging foreign logs.
    """
    if dataset.action_space is not None:
        space = dataset.action_space
        return lambda interaction: space.actions(interaction.context)
    if len(dataset) == 0:
        return lambda interaction: [0]
    observed = sorted({i.action for i in dataset})
    return lambda interaction: observed


class OffPolicyEstimator(ABC):
    """Interface: estimate a policy's value from logged exploration data.

    ``backend`` selects the execution path (see :mod:`repro.core.engine`):
    ``"vectorized"`` evaluates through the columnar
    :class:`~repro.core.columns.DatasetColumns` view shared on the
    dataset, ``"scalar"`` walks the log row by row, ``"chunked"``
    folds fixed-size chunk slices through the reduction kernel
    (:mod:`repro.core.estimators.reductions`), ``"shared"`` folds the
    same slices in parallel against a shared-memory copy of the
    columns (:mod:`repro.core.shm`), and ``None`` (the default)
    follows the process-wide default backend.  All paths compute the
    same estimate bit-for-bit.
    """

    name: str = "estimator"
    #: Backend override; None follows the process-wide default.  A class
    #: attribute so subclasses with bespoke __init__ still resolve.
    backend: Optional[str] = None
    #: Which diagnostic check profile applies to this estimator family
    #: (see :data:`repro.core.diagnostics.PROFILES`).
    diagnostics_profile: str = "ips"
    #: Whether this estimator's reduction requires a fitted reward
    #: model (the chunked file driver fits one shared model up front).
    needs_model: bool = False

    def __init__(self, backend: Optional[str] = None) -> None:
        resolve_backend(backend)  # validate eagerly; None is "follow default"
        self.backend = backend

    def resolved_backend(self) -> str:
        """The concrete backend this estimator will execute with now."""
        return resolve_backend(self.backend)

    def estimate(self, policy: Policy, dataset: Dataset) -> EstimatorResult:
        """Estimate the average reward ``policy`` would obtain.

        The template all reduction-backed estimators share: build this
        estimator's reduction for the policy, fold the dataset through
        it on the resolved backend, and finalize against the log
        summary.  Subclasses customize by implementing
        :meth:`reduction`; estimators outside the reduction protocol
        (e.g. trajectory estimators) override this method wholesale.
        """
        self._require_data(dataset)
        from repro.core.engine import (
            fold_dataset_chunked,
            get_chunk_size,
            get_workers,
        )
        from repro.core.estimators.reductions import (
            LogSummary,
            ReductionContext,
        )

        backend = self.resolved_backend()
        with get_tracer().span(
            "estimate",
            estimator=self.name,
            policy=policy.name,
            backend=backend,
            n=len(dataset),
        ):
            context = ReductionContext.from_dataset(dataset)
            reduction = self._reduction(policy, dataset, context)
            state = reduction.init_state()
            if backend == "scalar":
                state = reduction.fold_scalar(state, dataset)
            elif backend in ("chunked", "shared"):
                state = fold_dataset_chunked(
                    reduction,
                    state,
                    dataset,
                    chunk_size=get_chunk_size(),
                    workers=get_workers() if backend == "shared" else 1,
                )
            else:
                state = reduction.fold(state, dataset.columns())
            return reduction.finalize(
                state, LogSummary.from_columns(dataset.columns())
            )

    def reduction(self, policy: Policy, context):
        """Build this estimator's reduction for one candidate policy.

        ``context`` is a
        :class:`~repro.core.estimators.reductions.ReductionContext`
        describing the whole log.  Model-based estimators take an
        additional ``model`` keyword (a fitted
        :class:`~repro.core.estimators.direct.RewardModel`).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the reduction "
            "protocol"
        )

    def _reduction(self, policy: Policy, dataset: Dataset, context):
        """Reduction for the in-memory template (hooks model fitting)."""
        return self.reduction(policy, context)

    @staticmethod
    def _standard_error(samples: np.ndarray) -> float:
        """Standard error of the mean of ``samples``."""
        if samples.size <= 1:
            return float("inf")
        return float(np.std(samples, ddof=1) / np.sqrt(samples.size))

    def _require_data(self, dataset: Dataset) -> None:
        if len(dataset) == 0:
            raise ValueError(f"{self.name}: cannot estimate from an empty dataset")

    def _diagnose(
        self,
        dataset: Dataset,
        weights: Optional[np.ndarray],
        support_coverage: float,
    ) -> ReliabilityDiagnostics:
        """Reliability diagnostics for one estimate (both backends).

        Reads the logged (action, propensity) columns — identical data
        on either backend — and the estimator's own weight vector, so
        scalar and vectorized runs yield matching diagnostics.
        """
        columns = dataset.columns()
        return diagnose(
            weights,
            columns.propensities,
            columns.actions,
            support_coverage,
            profile=self.diagnostics_profile,
            identity_error=columns.propensity_identity_error(),
        )
