"""Doubly Robust (DR) off-policy evaluation.

The hybrid §5 proposes (Dudík, Langford, Li 2011): use a reward model
as a baseline and correct its residual with importance weighting::

    dr(π) = (1/N) Σ_t [ r̂(x_t, π) + (π(a_t|x_t)/p_t) · (r_t − r̂(x_t, a_t)) ]

Unbiased whenever *either* the propensities or the reward model are
correct, and lower-variance than IPS whenever the model explains a
useful fraction of the reward.  The ablation bench
``benchmarks/test_ablation_doubly_robust.py`` measures that variance
reduction on the machine-health data.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.estimators.base import (
    EstimatorResult,
    OffPolicyEstimator,
    eligible_actions_fn,
)
from repro.core.estimators.direct import RewardModel, fit_default_model
from repro.core.policies import Policy
from repro.core.types import Dataset


class DoublyRobustEstimator(OffPolicyEstimator):
    """Doubly robust estimator combining a reward model with IPS.

    ``model`` may be fitted beforehand (ideally on held-out data to
    avoid reusing the evaluation set); if omitted, it is fitted on the
    evaluation dataset, which preserves unbiasedness only approximately
    but matches the single-log setting of the paper.
    """

    name = "doubly-robust"
    # The model term softens — but does not remove — sensitivity to bad
    # weights, so DR keeps the full IPS check battery.
    diagnostics_profile = "ips"

    def __init__(
        self,
        model: Optional[RewardModel] = None,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(backend=backend)
        self.model = model

    def estimate(self, policy: Policy, dataset: Dataset) -> EstimatorResult:
        self._require_data(dataset)
        model = self.model or fit_default_model(dataset)
        observed = dataset.columns().observed_actions()
        if self.resolved_backend() == "vectorized":
            columns = dataset.columns()
            probs = policy.probabilities_batch(columns)
            predictions = model.predict_matrix(columns)
            baseline = (probs * predictions).sum(axis=1)
            ratio = (
                columns.probability_of_logged(probs) / columns.propensities
            )
            residual = columns.rewards - columns.probability_of_logged(
                predictions
            )
            terms = baseline + ratio * residual
            matched = int(np.count_nonzero(ratio > 0))
            coverage = float(probs[:, observed].sum(axis=1).mean())
            weights = ratio
        else:
            eligible = eligible_actions_fn(dataset)
            observed_set = set(observed.tolist())
            terms = np.empty(len(dataset))
            weights = np.empty(len(dataset))
            matched = 0
            coverage_sum = 0.0
            for index, interaction in enumerate(dataset):
                actions = eligible(interaction)
                probs = policy.distribution(interaction.context, actions)
                baseline = sum(
                    p * model.predict(interaction.context, a)
                    for p, a in zip(probs, actions)
                )
                pi_prob = 0.0
                for position, action in enumerate(actions):
                    if action == interaction.action:
                        pi_prob = float(probs[position])
                    if action in observed_set:
                        coverage_sum += float(probs[position])
                ratio = pi_prob / interaction.propensity
                if ratio > 0:
                    matched += 1
                residual = interaction.reward - model.predict(
                    interaction.context, interaction.action
                )
                terms[index] = baseline + ratio * residual
                weights[index] = ratio
            coverage = coverage_sum / len(dataset)
        return EstimatorResult(
            value=float(terms.mean()),
            std_error=self._standard_error(terms),
            n=len(dataset),
            effective_n=matched,
            estimator=self.name,
            details={"match_rate": matched / len(dataset)},
            diagnostics=self._diagnose(dataset, weights, coverage),
        )
