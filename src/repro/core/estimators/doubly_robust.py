"""Doubly Robust (DR) off-policy evaluation.

The hybrid §5 proposes (Dudík, Langford, Li 2011): use a reward model
as a baseline and correct its residual with importance weighting::

    dr(π) = (1/N) Σ_t [ r̂(x_t, π) + (π(a_t|x_t)/p_t) · (r_t − r̂(x_t, a_t)) ]

Unbiased whenever *either* the propensities or the reward model are
correct, and lower-variance than IPS whenever the model explains a
useful fraction of the reward.  The ablation bench
``benchmarks/test_ablation_doubly_robust.py`` measures that variance
reduction on the machine-health data.
"""

from __future__ import annotations

from typing import Optional

from repro.core.estimators.base import OffPolicyEstimator
from repro.core.estimators.direct import RewardModel, fit_default_model
from repro.core.policies import Policy
from repro.core.types import Dataset


class DoublyRobustEstimator(OffPolicyEstimator):
    """Doubly robust estimator combining a reward model with IPS.

    ``model`` may be fitted beforehand (ideally on held-out data to
    avoid reusing the evaluation set); if omitted, it is fitted on the
    evaluation dataset, which preserves unbiasedness only approximately
    but matches the single-log setting of the paper.
    """

    name = "doubly-robust"
    # The model term softens — but does not remove — sensitivity to bad
    # weights, so DR keeps the full IPS check battery.
    diagnostics_profile = "ips"
    needs_model = True

    def __init__(
        self,
        model: Optional[RewardModel] = None,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(backend=backend)
        self.model = model

    def reduction(self, policy: Policy, context, model=None):
        from repro.core.estimators.reductions import DoublyRobustReduction

        model = self.model or model
        if model is None:
            raise ValueError(
                f"{self.name}: reduction requires a fitted reward model"
            )
        return DoublyRobustReduction(
            policy, context, name=self.name, model=model
        )

    def _reduction(self, policy: Policy, dataset: Dataset, context):
        return self.reduction(
            policy, context, model=self.model or fit_default_model(dataset)
        )
