"""Confidence bounds and sample-size math (Eq. 1, Figs. 1–2).

§4's central quantitative claim: with ``N`` exploration points whose
minimum action propensity is ``ε``, IPS simultaneously evaluates ``K``
policies to accuracy::

    err_cb(N) = sqrt( (C / (ε N)) · log(K / δ) )        (Eq. 1)

with probability ``1 − δ``, while A/B testing's error can be as large
as::

    err_ab(N) = C · sqrt( (K / N) · log(K / δ) )

The error scales with ``log K`` for IPS vs. ``K`` for A/B testing —
"exponentially more data-efficient".  Inverting these for ``N`` gives
the Fig. 1 curves; evaluating them over ``N`` gives Fig. 2.

This module also provides finite-sample Hoeffding and empirical-
Bernstein intervals for concrete estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Default constant ``C`` of Eq. 1 ("a small constant" [1]); the paper
#: plots "typical constants" — 2 matches a Hoeffding-style bound on
#: [0, 1] rewards.
DEFAULT_C = 2.0


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval with its confidence level."""

    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        """Total width ``high - low``."""
        return self.high - self.low

    @property
    def radius(self) -> float:
        """Half-width of the interval."""
        return self.width / 2.0

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high


def _validate_common(n: float, k: float, delta: float) -> None:
    if n <= 0:
        raise ValueError(f"sample size must be positive, got {n}")
    if k < 1:
        raise ValueError(f"policy count must be >= 1, got {k}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")


def ips_error_bound(
    n: float,
    epsilon: float,
    k: float = 1.0,
    delta: float = 0.05,
    c: float = DEFAULT_C,
) -> float:
    """Eq. 1: simultaneous IPS evaluation error for ``k`` policies.

    ``epsilon`` is the minimum probability the logging policy gives to
    any action; rewards are assumed in [0, 1].
    """
    _validate_common(n, k, delta)
    if not 0.0 < epsilon <= 1.0:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    return math.sqrt(c / (epsilon * n) * math.log(k / delta))


def ips_sample_size(
    target_error: float,
    epsilon: float,
    k: float = 1.0,
    delta: float = 0.05,
    c: float = DEFAULT_C,
) -> float:
    """Invert Eq. 1: exploration points needed for ``target_error``."""
    if target_error <= 0:
        raise ValueError("target error must be positive")
    if not 0.0 < epsilon <= 1.0:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    _validate_common(1.0, k, delta)
    return c * math.log(k / delta) / (epsilon * target_error**2)


def ab_testing_error_bound(
    n: float, k: float = 1.0, delta: float = 0.05, c: float = DEFAULT_C
) -> float:
    """Worst-case A/B-testing error for ``k`` concurrent experiments.

    Traffic is split ``k`` ways, so each experiment sees ``n/k``
    samples: error ``C·sqrt((K/N)·log(K/δ))`` as in §4.
    """
    _validate_common(n, k, delta)
    return c * math.sqrt(k / n * math.log(k / delta))


def ab_testing_sample_size(
    target_error: float, k: float = 1.0, delta: float = 0.05, c: float = DEFAULT_C
) -> float:
    """Total traffic A/B testing needs to evaluate ``k`` policies."""
    if target_error <= 0:
        raise ValueError("target error must be positive")
    _validate_common(1.0, k, delta)
    return (c / target_error) ** 2 * k * math.log(k / delta)


def hoeffding_interval(
    samples: np.ndarray,
    delta: float = 0.05,
    value_range: float = 1.0,
) -> ConfidenceInterval:
    """Two-sided Hoeffding interval for the mean of bounded samples."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("need at least one sample")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if value_range <= 0:
        raise ValueError("value_range must be positive")
    mean = float(samples.mean())
    radius = value_range * math.sqrt(math.log(2.0 / delta) / (2.0 * samples.size))
    return ConfidenceInterval(mean - radius, mean + radius, 1.0 - delta)


def empirical_bernstein_interval(
    samples: np.ndarray,
    delta: float = 0.05,
    value_range: float = 1.0,
) -> ConfidenceInterval:
    """Empirical-Bernstein interval (Maurer & Pontil 2009).

    Uses the sample variance, so it is much tighter than Hoeffding when
    the IPS terms are mostly small with occasional spikes — exactly the
    shape importance-weighted rewards have.
    """
    samples = np.asarray(samples, dtype=float)
    n = samples.size
    if n < 2:
        raise ValueError("need at least two samples")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if value_range <= 0:
        raise ValueError("value_range must be positive")
    mean = float(samples.mean())
    variance = float(samples.var(ddof=1))
    log_term = math.log(3.0 / delta)
    radius = math.sqrt(2.0 * variance * log_term / n) + (
        3.0 * value_range * log_term / n
    )
    return ConfidenceInterval(mean - radius, mean + radius, 1.0 - delta)


def crossover_k(epsilon: float, c: float = DEFAULT_C) -> float:
    """The K beyond which IPS strictly beats A/B testing for any N.

    Comparing the two bounds, IPS wins whenever ``1/ε < K`` — the
    paper's "since the number of actions is much smaller than K, it
    follows that 1/ε ≪ K".  Returned as a float for plotting.
    """
    if not 0.0 < epsilon <= 1.0:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    del c  # the constant cancels in the comparison
    return 1.0 / epsilon


def diminishing_returns_gain(
    n_from: float,
    n_to: float,
    epsilon: float,
    k: float = 1.0,
    delta: float = 0.05,
    c: float = DEFAULT_C,
) -> float:
    """Accuracy improvement from growing the log ``n_from → n_to``.

    §4's insight: "increasing N from 1.7 to 3.4 million improves
    accuracy by less than 0.01" — this helper computes exactly that
    delta so the benchmark can assert it.
    """
    return ips_error_bound(n_from, epsilon, k, delta, c) - ips_error_bound(
        n_to, epsilon, k, delta, c
    )
