"""The Direct Method (DM): model-based off-policy evaluation.

Fit a reward model ``r̂(x, a)`` on the logged data, then score a
candidate policy by the model's prediction at the actions the policy
*would* take.  §2 notes this family "make[s] assumptions about the real
world and thus tend[s] to be biased" — our benchmarks demonstrate
exactly that — but it has low variance and is the model half of the
doubly-robust estimator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.columns import DatasetColumns
from repro.core.estimators.base import OffPolicyEstimator
from repro.core.features import Featurizer
from repro.core.policies import Policy
from repro.core.types import Context, Dataset


class RewardModel:
    """Per-action ridge regression reward model ``r̂(x, a)``.

    One ridge-regularized linear model per action over hashed context
    features.  Actions never observed in the training log predict the
    global mean reward (the only unbiased guess available).
    """

    def __init__(
        self,
        n_actions: int,
        featurizer: Optional[Featurizer] = None,
        l2: float = 1.0,
    ) -> None:
        if n_actions <= 0:
            raise ValueError("n_actions must be positive")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.n_actions = n_actions
        self.featurizer = featurizer or Featurizer(n_dims=32)
        self.l2 = l2
        self._weights: dict[int, np.ndarray] = {}
        self._global_mean = 0.0
        self._fitted = False

    def fit(self, dataset: Dataset) -> "RewardModel":
        """Fit per-action ridge regressions on the logged interactions."""
        if len(dataset) == 0:
            raise ValueError("cannot fit a reward model on an empty dataset")
        self._global_mean = float(dataset.rewards().mean())
        by_action: dict[int, list] = {}
        for interaction in dataset:
            by_action.setdefault(interaction.action, []).append(interaction)
        dims = self.featurizer.n_dims
        for action, rows in by_action.items():
            X = np.stack([self.featurizer.vector(r.context) for r in rows])
            y = np.array([r.reward for r in rows])
            gram = X.T @ X + self.l2 * np.eye(dims)
            self._weights[action] = np.linalg.solve(gram, X.T @ y)
        self._fitted = True
        return self

    def predict(self, context: Context, action: int) -> float:
        """Predicted reward for taking ``action`` in ``context``."""
        if not self._fitted:
            raise RuntimeError("reward model must be fitted before predicting")
        weights = self._weights.get(action)
        if weights is None:
            return self._global_mean
        return float(weights @ self.featurizer.vector(context))

    def predict_matrix(self, columns: DatasetColumns) -> np.ndarray:
        """``(N, K)`` predictions for every (context, action) pair.

        One matrix product per fitted action against the columnar
        view's memoized hashed-feature matrix; actions without a fitted
        model fill with the global mean, exactly like :meth:`predict`.

        Subclasses that override :meth:`predict` without overriding
        this method automatically get a per-row loop over their
        ``predict``, so the batch path can never disagree with the
        scalar one.
        """
        if not self._fitted:
            raise RuntimeError("reward model must be fitted before predicting")
        if type(self).predict is not RewardModel.predict:
            out = np.empty((columns.n, columns.n_actions))
            for row, context in enumerate(columns.contexts):
                for action in range(columns.n_actions):
                    out[row, action] = self.predict(context, action)
            return out
        phi = columns.hashed_matrix(self.featurizer)
        out = np.full((columns.n, columns.n_actions), self._global_mean)
        for action, weights in self._weights.items():
            if 0 <= action < columns.n_actions:
                out[:, action] = phi @ weights
        return out


class RewardModelFolder:
    """Incrementally fit a :class:`RewardModel` from streamed chunks.

    Ridge regression is itself a reduction: the per-action Gram matrix
    ``ΣX'X`` and moment vector ``ΣX'y`` are sums over rows, so the
    chunked file driver folds them during its discovery pass and solves
    once at the end — the same normal equations :meth:`RewardModel.fit`
    solves, up to float reassociation of the sums.
    """

    def __init__(
        self,
        featurizer: Optional[Featurizer] = None,
        l2: float = 1.0,
    ) -> None:
        self.featurizer = featurizer or Featurizer(n_dims=32)
        self.l2 = l2
        self._gram: dict[int, np.ndarray] = {}
        self._moment: dict[int, np.ndarray] = {}
        self._reward_sum = 0.0
        self._n = 0

    def fold_rows(
        self,
        contexts,
        actions: np.ndarray,
        rewards: np.ndarray,
    ) -> None:
        """Fold one chunk of (context, action, reward) rows."""
        actions = np.asarray(actions)
        rewards = np.asarray(rewards, dtype=float)
        if actions.size == 0:
            return
        phi = self.featurizer.matrix(list(contexts))
        for action in np.unique(actions):
            mask = actions == action
            X = phi[mask]
            y = rewards[mask]
            key = int(action)
            if key in self._gram:
                self._gram[key] += X.T @ X
                self._moment[key] += X.T @ y
            else:
                self._gram[key] = X.T @ X
                self._moment[key] = X.T @ y
        self._reward_sum += float(rewards.sum())
        self._n += int(actions.size)

    def merge_in(self, other: "RewardModelFolder") -> None:
        for key, gram in other._gram.items():
            if key in self._gram:
                self._gram[key] += gram
                self._moment[key] += other._moment[key]
            else:
                self._gram[key] = gram.copy()
                self._moment[key] = other._moment[key].copy()
        self._reward_sum += other._reward_sum
        self._n += other._n

    def finalize(self, n_actions: int) -> RewardModel:
        """Solve the folded normal equations into a fitted model."""
        if self._n == 0:
            raise ValueError("cannot fit a reward model on zero rows")
        model = RewardModel(n_actions, self.featurizer, self.l2)
        model._global_mean = self._reward_sum / self._n
        dims = self.featurizer.n_dims
        ridge = self.l2 * np.eye(dims)
        for action, gram in self._gram.items():
            model._weights[action] = np.linalg.solve(
                gram + ridge, self._moment[action]
            )
        model._fitted = True
        return model


def fit_default_model(dataset: Dataset) -> RewardModel:
    """The model DM/DR/SWITCH fit when none is supplied: one reward
    model over the dataset's own action space (or the largest logged
    action id when the log carries no action space)."""
    n_actions = (
        dataset.action_space.n_actions
        if dataset.action_space is not None
        else int(dataset.actions().max()) + 1
    )
    return RewardModel(n_actions).fit(dataset)


class DirectMethodEstimator(OffPolicyEstimator):
    """Score a policy with a fitted reward model.

    If no pre-fitted model is supplied, one is fitted on the evaluation
    dataset itself (the paper's setting: all you have is the log).
    """

    name = "direct-method"
    # No importance weights: only support coverage applies, and only as
    # a warning — the model extrapolates off-support, it doesn't blow up.
    diagnostics_profile = "model"
    needs_model = True

    def __init__(
        self,
        model: Optional[RewardModel] = None,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(backend=backend)
        self.model = model

    def reduction(self, policy: Policy, context, model=None):
        from repro.core.estimators.reductions import DirectMethodReduction

        model = self.model or model
        if model is None:
            raise ValueError(
                f"{self.name}: reduction requires a fitted reward model"
            )
        return DirectMethodReduction(
            policy, context, name=self.name, model=model
        )

    def _reduction(self, policy: Policy, dataset: Dataset, context):
        return self.reduction(
            policy, context, model=self.model or fit_default_model(dataset)
        )
