"""Inverse propensity scoring (IPS) estimators.

The workhorse of §4::

    ips(π) = (1/N) Σ_t  1{π(x_t) = a_t} · r_t / p_t

Each logged interaction whose action matches the candidate policy's
choice contributes its reward, up-weighted by the inverse of the logged
propensity; non-matching interactions contribute zero.  The estimate is
unbiased whenever every action has positive logged propensity, but its
variance grows as 1/p, which motivates the clipped and self-normalized
variants also implemented here.

For a *stochastic* candidate π the indicator generalizes to the
importance ratio ``π(a_t | x_t) / p_t``.

All three estimators execute through the reduction kernel
(:mod:`repro.core.estimators.reductions`) on any evaluation backend
(see :mod:`repro.core.engine`): the vectorized path folds one
whole-log chunk computed from a single
:meth:`~repro.core.policies.Policy.probabilities_batch` call, the
scalar path folds the per-row reference loop's output, the chunked
path folds fixed-size zero-copy slices of the cached columns, and the
shared path folds the same slices in parallel workers attached to a
shared-memory copy of the columns.  Every derived quantity (terms,
match counts, clipping statistics, diagnostics accumulators) comes
from a *single* weight pass per chunk.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.estimators.base import (
    OffPolicyEstimator,
    eligible_actions_fn,
)
from repro.core.policies import Policy
from repro.core.types import Dataset


class IPSEstimator(OffPolicyEstimator):
    """Plain (unclipped) inverse propensity scoring."""

    name = "ips"
    diagnostics_profile = "ips"

    def reduction(self, policy: Policy, context):
        from repro.core.estimators.reductions import IPSReduction

        return IPSReduction(policy, context, name=self.name)

    def match_weights(self, policy: Policy, dataset: Dataset) -> np.ndarray:
        """Per-interaction importance ratios ``π(a_t|x_t)/p_t``.

        On the vectorized and shared backends the whole-log weight
        vector is memoized on the dataset's columns
        (:meth:`~repro.core.columns.DatasetColumns.ips_weights`), so a
        bootstrap fanning hundreds of replicates over one (policy, log)
        pair computes it exactly once.
        """
        self._require_data(dataset)
        backend = self.resolved_backend()
        if backend in ("vectorized", "shared"):
            return dataset.columns().ips_weights(policy)
        if backend == "chunked":
            from repro.core.columns import iter_column_slices
            from repro.core.engine import get_chunk_size

            return np.concatenate(
                [
                    chunk.logged_probabilities(policy) / chunk.propensities
                    for chunk in iter_column_slices(
                        dataset.columns(), get_chunk_size()
                    )
                ]
            )
        eligible = eligible_actions_fn(dataset)
        weights = np.empty(len(dataset))
        for index, interaction in enumerate(dataset):
            pi_prob = policy.probability_of(
                interaction.context, eligible(interaction), interaction.action
            )
            weights[index] = pi_prob / interaction.propensity
        return weights

    def weighted_rewards(self, policy: Policy, dataset: Dataset) -> np.ndarray:
        """Per-interaction terms ``π(a_t|x_t)/p_t · r_t`` (the summands)."""
        return self.match_weights(policy, dataset) * self._rewards(dataset)

    def _rewards(self, dataset: Dataset) -> np.ndarray:
        if self.resolved_backend() == "vectorized":
            return dataset.columns().rewards
        return dataset.rewards()


class ClippedIPSEstimator(IPSEstimator):
    """IPS with importance weights clipped at ``max_weight``.

    Clipping trades a little bias for a hard variance cap — the
    standard mitigation when scavenged logs contain rare actions with
    tiny propensities.
    """

    diagnostics_profile = "clipped"

    def __init__(
        self, max_weight: float = 100.0, backend: Optional[str] = None
    ) -> None:
        super().__init__(backend=backend)
        if max_weight <= 0:
            raise ValueError("max_weight must be positive")
        self.max_weight = max_weight
        self.name = f"clipped-ips[{max_weight:g}]"

    def reduction(self, policy: Policy, context):
        from repro.core.estimators.reductions import ClippedIPSReduction

        return ClippedIPSReduction(
            policy, context, name=self.name, max_weight=self.max_weight
        )


class SNIPSEstimator(IPSEstimator):
    """Self-normalized IPS: divide by the sum of importance weights.

    Exactly invariant to additive reward shifts and usually much lower
    variance than plain IPS, at the cost of a small (vanishing) bias.
    """

    name = "snips"
    diagnostics_profile = "snips"

    def reduction(self, policy: Policy, context):
        from repro.core.estimators.reductions import SNIPSReduction

        return SNIPSReduction(policy, context, name=self.name)
