"""Inverse propensity scoring (IPS) estimators.

The workhorse of §4::

    ips(π) = (1/N) Σ_t  1{π(x_t) = a_t} · r_t / p_t

Each logged interaction whose action matches the candidate policy's
choice contributes its reward, up-weighted by the inverse of the logged
propensity; non-matching interactions contribute zero.  The estimate is
unbiased whenever every action has positive logged propensity, but its
variance grows as 1/p, which motivates the clipped and self-normalized
variants also implemented here.

For a *stochastic* candidate π the indicator generalizes to the
importance ratio ``π(a_t | x_t) / p_t``.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimators.base import (
    EstimatorResult,
    OffPolicyEstimator,
    eligible_actions_fn,
)
from repro.core.policies import Policy
from repro.core.types import Dataset


class IPSEstimator(OffPolicyEstimator):
    """Plain (unclipped) inverse propensity scoring."""

    name = "ips"

    def weighted_rewards(self, policy: Policy, dataset: Dataset) -> np.ndarray:
        """Per-interaction terms ``π(a_t|x_t)/p_t · r_t`` (the summands)."""
        self._require_data(dataset)
        eligible = eligible_actions_fn(dataset)
        terms = np.empty(len(dataset))
        for index, interaction in enumerate(dataset):
            pi_prob = policy.probability_of(
                interaction.context, eligible(interaction), interaction.action
            )
            terms[index] = pi_prob / interaction.propensity * interaction.reward
        return terms

    def match_weights(self, policy: Policy, dataset: Dataset) -> np.ndarray:
        """Per-interaction importance ratios ``π(a_t|x_t)/p_t``."""
        self._require_data(dataset)
        eligible = eligible_actions_fn(dataset)
        weights = np.empty(len(dataset))
        for index, interaction in enumerate(dataset):
            pi_prob = policy.probability_of(
                interaction.context, eligible(interaction), interaction.action
            )
            weights[index] = pi_prob / interaction.propensity
        return weights

    def estimate(self, policy: Policy, dataset: Dataset) -> EstimatorResult:
        terms = self.weighted_rewards(policy, dataset)
        matched = int(np.count_nonzero(self.match_weights(policy, dataset)))
        return EstimatorResult(
            value=float(terms.mean()),
            std_error=self._standard_error(terms),
            n=len(dataset),
            effective_n=matched,
            estimator=self.name,
            details={"match_rate": matched / len(dataset)},
        )


class ClippedIPSEstimator(IPSEstimator):
    """IPS with importance weights clipped at ``max_weight``.

    Clipping trades a little bias for a hard variance cap — the
    standard mitigation when scavenged logs contain rare actions with
    tiny propensities.
    """

    def __init__(self, max_weight: float = 100.0) -> None:
        if max_weight <= 0:
            raise ValueError("max_weight must be positive")
        self.max_weight = max_weight
        self.name = f"clipped-ips[{max_weight:g}]"

    def estimate(self, policy: Policy, dataset: Dataset) -> EstimatorResult:
        weights = np.minimum(self.match_weights(policy, dataset), self.max_weight)
        rewards = dataset.rewards()
        terms = weights * rewards
        matched = int(np.count_nonzero(weights))
        return EstimatorResult(
            value=float(terms.mean()),
            std_error=self._standard_error(terms),
            n=len(dataset),
            effective_n=matched,
            estimator=self.name,
            details={
                "match_rate": matched / len(dataset),
                "clipped_fraction": float(
                    np.mean(self.match_weights(policy, dataset) > self.max_weight)
                ),
            },
        )


class SNIPSEstimator(IPSEstimator):
    """Self-normalized IPS: divide by the sum of importance weights.

    Exactly invariant to additive reward shifts and usually much lower
    variance than plain IPS, at the cost of a small (vanishing) bias.
    """

    name = "snips"

    def estimate(self, policy: Policy, dataset: Dataset) -> EstimatorResult:
        weights = self.match_weights(policy, dataset)
        rewards = dataset.rewards()
        weight_sum = float(weights.sum())
        matched = int(np.count_nonzero(weights))
        if weight_sum == 0.0:
            # The candidate never matches the log: no information at all.
            return EstimatorResult(
                value=float("nan"),
                std_error=float("inf"),
                n=len(dataset),
                effective_n=0,
                estimator=self.name,
                details={"match_rate": 0.0},
            )
        value = float((weights * rewards).sum() / weight_sum)
        # Delta-method standard error for a ratio of means.
        n = len(dataset)
        residuals = weights * (rewards - value)
        std_error = float(
            np.sqrt(np.sum(residuals**2)) / weight_sum
        ) if n > 1 else float("inf")
        return EstimatorResult(
            value=value,
            std_error=std_error,
            n=n,
            effective_n=matched,
            estimator=self.name,
            details={
                "match_rate": matched / n,
                "effective_sample_size": float(
                    weights.sum() ** 2 / np.sum(weights**2)
                )
                if np.any(weights)
                else 0.0,
            },
        )
