"""Inverse propensity scoring (IPS) estimators.

The workhorse of §4::

    ips(π) = (1/N) Σ_t  1{π(x_t) = a_t} · r_t / p_t

Each logged interaction whose action matches the candidate policy's
choice contributes its reward, up-weighted by the inverse of the logged
propensity; non-matching interactions contribute zero.  The estimate is
unbiased whenever every action has positive logged propensity, but its
variance grows as 1/p, which motivates the clipped and self-normalized
variants also implemented here.

For a *stochastic* candidate π the indicator generalizes to the
importance ratio ``π(a_t | x_t) / p_t``.

All three estimators run on either evaluation backend (see
:mod:`repro.core.engine`): the vectorized path computes the whole
importance-weight vector from one
:meth:`~repro.core.policies.Policy.probabilities_batch` call against
the dataset's cached columnar view; the scalar path is the per-row
reference.  Every derived quantity (terms, match counts, clipping
statistics) comes from a *single* weight pass per estimate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.diagnostics import effective_sample_size
from repro.core.estimators.base import (
    EstimatorResult,
    OffPolicyEstimator,
    eligible_actions_fn,
)
from repro.core.policies import Policy
from repro.core.types import Dataset


class IPSEstimator(OffPolicyEstimator):
    """Plain (unclipped) inverse propensity scoring."""

    name = "ips"
    diagnostics_profile = "ips"

    def match_weights(self, policy: Policy, dataset: Dataset) -> np.ndarray:
        """Per-interaction importance ratios ``π(a_t|x_t)/p_t``."""
        self._require_data(dataset)
        if self.resolved_backend() == "vectorized":
            columns = dataset.columns()
            return columns.logged_probabilities(policy) / columns.propensities
        eligible = eligible_actions_fn(dataset)
        weights = np.empty(len(dataset))
        for index, interaction in enumerate(dataset):
            pi_prob = policy.probability_of(
                interaction.context, eligible(interaction), interaction.action
            )
            weights[index] = pi_prob / interaction.propensity
        return weights

    def _weights_and_coverage(
        self, policy: Policy, dataset: Dataset
    ) -> tuple[np.ndarray, float]:
        """Weights plus support coverage from *one* probability pass.

        Coverage is the mean candidate-policy mass on actions observed
        anywhere in the log — the fraction of π the estimator can see.
        Derived from the same probability matrix (or per-row
        distribution) as the weights so diagnostics cost no extra
        policy evaluation.
        """
        self._require_data(dataset)
        columns = dataset.columns()
        observed = columns.observed_actions()
        if self.resolved_backend() == "vectorized":
            matrix = policy.probabilities_batch(columns)
            weights = columns.probability_of_logged(matrix) / columns.propensities
            coverage = float(matrix[:, observed].sum(axis=1).mean())
            return weights, coverage
        eligible = eligible_actions_fn(dataset)
        observed_set = set(observed.tolist())
        weights = np.empty(len(dataset))
        coverage_sum = 0.0
        for index, interaction in enumerate(dataset):
            actions = eligible(interaction)
            probs = policy.distribution(interaction.context, actions)
            pi_prob = 0.0
            for position, action in enumerate(actions):
                if action == interaction.action:
                    pi_prob = float(probs[position])
                if action in observed_set:
                    coverage_sum += float(probs[position])
            weights[index] = pi_prob / interaction.propensity
        return weights, coverage_sum / len(dataset)

    def weighted_rewards(self, policy: Policy, dataset: Dataset) -> np.ndarray:
        """Per-interaction terms ``π(a_t|x_t)/p_t · r_t`` (the summands)."""
        return self.match_weights(policy, dataset) * self._rewards(dataset)

    def _rewards(self, dataset: Dataset) -> np.ndarray:
        if self.resolved_backend() == "vectorized":
            return dataset.columns().rewards
        return dataset.rewards()

    def estimate(self, policy: Policy, dataset: Dataset) -> EstimatorResult:
        # One probability pass: terms, the match count, and the
        # reliability diagnostics all derive from the same weight vector.
        weights, coverage = self._weights_and_coverage(policy, dataset)
        terms = weights * self._rewards(dataset)
        matched = int(np.count_nonzero(weights))
        return EstimatorResult(
            value=float(terms.mean()),
            std_error=self._standard_error(terms),
            n=len(dataset),
            effective_n=matched,
            estimator=self.name,
            details={"match_rate": matched / len(dataset)},
            diagnostics=self._diagnose(dataset, weights, coverage),
        )


class ClippedIPSEstimator(IPSEstimator):
    """IPS with importance weights clipped at ``max_weight``.

    Clipping trades a little bias for a hard variance cap — the
    standard mitigation when scavenged logs contain rare actions with
    tiny propensities.
    """

    diagnostics_profile = "clipped"

    def __init__(
        self, max_weight: float = 100.0, backend: Optional[str] = None
    ) -> None:
        super().__init__(backend=backend)
        if max_weight <= 0:
            raise ValueError("max_weight must be positive")
        self.max_weight = max_weight
        self.name = f"clipped-ips[{max_weight:g}]"

    def estimate(self, policy: Policy, dataset: Dataset) -> EstimatorResult:
        raw, coverage = self._weights_and_coverage(policy, dataset)
        weights = np.minimum(raw, self.max_weight)
        terms = weights * self._rewards(dataset)
        matched = int(np.count_nonzero(weights))
        return EstimatorResult(
            value=float(terms.mean()),
            std_error=self._standard_error(terms),
            n=len(dataset),
            effective_n=matched,
            estimator=self.name,
            details={
                "match_rate": matched / len(dataset),
                "clipped_fraction": float(np.mean(raw > self.max_weight)),
            },
            # Diagnose the weights actually used: clipping caps the
            # tail, which the "clipped" profile's one-sided identity
            # check accounts for.
            diagnostics=self._diagnose(dataset, weights, coverage),
        )


class SNIPSEstimator(IPSEstimator):
    """Self-normalized IPS: divide by the sum of importance weights.

    Exactly invariant to additive reward shifts and usually much lower
    variance than plain IPS, at the cost of a small (vanishing) bias.
    """

    name = "snips"
    diagnostics_profile = "snips"

    def estimate(self, policy: Policy, dataset: Dataset) -> EstimatorResult:
        weights, coverage = self._weights_and_coverage(policy, dataset)
        rewards = self._rewards(dataset)
        weight_sum = float(weights.sum())
        matched = int(np.count_nonzero(weights))
        diagnostics = self._diagnose(dataset, weights, coverage)
        if weight_sum == 0.0:
            # The candidate never matches the log: no information at all.
            return EstimatorResult(
                value=float("nan"),
                std_error=float("inf"),
                n=len(dataset),
                effective_n=0,
                estimator=self.name,
                details={"match_rate": 0.0},
                diagnostics=diagnostics,
            )
        value = float((weights * rewards).sum() / weight_sum)
        # Delta-method standard error for a ratio of means.
        n = len(dataset)
        residuals = weights * (rewards - value)
        std_error = float(
            np.sqrt(np.sum(residuals**2)) / weight_sum
        ) if n > 1 else float("inf")
        return EstimatorResult(
            value=value,
            std_error=std_error,
            n=n,
            effective_n=matched,
            estimator=self.name,
            details={
                "match_rate": matched / n,
                # Kish ESS via the guarded helper: denormal weights can
                # make Σw² underflow to exactly 0 while Σw > 0, which
                # the naive ratio turned into NaN.
                "effective_sample_size": effective_sample_size(weights),
            },
            diagnostics=diagnostics,
        )
