"""Vowpal-Wabbit-compatible contextual-bandit serialization.

The de-facto interchange format for exploration data is VW's ``--cb``
input format (used by the Decision Service the paper builds on [1]):

    <action>:<cost>:<probability> | feature1:value1 feature2:value2

One line per interaction; the *cost* convention means VW minimizes, so
rewards are negated on export and back-negated on import.  Supporting
this format means logs harvested here can be cross-checked against VW,
and VW-format logs from real systems can be analyzed with this library.

Only the single-line ``--cb`` flavor is implemented (shared action set,
context features only); the ADF multi-line flavor is out of scope.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Optional, TextIO, Union

from repro.core.types import ActionSpace, Dataset, Interaction, RewardRange

_FEATURE_RE = re.compile(r"^([^\s:|]+)(?::(-?[\d.eE+-]+))?$")

#: VW action ids are 1-based.
_ACTION_BASE = 1


def interaction_to_vw(interaction: Interaction) -> str:
    """Serialize one interaction as a VW ``--cb`` line.

    VW expects a *cost*; we emit ``-reward``.  Feature names containing
    spaces, colons or pipes are not representable and raise.
    """
    cost = -interaction.reward
    parts = [f"{interaction.action + _ACTION_BASE}:{cost:g}:{interaction.propensity:g}", "|"]
    for name, value in interaction.context.items():
        if any(ch in name for ch in " :|"):
            raise ValueError(f"feature name {name!r} not representable in VW")
        parts.append(f"{name}:{float(value):g}")
    return " ".join(parts)


def vw_to_interaction(line: str, timestamp: float = 0.0) -> Optional[Interaction]:
    """Parse one VW ``--cb`` line; returns None for malformed lines."""
    line = line.strip()
    if not line or "|" not in line:
        return None
    label_part, _, feature_part = line.partition("|")
    label_fields = label_part.strip().split(":")
    if len(label_fields) != 3:
        return None
    try:
        action = int(label_fields[0]) - _ACTION_BASE
        cost = float(label_fields[1])
        probability = float(label_fields[2])
    except ValueError:
        return None
    if action < 0 or not 0.0 < probability <= 1.0:
        return None
    if not math.isfinite(cost):
        return None
    context: dict[str, float] = {}
    for token in feature_part.split():
        match = _FEATURE_RE.match(token)
        if match is None:
            return None
        name, value = match.group(1), match.group(2)
        try:
            context[name] = float(value) if value is not None else 1.0
        except ValueError:
            return None
    return Interaction(
        context=context,
        action=action,
        reward=-cost,
        propensity=probability,
        timestamp=timestamp,
    )


def save_vw(dataset: Dataset, destination: Union[str, TextIO]) -> int:
    """Write a dataset in VW ``--cb`` format; returns lines written."""
    own = isinstance(destination, str)
    handle = open(destination, "w", encoding="utf-8") if own else destination
    try:
        count = 0
        for interaction in dataset:
            handle.write(interaction_to_vw(interaction) + "\n")
            count += 1
        return count
    finally:
        if own:
            handle.close()


def load_vw(
    source: Union[str, TextIO, Iterable[str]],
    action_space: Optional[ActionSpace] = None,
    reward_range: Optional[RewardRange] = None,
) -> Dataset:
    """Read a VW ``--cb`` file/stream into a dataset.

    Malformed lines are skipped (scavenging must tolerate noise); line
    numbers become timestamps.
    """
    own = isinstance(source, str)
    handle = open(source, "r", encoding="utf-8") if own else source
    try:
        dataset = Dataset(action_space=action_space, reward_range=reward_range)
        for index, line in enumerate(handle):
            interaction = vw_to_interaction(line, timestamp=float(index))
            if interaction is not None:
                dataset.append(interaction)
        return dataset
    finally:
        if own:
            handle.close()
