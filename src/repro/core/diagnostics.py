"""OPE reliability diagnostics: is this estimate trustworthy?

Table 2 of the paper is a warning shot: IPS confidently mis-valued the
degenerate "send to 1" policy because the logged data violated the
A1/A2 assumptions of §5.  An estimator that returns a number without
saying whether the number can be believed is a trap; this module
computes per-estimate health metrics and an explicit verdict:

- **effective sample size** (Kish): ``(Σw)² / Σw²`` of the importance
  weights — how many log rows the estimate *really* rests on;
- **max / 99th-percentile importance weight** — heavy tails mean a
  handful of rows dominate;
- **propensity floor** — ε of Eq. 1; tiny propensities inflate
  variance beyond what the CI accounts for;
- **support coverage** — how much of the candidate policy's action
  mass lands on actions that appear in the log at all (mass off the
  logged support is invisible to any importance-weighted estimator);
- **mean-weight identity** — under assumption A1,
  ``E[π(a_t|x_t)/p_t] = 1`` for any fully-supported candidate π;
- **per-action propensity identity** — under A1,
  ``E[1{a_t=a}/p_t] = 1`` for every action ``a``.  Logs harvested from
  a *deterministic* production policy (propensity ≡ 1, the Table 2
  scenario) fail this loudly: the per-action mean is the action's raw
  frequency, not 1.

The thresholds combine into a three-level verdict — ``OK`` / ``WARN``
/ ``UNRELIABLE`` — attached to every
:class:`~repro.core.estimators.base.EstimatorResult` by the IPS-family,
DR, and DM estimators on *both* evaluation backends, rendered by
:mod:`repro.core.reporting`, and consumed by
:class:`~repro.core.estimators.fallback.FallbackEstimator` to degrade
gracefully instead of returning garbage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs.metrics import get_metrics
from repro.obs.monitors import get_monitors

VERDICT_OK = "OK"
VERDICT_WARN = "WARN"
VERDICT_UNRELIABLE = "UNRELIABLE"

#: Check profiles: which rules apply depends on the estimator family.
#: - "ips"    — every check at full strength (plain IPS trusts the
#:   weights completely);
#: - "clipped" — the mean-weight identity only fails *upward* (clipping
#:   legitimately biases the mean weight below 1);
#: - "snips"  — the *mean-weight* identity caps at WARN
#:   (self-normalization absorbs a uniformly mis-scaled propensity
#:   model), but the per-action identity, support, and ESS checks still
#:   bind: degenerate logging is not a scaling problem;
#: - "model"  — DM uses no weights; only support coverage applies, and
#:   only ever as a warning (the model extrapolates, it doesn't blow up).
PROFILES = ("ips", "clipped", "snips", "model")


@dataclass(frozen=True)
class DiagnosticThresholds:
    """Cut-offs separating OK from WARN from UNRELIABLE."""

    ess_fraction_warn: float = 0.05
    ess_fraction_fail: float = 0.005
    identity_warn: float = 0.25
    identity_fail: float = 0.5
    coverage_warn: float = 0.9
    coverage_fail: float = 0.5
    max_weight_warn: float = 100.0
    min_propensity_warn: float = 1e-4


DEFAULT_THRESHOLDS = DiagnosticThresholds()


def effective_sample_size(weights: np.ndarray) -> float:
    """Kish effective sample size ``(Σw)² / Σw²``, safely.

    Guarded against the all-zero case *and* against denormal weights
    whose squares underflow to exactly 0 (a Hypothesis-found corner:
    ``Σw > 0`` while ``Σw² == 0`` returned NaN).
    """
    weights = np.asarray(weights, dtype=float)
    sum_sq = float(np.sum(np.square(weights)))
    if sum_sq <= 0.0:
        return 0.0
    total = float(np.sum(weights))
    return total * total / sum_sq


def weight_quantile(weights: np.ndarray, q: float = 0.99) -> float:
    """The ``q``-quantile importance weight via an O(N) partition."""
    weights = np.asarray(weights, dtype=float)
    if weights.size == 0:
        return 0.0
    index = int(q * (weights.size - 1))
    return float(np.partition(weights, index)[index])


@dataclass(frozen=True)
class WeightSummary:
    """Sufficient statistics of an importance-weight vector.

    Everything the verdict logic needs to know about a weight vector,
    in O(1) space: the count, first two power sums, the maximum, and
    the 99th-percentile weight.  Built either from a full array
    (:meth:`from_weights`) or folded chunk-by-chunk by the reduction
    kernel (:class:`repro.core.estimators.reductions.WeightStats`), so
    whole-log and chunked evaluation produce identical diagnostics.
    """

    n: int
    total: float
    total_sq: float
    maximum: float
    q99: float

    @classmethod
    def from_weights(cls, weights: np.ndarray) -> "WeightSummary":
        weights = np.asarray(weights, dtype=float)
        n = int(weights.size)
        return cls(
            n=n,
            total=float(np.sum(weights)) if n else 0.0,
            total_sq=float(np.sum(np.square(weights))) if n else 0.0,
            maximum=float(weights.max()) if n else 0.0,
            q99=weight_quantile(weights),
        )

    @property
    def effective_sample_size(self) -> float:
        """Kish ESS ``(Σw)²/Σw²`` with the same underflow guard as
        :func:`effective_sample_size`."""
        if self.total_sq <= 0.0:
            return 0.0
        return self.total * self.total / self.total_sq


def propensity_identity_error(
    actions: np.ndarray, propensities: np.ndarray
) -> float:
    """Worst per-action deviation of the A1 identity ``E[1{a_t=a}/p_t]``.

    For every *observed* action the empirical mean of ``1{a_t=a}/p_t``
    should be 1 when the logged propensities are truthful.  Logs from a
    deterministic policy recorded with propensity 1 put that mean at
    the action's raw frequency — far from 1 — which is exactly how the
    Table 2 failure announces itself in the data.
    """
    actions = np.asarray(actions)
    propensities = np.asarray(propensities, dtype=float)
    n = actions.size
    if n == 0:
        return 0.0
    inverse = 1.0 / propensities
    worst = 0.0
    for action in np.unique(actions):
        mean = float(inverse[actions == action].sum()) / n
        worst = max(worst, abs(mean - 1.0))
    return worst


@dataclass(frozen=True)
class ReliabilityDiagnostics:
    """Health metrics for one off-policy estimate, plus the verdict.

    Weight-based fields are ``None`` for model-based (DM) estimates,
    which use no importance weights.
    """

    n: int
    effective_sample_size: Optional[float]
    ess_fraction: Optional[float]
    mean_weight: Optional[float]
    max_weight: Optional[float]
    weight_q99: Optional[float]
    min_propensity: float
    propensity_identity_error: float
    support_coverage: float
    profile: str
    verdict: str
    reasons: tuple[str, ...]

    @property
    def reliable(self) -> bool:
        """Whether the estimate clears the UNRELIABLE bar."""
        return self.verdict != VERDICT_UNRELIABLE

    def to_dict(self) -> dict:
        """JSON-serializable representation (None fields omitted)."""
        out = {
            "n": self.n,
            "min_propensity": self.min_propensity,
            "propensity_identity_error": self.propensity_identity_error,
            "support_coverage": self.support_coverage,
            "profile": self.profile,
            "verdict": self.verdict,
            "reasons": list(self.reasons),
        }
        for key in (
            "effective_sample_size",
            "ess_fraction",
            "mean_weight",
            "max_weight",
            "weight_q99",
        ):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    def __repr__(self) -> str:
        detail = f", reasons={list(self.reasons)}" if self.reasons else ""
        return f"ReliabilityDiagnostics({self.verdict}{detail})"


def diagnose(
    weights: Optional[np.ndarray],
    propensities: np.ndarray,
    actions: np.ndarray,
    support_coverage: float,
    profile: str = "ips",
    thresholds: Optional[DiagnosticThresholds] = None,
    identity_error: Optional[float] = None,
) -> ReliabilityDiagnostics:
    """Compute diagnostics + verdict for one (policy, dataset) estimate.

    ``weights`` are the importance weights the estimator actually used
    (clipped weights for clipped IPS), or ``None`` for model-based
    estimates.  All inputs are plain arrays, so the scalar and
    vectorized backends produce *identical* diagnostics from identical
    weight vectors.  ``identity_error`` is policy-independent and may
    be passed in pre-computed (see
    :meth:`repro.core.columns.DatasetColumns.propensity_identity_error`)
    so class searches don't recompute it per candidate.
    """
    propensities = np.asarray(propensities, dtype=float)
    n = int(propensities.size)
    min_propensity = float(propensities.min()) if n else 0.0
    if identity_error is None:
        identity_error = propensity_identity_error(actions, propensities)
    summary = (
        WeightSummary.from_weights(weights) if weights is not None else None
    )
    return diagnose_from_stats(
        summary,
        n=n,
        min_propensity=min_propensity,
        identity_error=identity_error,
        support_coverage=support_coverage,
        profile=profile,
        thresholds=thresholds,
    )


def diagnose_from_stats(
    weights: Optional[WeightSummary],
    n: int,
    min_propensity: float,
    identity_error: float,
    support_coverage: float,
    profile: str = "ips",
    thresholds: Optional[DiagnosticThresholds] = None,
) -> ReliabilityDiagnostics:
    """Verdict logic over sufficient statistics (the fold-friendly core).

    :func:`diagnose` is a thin wrapper that reduces full arrays to these
    statistics first; the chunked backend folds the same statistics
    incrementally (see :mod:`repro.core.estimators.reductions`), so
    both paths share one copy of the threshold logic and agree exactly.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; expected one of {PROFILES}")
    t = thresholds or DEFAULT_THRESHOLDS

    failures: list[str] = []
    warnings_: list[str] = []

    if weights is not None:
        ess = weights.effective_sample_size
        ess_fraction = ess / n if n else 0.0
        mean_weight = weights.total / n if n else 0.0
        max_weight = weights.maximum
        q99 = weights.q99

        if ess_fraction < t.ess_fraction_fail:
            failures.append(
                f"effective sample size {ess:.1f} is {ess_fraction:.2%} of "
                f"n={n}"
            )
        elif ess_fraction < t.ess_fraction_warn:
            warnings_.append(
                f"effective sample size {ess:.1f} is {ess_fraction:.2%} of "
                f"n={n}"
            )

        deviation = mean_weight - 1.0
        identity_applies = (
            deviation > t.identity_warn
            if profile == "clipped"
            else abs(deviation) > t.identity_warn
        )
        if identity_applies:
            message = (
                f"mean importance weight {mean_weight:.2f} breaks the "
                f"E[w]=1 identity (A1 violation)"
            )
            hard = (
                deviation > t.identity_fail
                if profile == "clipped"
                else abs(deviation) > t.identity_fail
            )
            if hard and profile != "snips":
                failures.append(message)
            else:
                warnings_.append(message)

        if max_weight > t.max_weight_warn:
            warnings_.append(f"max importance weight {max_weight:.1f} (heavy tail)")
    else:
        ess = ess_fraction = mean_weight = max_weight = q99 = None

    if identity_error > t.identity_fail and profile != "model":
        failures.append(
            f"per-action propensity identity off by {identity_error:.2f} "
            f"(degenerate logging?)"
        )
    elif identity_error > t.identity_warn:
        warnings_.append(
            f"per-action propensity identity off by {identity_error:.2f}"
        )

    if support_coverage < t.coverage_fail and profile != "model":
        failures.append(
            f"only {support_coverage:.0%} of the policy's action mass is "
            f"on logged support"
        )
    elif support_coverage < t.coverage_warn:
        warnings_.append(
            f"{support_coverage:.0%} of the policy's action mass is on "
            f"logged support"
        )

    if 0.0 < min_propensity < t.min_propensity_warn:
        warnings_.append(f"propensity floor {min_propensity:.2e}")

    if failures:
        verdict = VERDICT_UNRELIABLE
    elif warnings_:
        verdict = VERDICT_WARN
    else:
        verdict = VERDICT_OK
    # Every verdict — scalar, vectorized, or chunked — passes through
    # here, so this one counter is the authoritative per-run tally,
    # and the same sufficient statistics feed the streaming monitors
    # (ESS window + weight tail fire on the evaluation side too).
    get_metrics().counter(
        "estimator.verdicts", verdict=verdict, profile=profile
    ).inc()
    monitors = get_monitors()
    if monitors.enabled and weights is not None and n:
        monitors.observe_weight_stats(
            n, weights.total, weights.total_sq, weights.maximum
        )
    return ReliabilityDiagnostics(
        n=n,
        effective_sample_size=ess,
        ess_fraction=ess_fraction,
        mean_weight=mean_weight,
        max_weight=max_weight,
        weight_q99=q99,
        min_propensity=min_propensity,
        propensity_identity_error=identity_error,
        support_coverage=support_coverage,
        profile=profile,
        verdict=verdict,
        reasons=tuple(failures + warnings_),
    )
