"""Policy abstractions.

A *policy* maps a context to a distribution over eligible actions
(§2).  Deterministic policies are the special case of a point-mass
distribution.  Every policy here exposes:

- :meth:`Policy.distribution`: the probability of each eligible action
  given a context — this is what the IPS estimator needs to evaluate
  the policy offline, and what the logging side needs to record
  propensities.
- :meth:`Policy.act`: sample an action, returning ``(action,
  propensity)`` so the caller can log the exploration tuple.
- :meth:`Policy.probabilities_batch`: the whole-log analogue of
  :meth:`~Policy.distribution` — an ``(N, K)`` probability matrix over
  a :class:`~repro.core.columns.ContextColumns` view, which is what
  the vectorized estimators consume.  Built-in policies implement it
  with array code; the base class provides a correct per-row fallback
  so arbitrary user policies keep working.
- :meth:`Policy.act_batch`: the whole-batch analogue of
  :meth:`~Policy.act` — sample one action per row from the
  ``probabilities_batch`` matrix with a single generator draw,
  returning ``(actions, propensities)`` arrays.  This is the
  harvest-side hot path: declared propensities come from the same
  matrix the actions are sampled from, so they match exactly.

The enumerable :class:`PolicyClass` models the paper's "class of
policies Π defined by a tunable template" that offline optimization
searches over.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from repro.core.columns import as_decision_batch, loop_probabilities
from repro.core.engine import warn_missing_batch
from repro.core.types import Context

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.columns import ContextColumns, DatasetColumns, EligibleSpec


def sample_from_probabilities(
    matrix: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Sample one action per row of an ``(N, K)`` probability matrix.

    Inverse-CDF sampling with exactly **one uniform draw per row**, in
    row order (``rng.random(N)``).  Because a `numpy Generator's`
    ``random(n)`` is bit-identical to ``n`` sequential ``random()``
    calls, sampling a batch of N rows consumes the same stream as
    sampling two batches of N/2 — the foundation of the harvest
    determinism contract (results are invariant to batch size; see
    ``docs/harvesting.md``).

    Each row's CDF is scaled by its own total, so rows need only be
    *proportional* to a distribution; zero-probability actions are
    never selected (a zero-width CDF step can't straddle the uniform).
    Returns ``(actions, propensities)`` where ``propensities[t] ==
    matrix[t, actions[t]]`` exactly — what the sampler declares is what
    the estimator divides by.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    n, _ = matrix.shape
    if n == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    if (matrix < 0.0).any():
        raise ValueError("probabilities must be non-negative")
    cdf = np.cumsum(matrix, axis=1)
    totals = cdf[:, -1:]
    if (totals <= 0.0).any():
        bad = int(np.argmax((totals <= 0.0).ravel()))
        raise ValueError(f"row {bad} has zero total probability")
    # Smallest index whose CDF strictly exceeds u * total == number of
    # CDF entries ≤ the target.  `<=` (not `<`) skips zero-probability
    # prefixes whose CDF equals the target exactly.
    draws = rng.random(n)
    chosen = (cdf <= draws[:, None] * totals).sum(axis=1)
    # Guard the u→1 rounding edge (u * total can round up to total):
    # clamp to each row's last nonzero-probability column.
    last_nonzero = matrix.shape[1] - 1 - np.argmax(
        (matrix > 0.0)[:, ::-1], axis=1
    )
    chosen = np.minimum(chosen, last_nonzero)
    return chosen, matrix[np.arange(n), chosen]


class Policy(ABC):
    """Base class: a (possibly stochastic) mapping context → action."""

    name: str = "policy"

    @abstractmethod
    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        """Probability of each action in ``actions`` given ``context``.

        Returns an array aligned with ``actions`` that sums to 1.
        """

    def act(
        self, context: Context, actions: Sequence[int], rng: np.random.Generator
    ) -> tuple[int, float]:
        """Sample an action; return ``(action, propensity)``."""
        probs = self.distribution(context, actions)
        index = int(rng.choice(len(actions), p=probs))
        return actions[index], float(probs[index])

    def action(self, context: Context, actions: Sequence[int]) -> int:
        """The modal action — used when evaluating a policy as deterministic."""
        probs = self.distribution(context, actions)
        return actions[int(np.argmax(probs))]

    def probability_of(
        self, context: Context, actions: Sequence[int], action: int
    ) -> float:
        """Probability this policy assigns to a specific action."""
        if action not in actions:
            return 0.0
        probs = self.distribution(context, actions)
        return float(probs[list(actions).index(action)])

    def probabilities_batch(self, columns: "DatasetColumns") -> np.ndarray:
        """``(N, K)`` action-probability matrix over a columnar log view.

        Row ``t`` is this policy's distribution at context ``x_t``,
        with exactly zero mass on ineligible actions.  This base
        implementation is the loop fallback: correct for any policy,
        but it forfeits the vectorized speedup, so it warns once per
        policy type.  Subclasses override it with array code; the
        contract is bit-for-bit agreement with per-row
        :meth:`distribution` up to floating-point reassociation
        (enforced by ``tests/core/test_batch_equivalence.py``).
        """
        warn_missing_batch(type(self))
        return loop_probabilities(self, columns)

    def act_batch(
        self,
        contexts: "Sequence[Context] | ContextColumns",
        eligible: "Optional[EligibleSpec]",
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample one action per context; return ``(actions, propensities)``.

        The batch analogue of :meth:`act`, and the harvest-side hot
        path: builds the ``(N, K)`` probability matrix once via
        :meth:`probabilities_batch` (vectorized for every built-in) and
        samples all rows with a single generator call.  ``contexts``
        may be a prebuilt :class:`~repro.core.columns.ContextColumns`
        (pass ``eligible=None``) so callers that already hold a batch
        skip mask construction.

        Determinism contract: this method consumes exactly **one
        uniform per row, in row order** (or none at all, for overrides
        like :class:`HashPolicy` that don't randomize) — never a
        data-dependent amount.  Harvesting N rows therefore produces
        bit-identical logs for any batch split of the same generator,
        and declared propensities equal the matrix entries the actions
        were sampled from.  Note this is a *different stream* than
        repeated legacy :meth:`act` calls, which go through
        ``Generator.choice``.
        """
        batch = as_decision_batch(contexts, eligible)
        matrix = self.probabilities_batch(batch)
        return sample_from_probabilities(matrix, rng)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


def _point_mass(actions: Sequence[int], chosen: int) -> np.ndarray:
    probs = np.zeros(len(actions))
    probs[list(actions).index(chosen)] = 1.0
    return probs


class ConstantPolicy(Policy):
    """Always choose one fixed action (e.g. Table 2's "send to 1")."""

    def __init__(self, action: int, name: Optional[str] = None) -> None:
        self._action = action
        self.name = name or f"constant[{action}]"

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        if self._action not in actions:
            raise ValueError(
                f"constant action {self._action} not eligible in {list(actions)}"
            )
        return _point_mass(actions, self._action)

    def probabilities_batch(self, columns: "DatasetColumns") -> np.ndarray:
        if (
            not 0 <= self._action < columns.n_actions
            or not columns.eligible_mask[:, self._action].all()
        ):
            raise ValueError(
                f"constant action {self._action} not eligible at every "
                "logged context"
            )
        return columns.point_mass_matrix(
            np.full(columns.n, self._action, dtype=np.int64)
        )


class UniformRandomPolicy(Policy):
    """Choose uniformly at random — the canonical logging policy."""

    name = "uniform-random"

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        return np.full(len(actions), 1.0 / len(actions))

    def probabilities_batch(self, columns: "DatasetColumns") -> np.ndarray:
        return columns.uniform_matrix()


class DeterministicFunctionPolicy(Policy):
    """Wrap an arbitrary ``f(context, actions) -> action`` as a policy.

    This is how system heuristics (least-loaded, LRU, ...) enter the
    off-policy evaluation machinery as candidate policies.
    """

    def __init__(
        self,
        choose: Callable[[Context, Sequence[int]], int],
        name: str = "deterministic",
    ) -> None:
        self._choose = choose
        self.name = name

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        chosen = self._choose(context, actions)
        if chosen not in actions:
            raise ValueError(f"choice {chosen} not among eligible {list(actions)}")
        return _point_mass(actions, chosen)


class EpsilonGreedyPolicy(Policy):
    """Follow a base policy w.p. ``1 - ε``, explore uniformly w.p. ``ε``.

    Guarantees every eligible action has propensity ≥ ε/|A|, which is
    exactly the coverage condition the IPS estimator needs (§4).
    """

    def __init__(self, base: Policy, epsilon: float, name: Optional[str] = None) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.base = base
        self.epsilon = epsilon
        self.name = name or f"eps-greedy[{base.name}, eps={epsilon}]"

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        base = self.base.distribution(context, actions)
        uniform = np.full(len(actions), 1.0 / len(actions))
        return (1.0 - self.epsilon) * base + self.epsilon * uniform

    def probabilities_batch(self, columns: "DatasetColumns") -> np.ndarray:
        base = self.base.probabilities_batch(columns)
        return (1.0 - self.epsilon) * base + self.epsilon * columns.uniform_matrix()


class SoftmaxPolicy(Policy):
    """Boltzmann distribution over a per-action score function.

    ``scorer(context, action)`` returns a desirability score; higher is
    better.  ``temperature`` → 0 approaches greedy; → ∞ approaches
    uniform.

    ``batch_scorer(columns)``, when given, returns the whole ``(N, K)``
    score matrix for a columnar log view in one call, letting
    :meth:`probabilities_batch` run entirely at array speed; without it
    the scores are gathered per row (the softmax itself is still
    vectorized).
    """

    def __init__(
        self,
        scorer: Callable[[Context, int], float],
        temperature: float = 1.0,
        name: str = "softmax",
        batch_scorer: Optional[
            Callable[["DatasetColumns"], np.ndarray]
        ] = None,
    ) -> None:
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self._scorer = scorer
        self._batch_scorer = batch_scorer
        self.temperature = temperature
        self.name = name

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        scores = np.array([self._scorer(context, a) for a in actions], dtype=float)
        scaled = scores / self.temperature
        scaled -= scaled.max()  # overflow-safe softmax
        exp = np.exp(scaled)
        return exp / exp.sum()

    def _score_matrix(self, columns: "DatasetColumns") -> np.ndarray:
        if self._batch_scorer is not None:
            scores = np.asarray(self._batch_scorer(columns), dtype=float)
            if scores.shape != (columns.n, columns.n_actions):
                raise ValueError(
                    f"batch_scorer must return shape "
                    f"({columns.n}, {columns.n_actions}), got {scores.shape}"
                )
            return scores
        scores = np.zeros((columns.n, columns.n_actions))
        for row, context in enumerate(columns.contexts):
            for action in columns.eligible_lists[row]:
                scores[row, action] = self._scorer(context, action)
        return scores

    def probabilities_batch(self, columns: "DatasetColumns") -> np.ndarray:
        mask = columns.eligible_mask
        scaled = self._score_matrix(columns) / self.temperature
        guarded = np.where(mask, scaled, -np.inf)
        # Row-wise overflow-safe softmax over the eligible entries;
        # exp(-inf) puts exact zeros on ineligible actions.
        guarded -= guarded.max(axis=1, keepdims=True)
        exp = np.exp(guarded)
        return exp / exp.sum(axis=1, keepdims=True)


class GreedyRegressorPolicy(Policy):
    """Greedily pick the action with the best predicted reward.

    ``predict(context, action)`` is typically a regression oracle
    trained with importance weighting (see
    :class:`repro.core.learners.cb.EpsilonGreedyLearner`).  Ties break
    toward the lowest action id, deterministically.

    ``batch_predict(columns)``, when given, returns the ``(N, K)``
    prediction matrix in one call (e.g.
    :meth:`repro.core.estimators.direct.RewardModel.predict_matrix`),
    making :meth:`probabilities_batch` a pure array computation.
    """

    def __init__(
        self,
        predict: Callable[[Context, int], float],
        maximize: bool = True,
        name: str = "greedy-regressor",
        batch_predict: Optional[
            Callable[["DatasetColumns"], np.ndarray]
        ] = None,
    ) -> None:
        self._predict = predict
        self._batch_predict = batch_predict
        self.maximize = maximize
        self.name = name

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        scores = np.array([self._predict(context, a) for a in actions], dtype=float)
        best = int(np.argmax(scores)) if self.maximize else int(np.argmin(scores))
        return _point_mass(actions, actions[best])

    def probabilities_batch(self, columns: "DatasetColumns") -> np.ndarray:
        if not columns.canonical_order:
            # Masked argmax tie-breaks by lowest action id; that only
            # matches the scalar path's first-in-list tie-break when
            # eligible lists are ascending, so play it safe otherwise.
            return loop_probabilities(self, columns)
        if self._batch_predict is not None:
            scores = np.asarray(self._batch_predict(columns), dtype=float)
            if scores.shape != (columns.n, columns.n_actions):
                raise ValueError(
                    f"batch_predict must return shape "
                    f"({columns.n}, {columns.n_actions}), got {scores.shape}"
                )
        else:
            scores = np.zeros((columns.n, columns.n_actions))
            for row, context in enumerate(columns.contexts):
                for action in columns.eligible_lists[row]:
                    scores[row, action] = self._predict(context, action)
        best = columns.masked_argbest(scores, maximize=self.maximize)
        return columns.point_mass_matrix(best)


class HashPolicy(Policy):
    """Hash-based routing, e.g. consistent request sharding.

    §2: a hash policy "can be viewed as random if the context does not
    include the inputs to the hash."  ``key_of`` extracts the hash key
    (a string) from the context metadata; the induced distribution,
    marginalized over keys, is uniform, which is the propensity this
    policy reports.
    """

    def __init__(self, key_of: Callable[[Context], str], name: str = "hash") -> None:
        self._key_of = key_of
        self.name = name

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        # Marginal over hash keys: uniform. Used for propensities.
        return np.full(len(actions), 1.0 / len(actions))

    def probabilities_batch(self, columns: "DatasetColumns") -> np.ndarray:
        # Same marginal the scalar path reports: uniform over eligible.
        return columns.uniform_matrix()

    def act(
        self, context: Context, actions: Sequence[int], rng: np.random.Generator
    ) -> tuple[int, float]:
        key = self._key_of(context)
        index = zlib.crc32(key.encode("utf-8")) % len(actions)
        # The *propensity* is the marginal probability, not 1.0: the
        # action is deterministic given the key, but the key is
        # independent of the (key-free) context.
        return actions[index], 1.0 / len(actions)

    def act_batch(
        self,
        contexts: "Sequence[Context] | ContextColumns",
        eligible: "Optional[EligibleSpec]",
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Route every row by its hash key — consumes no randomness.

        Matches scalar :meth:`act` exactly (same crc32 → index map,
        same marginal-uniform propensity); the generator is accepted
        for protocol uniformity but never drawn from, which trivially
        satisfies the batch-split determinism contract.
        """
        batch = as_decision_batch(contexts, eligible)
        counts = batch.eligible_counts.astype(np.int64)
        hashes = np.fromiter(
            (
                zlib.crc32(self._key_of(context).encode("utf-8"))
                for context in batch.contexts
            ),
            dtype=np.int64,
            count=batch.n,
        )
        index = hashes % np.maximum(counts, 1)
        if batch.uniform_eligibility and batch.n > 0:
            lookup = np.asarray(batch.eligible_lists[0], dtype=np.int64)
            actions = lookup[index]
        else:
            actions = np.fromiter(
                (
                    batch.eligible_lists[row][index[row]]
                    for row in range(batch.n)
                ),
                dtype=np.int64,
                count=batch.n,
            )
        return actions, 1.0 / batch.eligible_counts


class MixturePolicy(Policy):
    """A convex mixture of policies.

    Models e.g. a staged rollout that sends 90% of traffic through the
    incumbent and 10% through a candidate.
    """

    def __init__(
        self,
        policies: Sequence[Policy],
        weights: Sequence[float],
        name: str = "mixture",
    ) -> None:
        if len(policies) != len(weights):
            raise ValueError("one weight per policy required")
        if not policies:
            raise ValueError("mixture of zero policies")
        weights_arr = np.asarray(weights, dtype=float)
        if (weights_arr < 0).any() or not np.isclose(weights_arr.sum(), 1.0):
            raise ValueError("weights must be a probability vector")
        self.policies = list(policies)
        self.weights = weights_arr
        self.name = name

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        out = np.zeros(len(actions))
        for policy, weight in zip(self.policies, self.weights):
            out += weight * policy.distribution(context, actions)
        return out

    def probabilities_batch(self, columns: "DatasetColumns") -> np.ndarray:
        out = np.zeros((columns.n, columns.n_actions))
        for policy, weight in zip(self.policies, self.weights):
            out += weight * policy.probabilities_batch(columns)
        return out


class LinearThresholdPolicy(Policy):
    """Deterministic policy from a linear score over context features.

    Picks ``argmax_a  w_a · φ(x)`` where ``φ`` selects named features.
    A family of these (random weight draws) forms the "linear vectors"
    policy template the paper mentions; :class:`PolicyClass` enumerates
    them for offline optimization.
    """

    def __init__(
        self,
        weights: np.ndarray,
        feature_names: Sequence[str],
        name: str = "linear",
    ) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2:
            raise ValueError("weights must be (n_actions, n_features)")
        if weights.shape[1] != len(feature_names) + 1:
            raise ValueError(
                "weights need one column per feature plus a bias column"
            )
        self.weights = weights
        self.feature_names = list(feature_names)
        self.name = name

    def _phi(self, context: Context) -> np.ndarray:
        values = [float(context.get(f, 0.0)) for f in self.feature_names]
        return np.array(values + [1.0])

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        phi = self._phi(context)
        scores = np.array([self.weights[a] @ phi for a in actions])
        return _point_mass(actions, actions[int(np.argmax(scores))])

    def probabilities_batch(self, columns: "DatasetColumns") -> np.ndarray:
        if (
            self.weights.shape[0] < columns.n_actions
            or not columns.canonical_order
        ):
            # Either some eligible action has no weight row (the scalar
            # path would fail on it anyway) or argmax tie-breaking is
            # not reproducible by a masked argmax; defer to the loop.
            return loop_probabilities(self, columns)
        phi = columns.feature_matrix(self.feature_names)
        scores = phi @ self.weights[: columns.n_actions].T
        best = columns.masked_argbest(scores)
        return columns.point_mass_matrix(best)


class PolicyClass:
    """An enumerable class Π of candidate policies.

    Offline optimization in §4 searches a class of size up to
    ``|Π| = 10^6``; this container supports that search and the Eq. 1
    union bound over its members.
    """

    def __init__(self, policies: Sequence[Policy], name: str = "policy-class") -> None:
        if not policies:
            raise ValueError("empty policy class")
        self.policies = list(policies)
        self.name = name

    def __len__(self) -> int:
        return len(self.policies)

    def __iter__(self):
        return iter(self.policies)

    def __getitem__(self, index: int) -> Policy:
        return self.policies[index]

    @classmethod
    def random_linear(
        cls,
        n_policies: int,
        n_actions: int,
        feature_names: Sequence[str],
        rng: np.random.Generator,
        scale: float = 1.0,
    ) -> "PolicyClass":
        """A class of random linear-threshold policies (a dense sample
        of the 'linear vectors' template)."""
        policies: list[Policy] = []
        for index in range(n_policies):
            weights = rng.normal(0.0, scale, size=(n_actions, len(feature_names) + 1))
            policies.append(
                LinearThresholdPolicy(weights, feature_names, name=f"linear-{index}")
            )
        return cls(policies, name=f"random-linear[{n_policies}]")

    @classmethod
    def all_constant(cls, n_actions: int) -> "PolicyClass":
        """The class of all single-action policies — the A/B-test analogue."""
        return cls(
            [ConstantPolicy(a) for a in range(n_actions)],
            name=f"constants[{n_actions}]",
        )
