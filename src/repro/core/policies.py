"""Policy abstractions.

A *policy* maps a context to a distribution over eligible actions
(§2).  Deterministic policies are the special case of a point-mass
distribution.  Every policy here exposes:

- :meth:`Policy.distribution`: the probability of each eligible action
  given a context — this is what the IPS estimator needs to evaluate
  the policy offline, and what the logging side needs to record
  propensities.
- :meth:`Policy.act`: sample an action, returning ``(action,
  propensity)`` so the caller can log the exploration tuple.

The enumerable :class:`PolicyClass` models the paper's "class of
policies Π defined by a tunable template" that offline optimization
searches over.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.types import Context


class Policy(ABC):
    """Base class: a (possibly stochastic) mapping context → action."""

    name: str = "policy"

    @abstractmethod
    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        """Probability of each action in ``actions`` given ``context``.

        Returns an array aligned with ``actions`` that sums to 1.
        """

    def act(
        self, context: Context, actions: Sequence[int], rng: np.random.Generator
    ) -> tuple[int, float]:
        """Sample an action; return ``(action, propensity)``."""
        probs = self.distribution(context, actions)
        index = int(rng.choice(len(actions), p=probs))
        return actions[index], float(probs[index])

    def action(self, context: Context, actions: Sequence[int]) -> int:
        """The modal action — used when evaluating a policy as deterministic."""
        probs = self.distribution(context, actions)
        return actions[int(np.argmax(probs))]

    def probability_of(
        self, context: Context, actions: Sequence[int], action: int
    ) -> float:
        """Probability this policy assigns to a specific action."""
        if action not in actions:
            return 0.0
        probs = self.distribution(context, actions)
        return float(probs[list(actions).index(action)])

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


def _point_mass(actions: Sequence[int], chosen: int) -> np.ndarray:
    probs = np.zeros(len(actions))
    probs[list(actions).index(chosen)] = 1.0
    return probs


class ConstantPolicy(Policy):
    """Always choose one fixed action (e.g. Table 2's "send to 1")."""

    def __init__(self, action: int, name: Optional[str] = None) -> None:
        self._action = action
        self.name = name or f"constant[{action}]"

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        if self._action not in actions:
            raise ValueError(
                f"constant action {self._action} not eligible in {list(actions)}"
            )
        return _point_mass(actions, self._action)


class UniformRandomPolicy(Policy):
    """Choose uniformly at random — the canonical logging policy."""

    name = "uniform-random"

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        return np.full(len(actions), 1.0 / len(actions))


class DeterministicFunctionPolicy(Policy):
    """Wrap an arbitrary ``f(context, actions) -> action`` as a policy.

    This is how system heuristics (least-loaded, LRU, ...) enter the
    off-policy evaluation machinery as candidate policies.
    """

    def __init__(
        self,
        choose: Callable[[Context, Sequence[int]], int],
        name: str = "deterministic",
    ) -> None:
        self._choose = choose
        self.name = name

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        chosen = self._choose(context, actions)
        if chosen not in actions:
            raise ValueError(f"choice {chosen} not among eligible {list(actions)}")
        return _point_mass(actions, chosen)


class EpsilonGreedyPolicy(Policy):
    """Follow a base policy w.p. ``1 - ε``, explore uniformly w.p. ``ε``.

    Guarantees every eligible action has propensity ≥ ε/|A|, which is
    exactly the coverage condition the IPS estimator needs (§4).
    """

    def __init__(self, base: Policy, epsilon: float, name: Optional[str] = None) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.base = base
        self.epsilon = epsilon
        self.name = name or f"eps-greedy[{base.name}, eps={epsilon}]"

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        base = self.base.distribution(context, actions)
        uniform = np.full(len(actions), 1.0 / len(actions))
        return (1.0 - self.epsilon) * base + self.epsilon * uniform


class SoftmaxPolicy(Policy):
    """Boltzmann distribution over a per-action score function.

    ``scorer(context, action)`` returns a desirability score; higher is
    better.  ``temperature`` → 0 approaches greedy; → ∞ approaches
    uniform.
    """

    def __init__(
        self,
        scorer: Callable[[Context, int], float],
        temperature: float = 1.0,
        name: str = "softmax",
    ) -> None:
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self._scorer = scorer
        self.temperature = temperature
        self.name = name

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        scores = np.array([self._scorer(context, a) for a in actions], dtype=float)
        scaled = scores / self.temperature
        scaled -= scaled.max()  # overflow-safe softmax
        exp = np.exp(scaled)
        return exp / exp.sum()


class GreedyRegressorPolicy(Policy):
    """Greedily pick the action with the best predicted reward.

    ``predict(context, action)`` is typically a regression oracle
    trained with importance weighting (see
    :class:`repro.core.learners.cb.EpsilonGreedyLearner`).  Ties break
    toward the lowest action id, deterministically.
    """

    def __init__(
        self,
        predict: Callable[[Context, int], float],
        maximize: bool = True,
        name: str = "greedy-regressor",
    ) -> None:
        self._predict = predict
        self.maximize = maximize
        self.name = name

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        scores = np.array([self._predict(context, a) for a in actions], dtype=float)
        best = int(np.argmax(scores)) if self.maximize else int(np.argmin(scores))
        return _point_mass(actions, actions[best])


class HashPolicy(Policy):
    """Hash-based routing, e.g. consistent request sharding.

    §2: a hash policy "can be viewed as random if the context does not
    include the inputs to the hash."  ``key_of`` extracts the hash key
    (a string) from the context metadata; the induced distribution,
    marginalized over keys, is uniform, which is the propensity this
    policy reports.
    """

    def __init__(self, key_of: Callable[[Context], str], name: str = "hash") -> None:
        self._key_of = key_of
        self.name = name

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        # Marginal over hash keys: uniform. Used for propensities.
        return np.full(len(actions), 1.0 / len(actions))

    def act(
        self, context: Context, actions: Sequence[int], rng: np.random.Generator
    ) -> tuple[int, float]:
        key = self._key_of(context)
        index = zlib.crc32(key.encode("utf-8")) % len(actions)
        # The *propensity* is the marginal probability, not 1.0: the
        # action is deterministic given the key, but the key is
        # independent of the (key-free) context.
        return actions[index], 1.0 / len(actions)


class MixturePolicy(Policy):
    """A convex mixture of policies — e.g. a staged rollout that sends
    90% of traffic through the incumbent and 10% through a candidate."""

    def __init__(
        self,
        policies: Sequence[Policy],
        weights: Sequence[float],
        name: str = "mixture",
    ) -> None:
        if len(policies) != len(weights):
            raise ValueError("one weight per policy required")
        if not policies:
            raise ValueError("mixture of zero policies")
        weights_arr = np.asarray(weights, dtype=float)
        if (weights_arr < 0).any() or not np.isclose(weights_arr.sum(), 1.0):
            raise ValueError("weights must be a probability vector")
        self.policies = list(policies)
        self.weights = weights_arr
        self.name = name

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        out = np.zeros(len(actions))
        for policy, weight in zip(self.policies, self.weights):
            out += weight * policy.distribution(context, actions)
        return out


class LinearThresholdPolicy(Policy):
    """Deterministic policy from a linear score over context features.

    Picks ``argmax_a  w_a · φ(x)`` where ``φ`` selects named features.
    A family of these (random weight draws) forms the "linear vectors"
    policy template the paper mentions; :class:`PolicyClass` enumerates
    them for offline optimization.
    """

    def __init__(
        self,
        weights: np.ndarray,
        feature_names: Sequence[str],
        name: str = "linear",
    ) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2:
            raise ValueError("weights must be (n_actions, n_features)")
        if weights.shape[1] != len(feature_names) + 1:
            raise ValueError(
                "weights need one column per feature plus a bias column"
            )
        self.weights = weights
        self.feature_names = list(feature_names)
        self.name = name

    def _phi(self, context: Context) -> np.ndarray:
        values = [float(context.get(f, 0.0)) for f in self.feature_names]
        return np.array(values + [1.0])

    def distribution(self, context: Context, actions: Sequence[int]) -> np.ndarray:
        phi = self._phi(context)
        scores = np.array([self.weights[a] @ phi for a in actions])
        return _point_mass(actions, actions[int(np.argmax(scores))])


class PolicyClass:
    """An enumerable class Π of candidate policies.

    Offline optimization in §4 searches a class of size up to
    ``|Π| = 10^6``; this container supports that search and the Eq. 1
    union bound over its members.
    """

    def __init__(self, policies: Sequence[Policy], name: str = "policy-class") -> None:
        if not policies:
            raise ValueError("empty policy class")
        self.policies = list(policies)
        self.name = name

    def __len__(self) -> int:
        return len(self.policies)

    def __iter__(self):
        return iter(self.policies)

    def __getitem__(self, index: int) -> Policy:
        return self.policies[index]

    @classmethod
    def random_linear(
        cls,
        n_policies: int,
        n_actions: int,
        feature_names: Sequence[str],
        rng: np.random.Generator,
        scale: float = 1.0,
    ) -> "PolicyClass":
        """A class of random linear-threshold policies (a dense sample
        of the 'linear vectors' template)."""
        policies: list[Policy] = []
        for index in range(n_policies):
            weights = rng.normal(0.0, scale, size=(n_actions, len(feature_names) + 1))
            policies.append(
                LinearThresholdPolicy(weights, feature_names, name=f"linear-{index}")
            )
        return cls(policies, name=f"random-linear[{n_policies}]")

    @classmethod
    def all_constant(cls, n_actions: int) -> "PolicyClass":
        """The class of all single-action policies — the A/B-test analogue."""
        return cls(
            [ConstantPolicy(a) for a in range(n_actions)],
            name=f"constants[{n_actions}]",
        )
