"""Streaming (incremental) off-policy evaluation.

Footnote 1 of the paper: "'Offline' does not mean 'batch': off-policy
evaluation may incrementally update; it just does not intervene in a
live (online) system."  This module provides that incremental mode:
estimators that consume exploration tuples one at a time in O(1)
memory, so a tail of production logs can be followed continuously.

:class:`StreamingIPS` maintains, per candidate policy, the running IPS
mean, Welford variance, match count, and a normal-approximation CI.
:class:`StreamingEvaluationBoard` fans one stream out to many
candidates — the "evaluate K policies from one log" mode, live.
:class:`ValidatedInteractionStream` guards the front of that pipe: it
validates raw JSONL lines (or parsed records) on the fly, quarantining
defects instead of crashing, so a tail of messy production logs can be
followed indefinitely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

from repro.core.estimators.reductions import Moments
from repro.core.policies import Policy
from repro.core.types import ActionSpace, Interaction
from repro.core.validation import (
    Quarantine,
    RecordValidator,
    check_mode,
    validated_interactions,
)


@dataclass(frozen=True)
class StreamingSnapshot:
    """Point-in-time state of one streaming estimate."""

    policy_name: str
    n: int
    value: float
    std_error: float
    match_rate: float

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI at ``z`` standard errors."""
        return (self.value - z * self.std_error,
                self.value + z * self.std_error)


class StreamingIPS:
    """One candidate's running IPS estimate over an exploration stream.

    A thin wrapper over the reduction kernel's
    :class:`~repro.core.estimators.reductions.Moments` accumulator:
    ``update`` is one Welford ``push`` of the IPS term, so the standard
    error is available at every step without storing the stream, and
    two streams that consumed disjoint tails can be combined with
    :meth:`merge_in` (Chan's parallel-variance merge — the same
    associativity the chunked backend relies on).
    """

    def __init__(self, policy: Policy, action_space: ActionSpace) -> None:
        self.policy = policy
        self.action_space = action_space
        self._moments = Moments()
        self._matches = 0

    @property
    def n(self) -> int:
        """Number of exploration tuples consumed."""
        return self._moments.n

    def update(self, interaction: Interaction) -> None:
        """Fold one exploration tuple into the running estimate."""
        actions = self.action_space.actions(interaction.context)
        pi_prob = self.policy.probability_of(
            interaction.context, actions, interaction.action
        )
        weight = pi_prob / interaction.propensity
        if weight > 0:
            self._matches += 1
        self._moments.push(weight * interaction.reward)

    def update_all(self, interactions: Iterable[Interaction]) -> None:
        """Consume a batch (convenience; still O(1) memory)."""
        for interaction in interactions:
            self.update(interaction)

    def merge_in(self, other: "StreamingIPS") -> None:
        """Absorb another stream's state (e.g. a partitioned tail)."""
        if other.policy.name != self.policy.name:
            raise ValueError(
                "cannot merge streams tracking different policies "
                f"({self.policy.name!r} vs {other.policy.name!r})"
            )
        self._moments.merge_in(other._moments)
        self._matches += other._matches

    def snapshot(self) -> StreamingSnapshot:
        """The current estimate; callable at any point in the stream."""
        if self._moments.n == 0:
            raise ValueError("no data consumed yet")
        return StreamingSnapshot(
            policy_name=self.policy.name,
            n=self._moments.n,
            value=self._moments.mean,
            std_error=self._moments.std_error(),
            match_rate=self._matches / self._moments.n,
        )


class ValidatedInteractionStream:
    """Validate a live stream of raw records into clean Interactions.

    Wraps :func:`repro.core.validation.validated_interactions` with an
    owned :class:`~repro.core.validation.Quarantine`, so streaming
    consumers (:class:`StreamingIPS`, :class:`StreamingEvaluationBoard`)
    read clean tuples and can inspect what was set aside at any point —
    still O(1) memory apart from the quarantine's bounded examples::

        stream = ValidatedInteractionStream(tail_f(path), mode="quarantine")
        board.update_all(stream)
        print(stream.quarantine.summary_text())

    ``source`` may mix raw JSONL strings and parsed dicts.  In strict
    mode the first defect raises; ``quarantine``/``repair`` keep going.
    Pass an explicit ``quarantine`` to aggregate across streams or to
    opt out of metrics mirroring
    (``Quarantine(record_metrics=False)`` — the chunked engine's
    discovery pass does, so two-pass runs count each defect once).
    """

    def __init__(
        self,
        source: Iterable[Union[str, Mapping]],
        mode: str = "quarantine",
        validator: Optional[RecordValidator] = None,
        source_name: str = "<stream>",
        quarantine: Optional[Quarantine] = None,
    ) -> None:
        check_mode(mode)
        self.mode = mode
        self.quarantine = quarantine if quarantine is not None else Quarantine()
        self.n_accepted = 0
        self._iterator = validated_interactions(
            source,
            mode=mode,
            validator=validator,
            quarantine=self.quarantine,
            source_name=source_name,
        )

    def __iter__(self) -> Iterator[Interaction]:
        for interaction in self._iterator:
            self.n_accepted += 1
            yield interaction


class StreamingEvaluationBoard:
    """Evaluate many candidates from one live exploration stream.

    The data-reuse property of §4 operationalized: a single pass over
    the log advances every candidate's estimate simultaneously.
    """

    def __init__(
        self, policies: Sequence[Policy], action_space: ActionSpace
    ) -> None:
        if not policies:
            raise ValueError("need at least one candidate")
        self._streams = [StreamingIPS(p, action_space) for p in policies]

    def update(self, interaction: Interaction) -> None:
        """Feed one tuple to every candidate."""
        for stream in self._streams:
            stream.update(interaction)

    def update_all(self, interactions: Iterable[Interaction]) -> None:
        """Feed a batch to every candidate."""
        for interaction in interactions:
            self.update(interaction)

    def merge_in(self, other: "StreamingEvaluationBoard") -> None:
        """Absorb another board that consumed a disjoint stream slice."""
        if len(other._streams) != len(self._streams):
            raise ValueError("boards track different candidate sets")
        for mine, theirs in zip(self._streams, other._streams):
            mine.merge_in(theirs)

    def snapshots(self) -> list[StreamingSnapshot]:
        """Current estimates for every candidate."""
        return [stream.snapshot() for stream in self._streams]

    def leader(self, maximize: bool = True) -> StreamingSnapshot:
        """The currently best-looking candidate."""
        snaps = self.snapshots()
        key = (lambda s: s.value) if maximize else (lambda s: -s.value)
        return max(snaps, key=key)

    def resolved(self, z: float = 1.96, maximize: bool = True) -> bool:
        """Whether the leader's CI is separated from every other
        candidate's CI — the streaming stopping rule."""
        snaps = self.snapshots()
        if len(snaps) == 1:
            return True
        lead = self.leader(maximize)
        for snap in snaps:
            if snap.policy_name == lead.policy_name:
                continue
            lead_lo, lead_hi = lead.confidence_interval(z)
            other_lo, other_hi = snap.confidence_interval(z)
            if maximize and lead_lo <= other_hi:
                return False
            if not maximize and lead_hi >= other_lo:
                return False
        return True
