"""Contextual-bandit learners.

Two complementary routes to a good policy from exploration data:

1. **Reduction to regression** (:class:`EpsilonGreedyLearner`,
   :class:`EpochGreedyLearner`): learn per-action reward predictors
   with importance weighting and act greedily on them.  This is how
   the paper's CB policy for Table 2 "learns a good estimator of each
   server's latency based on context, and greedily pick[s] the lowest
   latency".

2. **Policy-class search** (:class:`PolicyClassOptimizer`): evaluate an
   enumerable class Π with an off-policy estimator and return the best
   member, realizing the "optimize over a large class of policies"
   promise of §1 with the Eq. 1 simultaneous guarantee.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from repro.core.estimators.base import OffPolicyEstimator
from repro.core.estimators.ips import IPSEstimator
from repro.core.features import Featurizer
from repro.core.learners.regression import SGDRegressor
from repro.core.policies import (
    EpsilonGreedyPolicy,
    GreedyRegressorPolicy,
    Policy,
    PolicyClass,
)
from repro.core.types import Context, Dataset, Interaction


class CBLearner(ABC):
    """Interface: consume exploration data, produce a policy."""

    @abstractmethod
    def observe(self, interaction: Interaction) -> None:
        """Incorporate one exploration datapoint."""

    @abstractmethod
    def policy(self) -> Policy:
        """The current learned (deterministic, greedy) policy."""

    def observe_all(self, dataset: Dataset) -> None:
        """Stream an entire dataset through :meth:`observe` in order."""
        for interaction in dataset:
            self.observe(interaction)

    def exploration_policy(self, epsilon: float) -> Policy:
        """The learned policy wrapped for deployment with ε exploration,
        so that its own logs remain harvestable."""
        return EpsilonGreedyPolicy(self.policy(), epsilon)


class EpsilonGreedyLearner(CBLearner):
    """Per-action SGD reward models + greedy action selection.

    Each observation updates the model of the *taken* action with
    importance weight ``min(1/p, clip)``.  The learned policy predicts
    the reward of every action and picks the best (``maximize=False``
    picks the smallest — e.g. latency, downtime).
    """

    def __init__(
        self,
        n_actions: int,
        featurizer: Optional[Featurizer] = None,
        learning_rate: float = 0.1,
        maximize: bool = True,
        importance_clip: float = 100.0,
        name: str = "cb-eps-greedy",
    ) -> None:
        if n_actions <= 0:
            raise ValueError("n_actions must be positive")
        if importance_clip <= 0:
            raise ValueError("importance_clip must be positive")
        self.n_actions = n_actions
        self.featurizer = featurizer or Featurizer(n_dims=32)
        self.maximize = maximize
        self.importance_clip = importance_clip
        self.name = name
        self._models = [
            SGDRegressor(self.featurizer.n_dims, learning_rate)
            for _ in range(n_actions)
        ]
        self.observed = 0

    def observe(self, interaction: Interaction) -> None:
        if not 0 <= interaction.action < self.n_actions:
            raise ValueError(
                f"action {interaction.action} outside [0, {self.n_actions})"
            )
        x = self.featurizer.vector(interaction.context)
        importance = min(1.0 / interaction.propensity, self.importance_clip)
        self._models[interaction.action].update(x, interaction.reward, importance)
        self.observed += 1

    def predict(self, context: Context, action: int) -> float:
        """Current predicted reward of ``action`` in ``context``."""
        return self._models[action].predict(self.featurizer.vector(context))

    def policy(self) -> Policy:
        return GreedyRegressorPolicy(
            self.predict, maximize=self.maximize, name=self.name
        )


class EpochGreedyLearner(CBLearner):
    """Epoch-greedy (Langford & Zhang 2007), simplified.

    Alternates between exploration epochs (the learner would act
    uniformly) and exploitation epochs; *all* observations update the
    models, but the schedule exposes the explore/exploit trade-off and
    gives a principled propensity to log during deployment.  Epoch
    lengths follow the classic ``t^{2/3}`` split: by time ``t``, about
    ``t^{2/3}`` rounds are exploration.
    """

    def __init__(
        self,
        n_actions: int,
        featurizer: Optional[Featurizer] = None,
        learning_rate: float = 0.1,
        maximize: bool = True,
        name: str = "epoch-greedy",
    ) -> None:
        self._inner = EpsilonGreedyLearner(
            n_actions, featurizer, learning_rate, maximize, name=name
        )
        self.name = name
        self._round = 0

    @property
    def observed(self) -> int:
        """Number of exploration datapoints consumed."""
        return self._inner.observed

    def exploring_now(self) -> bool:
        """Whether the current round is an exploration round."""
        t = max(self._round, 1)
        explore_budget = int(np.ceil(t ** (2.0 / 3.0)))
        return self._round < explore_budget

    def observe(self, interaction: Interaction) -> None:
        self._inner.observe(interaction)
        self._round += 1

    def predict(self, context: Context, action: int) -> float:
        """Current predicted reward of ``action`` in ``context``."""
        return self._inner.predict(context, action)

    def policy(self) -> Policy:
        return self._inner.policy()

    def deployment_propensity(self, n_actions: int) -> float:
        """Minimum propensity any action receives if deployed now."""
        if self.exploring_now():
            return 1.0 / n_actions
        return 0.0


class BaggingLearner(CBLearner):
    """Bootstrap-bagged CB learning (VW's ``--bag`` exploration).

    Maintains ``n_bags`` independent per-action regressor sets; each
    observation updates every bag with a Poisson(1)-distributed
    multiplicity (the online bootstrap).  The bag disagreement yields a
    *stochastic* deployment policy: the probability of an action is the
    fraction of bags whose greedy choice it is — Thompson-style
    exploration whose propensities are exactly computable, so deployed
    logs remain harvestable without an ε floor.
    """

    def __init__(
        self,
        n_actions: int,
        n_bags: int = 8,
        featurizer: Optional[Featurizer] = None,
        learning_rate: float = 0.1,
        maximize: bool = True,
        importance_clip: float = 100.0,
        seed: int = 0,
        name: str = "cb-bag",
    ) -> None:
        if n_bags <= 1:
            raise ValueError("need at least two bags to disagree")
        self.n_actions = n_actions
        self.n_bags = n_bags
        self.maximize = maximize
        self.name = name
        self._members = [
            EpsilonGreedyLearner(
                n_actions,
                featurizer=featurizer,
                learning_rate=learning_rate,
                maximize=maximize,
                importance_clip=importance_clip,
                name=f"{name}[{index}]",
            )
            for index in range(n_bags)
        ]
        self._rng = np.random.default_rng(seed)
        self.observed = 0

    def observe(self, interaction: Interaction) -> None:
        for member in self._members:
            for _ in range(int(self._rng.poisson(1.0))):
                member.observe(interaction)
        self.observed += 1

    def votes(self, context: Context, actions) -> np.ndarray:
        """Per-action fraction of bags voting for it."""
        counts = np.zeros(len(actions))
        for member in self._members:
            choice = member.policy().action(context, actions)
            counts[list(actions).index(choice)] += 1.0
        return counts / counts.sum()

    def policy(self) -> Policy:
        """The deterministic majority-vote policy."""
        learner = self

        class _Majority(Policy):
            name = learner.name

            def distribution(self, context: Context, actions) -> np.ndarray:
                votes = learner.votes(context, actions)
                probs = np.zeros(len(actions))
                probs[int(np.argmax(votes))] = 1.0
                return probs

        return _Majority()

    def stochastic_policy(self) -> Policy:
        """The bag-vote distribution itself — the exploration policy to
        *deploy*, with exactly-known propensities."""
        learner = self

        class _BagVote(Policy):
            name = f"{learner.name}-stochastic"

            def distribution(self, context: Context, actions) -> np.ndarray:
                return learner.votes(context, actions)

        return _BagVote()


class PerActionFeaturesLearner(CBLearner):
    """CB learning with action-dependent features (VW's ``--cb_adf``).

    When actions are *things with features* rather than fixed slots —
    eviction candidates with (idle, frequency, size), servers with
    per-server health stats — a single shared model over the action's
    feature block generalizes across actions and action-set sizes.
    ``features_of(context, action)`` extracts the block; one regressor
    scores all actions.

    This is the right reduction for the caching scenario, where the
    action set is a fresh random sample of resident keys every time.
    """

    def __init__(
        self,
        features_of,
        featurizer: Optional[Featurizer] = None,
        learning_rate: float = 0.1,
        maximize: bool = True,
        importance_clip: float = 100.0,
        name: str = "cb-adf",
    ) -> None:
        if importance_clip <= 0:
            raise ValueError("importance_clip must be positive")
        self.features_of = features_of
        self.featurizer = featurizer or Featurizer(n_dims=32)
        self.maximize = maximize
        self.importance_clip = importance_clip
        self.name = name
        self._model = SGDRegressor(self.featurizer.n_dims, learning_rate)
        self.observed = 0

    def observe(self, interaction: Interaction) -> None:
        features = self.features_of(interaction.context, interaction.action)
        x = self.featurizer.vector(features)
        importance = min(1.0 / interaction.propensity, self.importance_clip)
        self._model.update(x, interaction.reward, importance)
        self.observed += 1

    def predict(self, context: Context, action: int) -> float:
        """Predicted reward of taking ``action`` in ``context``."""
        features = self.features_of(context, action)
        return self._model.predict(self.featurizer.vector(features))

    def policy(self) -> Policy:
        return GreedyRegressorPolicy(
            self.predict, maximize=self.maximize, name=self.name
        )


class PolicyClassOptimizer:
    """Offline optimization over an enumerable policy class.

    Evaluates every member of Π with the supplied off-policy estimator
    and returns the best, together with the full score table (useful
    for the Eq. 1 simultaneous-evaluation experiments).  The paper
    notes production systems use smarter search [7]; enumeration is
    exact and fine at the class sizes we simulate.

    With a vectorized estimator (the default), the search runs against
    the dataset's shared :class:`~repro.core.columns.DatasetColumns`
    view: contexts are featurized and eligible-action sets resolved
    once for the whole class, so each additional candidate costs only
    its own ``(N, K)`` probability matrix and a few reductions.
    """

    def __init__(
        self,
        estimator: Optional[OffPolicyEstimator] = None,
        maximize: bool = True,
    ) -> None:
        self.estimator = estimator or IPSEstimator()
        self.maximize = maximize

    def score_all(
        self, policy_class: PolicyClass, dataset: Dataset
    ) -> list[tuple[Policy, float]]:
        """Evaluate every policy; returns ``(policy, value)`` pairs."""
        if (
            len(dataset) > 0
            and self.estimator.resolved_backend() == "vectorized"
        ):
            # Materialize the columnar view up front so the one-time
            # featurization pass is amortized across all |Π| members.
            dataset.columns()
        scored = []
        for policy in policy_class:
            result = self.estimator.estimate(policy, dataset)
            scored.append((policy, result.value))
        return scored

    def optimize(
        self, policy_class: PolicyClass, dataset: Dataset
    ) -> tuple[Policy, float]:
        """The best policy in the class and its estimated value."""
        scored = self.score_all(policy_class, dataset)
        values = [v for _, v in scored]
        best = int(np.nanargmax(values)) if self.maximize else int(np.nanargmin(values))
        return scored[best]
