"""Policy learning (the *optimize* half of step 3).

- :mod:`~repro.core.learners.regression` — importance-weighted linear
  regression oracles (batch ridge and online SGD), the workhorse the
  CB learners reduce to.
- :mod:`~repro.core.learners.cb` — contextual-bandit learners:
  epsilon-greedy with a regression oracle, epoch-greedy, and brute
  policy-class optimization via IPS.
- :mod:`~repro.core.learners.supervised` — the full-feedback
  (supervised) baseline used as ground truth in Figs. 3–4.
"""

from repro.core.learners.regression import RidgeRegressor, SGDRegressor
from repro.core.learners.cb import (
    BaggingLearner,
    CBLearner,
    EpochGreedyLearner,
    EpsilonGreedyLearner,
    PerActionFeaturesLearner,
    PolicyClassOptimizer,
)
from repro.core.learners.supervised import SupervisedTrainer

__all__ = [
    "RidgeRegressor",
    "SGDRegressor",
    "BaggingLearner",
    "CBLearner",
    "EpsilonGreedyLearner",
    "EpochGreedyLearner",
    "PerActionFeaturesLearner",
    "PolicyClassOptimizer",
    "SupervisedTrainer",
]
