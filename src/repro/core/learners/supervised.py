"""Full-feedback (supervised) baseline trainer.

The machine-health logs reveal the reward of *every* wait time
("similar to a supervised learning dataset", §3), which yields an
idealized baseline: fit each action's reward model on every
interaction, not just those where the action was taken.  Figs. 3–4
measure CB learning and evaluation against this ceiling.  As §4 notes,
the ceiling is not deployable long-term — once integrated, new logs
would be partial-feedback again.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.features import Featurizer
from repro.core.learners.regression import RidgeRegressor
from repro.core.policies import GreedyRegressorPolicy, Policy
from repro.core.types import Context, Dataset


class SupervisedTrainer:
    """Trains per-action ridge models from full-feedback interactions.

    Every interaction must carry ``full_rewards`` (one reward per
    action).  The resulting greedy policy is the paper's "policy
    trained using supervised learning on the full feedback dataset".
    """

    def __init__(
        self,
        n_actions: int,
        featurizer: Optional[Featurizer] = None,
        l2: float = 1.0,
        maximize: bool = True,
        name: str = "supervised-full-feedback",
    ) -> None:
        if n_actions <= 0:
            raise ValueError("n_actions must be positive")
        self.n_actions = n_actions
        self.featurizer = featurizer or Featurizer(n_dims=32)
        self.l2 = l2
        self.maximize = maximize
        self.name = name
        self._models: list[RidgeRegressor] = []

    def fit(self, dataset: Dataset) -> "SupervisedTrainer":
        """Fit one model per action using every interaction's reward."""
        if len(dataset) == 0:
            raise ValueError("cannot train on an empty dataset")
        X = np.stack([self.featurizer.vector(i.context) for i in dataset])
        self._models = []
        for action in range(self.n_actions):
            y = []
            for interaction in dataset:
                if interaction.full_rewards is None:
                    raise ValueError(
                        "supervised training requires full_rewards on every "
                        "interaction (full-feedback data)"
                    )
                if len(interaction.full_rewards) != self.n_actions:
                    raise ValueError(
                        f"interaction has {len(interaction.full_rewards)} "
                        f"full rewards, expected {self.n_actions}"
                    )
                y.append(interaction.full_rewards[action])
            model = RidgeRegressor(self.featurizer.n_dims, self.l2)
            model.fit(X, np.asarray(y))
            self._models.append(model)
        return self

    def predict(self, context: Context, action: int) -> float:
        """Predicted reward of ``action`` in ``context``."""
        if not self._models:
            raise RuntimeError("trainer must be fitted before predicting")
        return self._models[action].predict(self.featurizer.vector(context))

    def policy(self) -> Policy:
        """The greedy policy over the fitted models."""
        if not self._models:
            raise RuntimeError("trainer must be fitted before extracting a policy")
        return GreedyRegressorPolicy(
            self.predict, maximize=self.maximize, name=self.name
        )

    def average_reward(self, dataset: Dataset) -> float:
        """Ground-truth average reward of the greedy policy on
        full-feedback data (no estimation involved — just lookup)."""
        if len(dataset) == 0:
            raise ValueError("empty dataset")
        policy = self.policy()
        total = 0.0
        for interaction in dataset:
            if interaction.full_rewards is None:
                raise ValueError("ground truth requires full_rewards")
            actions = list(range(self.n_actions))
            chosen = policy.action(interaction.context, actions)
            total += interaction.full_rewards[chosen]
        return total / len(dataset)
