"""Importance-weighted regression oracles.

Contextual-bandit learning reduces to weighted regression: each
partial-feedback observation ``(x, a, r)`` with propensity ``p``
becomes a regression example for action ``a`` with importance weight
``1/p``, which de-biases the action distribution of the logging policy
(the same trick IPS uses for evaluation).  Two oracles are provided:

- :class:`RidgeRegressor` — closed-form batch ridge with sample
  weights, used for offline optimization.
- :class:`SGDRegressor` — online stochastic gradient descent in the
  style of Vowpal Wabbit, used for the incremental learning curves of
  Fig. 4.
"""

from __future__ import annotations

import numpy as np


class RidgeRegressor:
    """Weighted ridge regression ``min_w Σ c_i (w·x_i − y_i)² + λ|w|²``."""

    def __init__(self, n_dims: int, l2: float = 1.0) -> None:
        if n_dims <= 0:
            raise ValueError("n_dims must be positive")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.n_dims = n_dims
        self.l2 = l2
        self.weights = np.zeros(n_dims)
        self._fitted = False

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray = None,
    ) -> "RidgeRegressor":
        """Closed-form weighted ridge fit."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_dims:
            raise ValueError(f"X must be (n, {self.n_dims}), got {X.shape}")
        if len(y) != len(X):
            raise ValueError("X and y length mismatch")
        if sample_weight is None:
            sample_weight = np.ones(len(X))
        sample_weight = np.asarray(sample_weight, dtype=float)
        if (sample_weight < 0).any():
            raise ValueError("sample weights must be non-negative")
        weighted_X = X * sample_weight[:, None]
        gram = weighted_X.T @ X + self.l2 * np.eye(self.n_dims)
        self.weights = np.linalg.solve(gram, weighted_X.T @ y)
        self._fitted = True
        return self

    def predict(self, x: np.ndarray) -> float:
        """Predict for a single feature vector."""
        return float(np.asarray(x, dtype=float) @ self.weights)

    def predict_many(self, X: np.ndarray) -> np.ndarray:
        """Predict for a matrix of feature vectors."""
        return np.asarray(X, dtype=float) @ self.weights


class SGDRegressor:
    """Online least-squares SGD with importance weights.

    Mimics the essentials of Vowpal Wabbit's default learner: squared
    loss, per-example importance weights, inverse-sqrt learning-rate
    decay, and optional L2 shrinkage.  Updates are O(dims) so millions
    of log lines stream through cheaply.
    """

    def __init__(
        self,
        n_dims: int,
        learning_rate: float = 0.1,
        l2: float = 0.0,
        decay: bool = True,
    ) -> None:
        if n_dims <= 0:
            raise ValueError("n_dims must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.n_dims = n_dims
        self.learning_rate = learning_rate
        self.l2 = l2
        self.decay = decay
        self.weights = np.zeros(n_dims)
        self.updates = 0

    def _rate(self) -> float:
        if not self.decay:
            return self.learning_rate
        return self.learning_rate / np.sqrt(1.0 + self.updates)

    def update(self, x: np.ndarray, y: float, importance: float = 1.0) -> float:
        """One implicit SGD step; returns the pre-update squared error.

        ``importance`` multiplies the loss — pass ``1/p`` to de-bias
        exploration data.  The step uses the *implicit* (proximal) form
        for squared loss, ``Δw = −η·imp·err·x / (1 + η·imp·|x|²)``,
        which is unconditionally stable: no learning rate or importance
        weight can make the iterate overshoot the example's target
        (Karampatziakis & Langford 2011, the trick behind VW's
        importance-weight handling).
        """
        if importance < 0:
            raise ValueError("importance must be non-negative")
        x = np.asarray(x, dtype=float)
        prediction = float(x @ self.weights)
        error = prediction - y
        rate = self._rate()
        denom = 1.0 + rate * importance * float(x @ x)
        self.weights -= (rate * importance * error / denom) * x
        if self.l2 > 0:
            self.weights *= 1.0 / (1.0 + rate * self.l2)
        self.updates += 1
        return error**2

    def predict(self, x: np.ndarray) -> float:
        """Predict for a single feature vector."""
        return float(np.asarray(x, dtype=float) @ self.weights)

    def predict_many(self, X: np.ndarray) -> np.ndarray:
        """Predict for a matrix of feature vectors."""
        return np.asarray(X, dtype=float) @ self.weights

    def clone_architecture(self) -> "SGDRegressor":
        """A fresh regressor with identical hyperparameters, zero weights."""
        return SGDRegressor(self.n_dims, self.learning_rate, self.l2, self.decay)
