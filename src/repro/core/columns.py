"""Columnar dataset representation for batch off-policy evaluation.

The scalar estimators walk a :class:`~repro.core.types.Dataset` one
:class:`~repro.core.types.Interaction` at a time, re-resolving eligible
actions and re-featurizing the context for every policy they score.
That per-row work is identical across the hundreds of candidate
policies a class search evaluates — §4's "simultaneous evaluation"
promise makes it the hottest path in the system.

:class:`DatasetColumns` hoists everything that depends only on the
*log* out of the per-policy loop:

- ``actions``, ``rewards``, ``propensities`` as flat NumPy arrays;
- the per-row eligible-action sets, resolved once into an ``(N, K)``
  boolean mask (replicating
  :func:`repro.core.estimators.base.eligible_actions_fn` semantics);
- memoized feature matrices — both the named-feature layout used by
  linear policies and the hashed layout used by reward models — so
  featurization cost is paid once per dataset, not once per policy.

Policies consume it through
:meth:`~repro.core.policies.Policy.probabilities_batch`, which returns
the full ``(N, K)`` probability matrix; estimators then reduce that
matrix with a handful of array operations.  Columns are cached on the
dataset (see :meth:`repro.core.types.Dataset.columns`) and invalidated
when the dataset is mutated, so every estimator and every member of a
policy class shares one featurization pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Sequence

import numpy as np

from repro.core.types import ActionSpace, Context, Dataset

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.features import Featurizer
    from repro.core.policies import Policy


class DatasetColumns:
    """Immutable columnar view of a dataset, shared across evaluations.

    ``n_actions`` (K) is the action-space size when the dataset carries
    one, else ``max(logged action) + 1`` — the best reconstruction
    available for scavenged logs.  ``eligible_mask[t, a]`` is whether
    action ``a`` was eligible at row ``t``; probabilities of ineligible
    actions are exactly zero in every batch matrix.
    """

    def __init__(self, dataset: Dataset) -> None:
        interactions = list(dataset)
        n = len(interactions)
        self.n = n
        self.contexts: tuple[Context, ...] = tuple(
            i.context for i in interactions
        )
        self.actions = np.fromiter(
            (i.action for i in interactions), dtype=np.int64, count=n
        )
        self.rewards = np.fromiter(
            (i.reward for i in interactions), dtype=np.float64, count=n
        )
        self.propensities = np.fromiter(
            (i.propensity for i in interactions), dtype=np.float64, count=n
        )

        space = dataset.action_space
        if space is not None:
            self.n_actions = space.n_actions
        elif n > 0:
            self.n_actions = int(self.actions.max()) + 1
        else:
            self.n_actions = 1
        k = self.n_actions

        # Per-row eligible actions, mirroring eligible_actions_fn: the
        # action space (possibly context-restricted) when present, else
        # the set of actions observed anywhere in the log.
        if space is not None and space.restricted:
            self.eligible_lists: tuple[tuple[int, ...], ...] = tuple(
                tuple(space.actions(context)) for context in self.contexts
            )
            mask = np.zeros((n, k), dtype=bool)
            for row, eligible in enumerate(self.eligible_lists):
                mask[row, list(eligible)] = True
            self.eligible_mask = mask
            self.uniform_eligibility = False
        else:
            if space is not None:
                shared: tuple[int, ...] = tuple(range(k))
            elif n > 0:
                shared = tuple(sorted(set(self.actions.tolist())))
            else:
                shared = (0,)
            self.eligible_lists = (shared,) * n
            mask = np.zeros((n, k), dtype=bool)
            mask[:, list(shared)] = True
            self.eligible_mask = mask
            self.uniform_eligibility = True

        self.eligible_counts = self.eligible_mask.sum(axis=1).astype(float)
        #: Whether every row's eligible list is sorted ascending.  When
        #: true, a masked argmax (lowest-id tie-break) reproduces the
        #: scalar path's first-in-list tie-break exactly; deterministic
        #: batch policies fall back to the loop otherwise.
        self.canonical_order = all(
            all(a < b for a, b in zip(row, row[1:]))
            for row in set(self.eligible_lists)
        )

        self._row_index = np.arange(n)
        self._feature_matrices: dict[tuple[str, ...], np.ndarray] = {}
        self._hashed_matrices: dict[int, tuple[object, np.ndarray]] = {}
        self._observed_actions: Optional[np.ndarray] = None
        self._identity_error: Optional[float] = None

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "DatasetColumns":
        """Build (without caching) the columnar view of ``dataset``."""
        return cls(dataset)

    # -- memoized featurizations -------------------------------------------

    def feature_matrix(self, feature_names: Sequence[str]) -> np.ndarray:
        """``(N, F+1)`` matrix of named features plus a bias column.

        Matches :class:`~repro.core.policies.LinearThresholdPolicy`'s
        ``φ(x)`` layout; memoized per feature-name tuple so a class of
        |Π| linear policies sharing a template featurizes once.
        """
        key = tuple(feature_names)
        cached = self._feature_matrices.get(key)
        if cached is None:
            cached = np.empty((self.n, len(key) + 1))
            for row, context in enumerate(self.contexts):
                for col, name in enumerate(key):
                    cached[row, col] = float(context.get(name, 0.0))
            cached[:, -1] = 1.0
            self._feature_matrices[key] = cached
        return cached

    def hashed_matrix(self, featurizer: "Featurizer") -> np.ndarray:
        """``(N, n_dims)`` hashed context matrix, memoized per featurizer."""
        entry = self._hashed_matrices.get(id(featurizer))
        if entry is None or entry[0] is not featurizer:
            matrix = featurizer.matrix(list(self.contexts))
            entry = (featurizer, matrix)
            self._hashed_matrices[id(featurizer)] = entry
        return entry[1]

    # -- policy-independent diagnostic inputs --------------------------------

    def observed_actions(self) -> np.ndarray:
        """Sorted unique logged action ids, computed once per dataset.

        The logged *support*: any candidate-policy mass outside this set
        is invisible to importance-weighted estimators (see
        :mod:`repro.core.diagnostics`).
        """
        if self._observed_actions is None:
            self._observed_actions = np.unique(self.actions)
        return self._observed_actions

    def propensity_identity_error(self) -> float:
        """Cached per-action A1 identity deviation of the *log* itself.

        Depends only on the logged (action, propensity) pairs, so a
        class search over hundreds of candidates pays for it once.
        """
        if self._identity_error is None:
            from repro.core.diagnostics import propensity_identity_error

            self._identity_error = propensity_identity_error(
                self.actions, self.propensities
            )
        return self._identity_error

    # -- batch building blocks ---------------------------------------------

    def uniform_matrix(self) -> np.ndarray:
        """``(N, K)`` uniform distribution over each row's eligible set."""
        out = np.zeros((self.n, self.n_actions))
        np.divide(
            1.0,
            self.eligible_counts[:, None],
            out=out,
            where=self.eligible_mask,
        )
        return out

    def point_mass_matrix(self, chosen: np.ndarray) -> np.ndarray:
        """``(N, K)`` matrix putting probability 1 on ``chosen[t]``."""
        chosen = np.asarray(chosen, dtype=np.int64)
        if chosen.shape != (self.n,):
            raise ValueError(f"chosen must have shape ({self.n},)")
        out = np.zeros((self.n, self.n_actions))
        out[self._row_index, chosen] = 1.0
        return out

    def masked_argbest(self, scores: np.ndarray, maximize: bool = True) -> np.ndarray:
        """Per-row best *eligible* action id for a ``(N, K)`` score matrix.

        Ties break toward the lowest action id, matching the scalar
        path when eligible lists are in canonical (ascending) order.
        """
        if scores.shape != (self.n, self.n_actions):
            raise ValueError(
                f"scores must have shape ({self.n}, {self.n_actions})"
            )
        guarded = np.where(
            self.eligible_mask, scores if maximize else -scores, -np.inf
        )
        return np.argmax(guarded, axis=1)

    def probability_of_logged(self, matrix: np.ndarray) -> np.ndarray:
        """Extract ``π(a_t | x_t)`` from a batch probability matrix."""
        return matrix[self._row_index, self.actions]

    def logged_probabilities(self, policy: "Policy") -> np.ndarray:
        """``π(a_t | x_t)`` for every row, via the policy's batch API."""
        return self.probability_of_logged(policy.probabilities_batch(self))

    def __repr__(self) -> str:
        return f"DatasetColumns(n={self.n}, k={self.n_actions})"


class FixedEligibility:
    """Picklable eligibility callback returning one fixed action tuple.

    Used to pin a spaceless log's globally observed actions onto chunk
    datasets (a lambda would not survive the trip to worker processes).
    """

    def __init__(self, actions: Sequence[int]) -> None:
        self.actions = tuple(int(a) for a in actions)

    def __call__(self, context: Context) -> tuple[int, ...]:
        return self.actions


def pinned_action_space(
    dataset: Optional[Dataset] = None,
    *,
    space: Optional[ActionSpace] = None,
    observed: Optional[Sequence[int]] = None,
) -> Optional[ActionSpace]:
    """An action space that makes chunk views match the whole-log view.

    A chunk of a dataset *with* an action space already sees the right
    ``n_actions`` and eligibility — the space passes through unchanged.
    A chunk of a *spaceless* log would reconstruct both from the chunk's
    own rows (wrong: a chunk may miss actions the log contains), so we
    pin the global reconstruction — ``max(observed)+1`` actions,
    eligibility fixed to the sorted globally observed set — exactly what
    :class:`DatasetColumns` derives for the whole spaceless log.
    """
    if dataset is not None:
        if dataset.action_space is not None:
            return dataset.action_space
        observed = sorted({i.action for i in dataset})
    elif space is not None:
        return space
    else:
        observed = sorted(set(observed or ()))
    if not observed:
        return None
    return ActionSpace(
        int(max(observed)) + 1, eligibility=FixedEligibility(observed)
    )


def iter_chunk_columns(
    dataset: Dataset, chunk_size: int
) -> Iterator[DatasetColumns]:
    """Yield columnar views of consecutive ``chunk_size`` slices.

    Each chunk carries the pinned action space, so per-chunk eligible
    sets, masks, and ``n_actions`` agree with the whole-log view — the
    invariant the chunked backend's equivalence guarantee rests on.
    Feature matrices are memoized per chunk and released with it.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    space = pinned_action_space(dataset)
    interactions = list(dataset)
    for start in range(0, len(interactions), chunk_size):
        chunk = Dataset(
            interactions[start:start + chunk_size],
            action_space=space,
            reward_range=dataset.reward_range,
        )
        yield chunk.columns()


def loop_probabilities(policy: "Policy", columns: DatasetColumns) -> np.ndarray:
    """Reference ``(N, K)`` probability matrix via per-row dispatch.

    The correct-for-anything fallback behind
    :meth:`~repro.core.policies.Policy.probabilities_batch`: calls
    ``policy.distribution`` once per row and scatters the result into
    the batch layout.  Arbitrary user policies get this for free; the
    built-ins override it with real array code.
    """
    out = np.zeros((columns.n, columns.n_actions))
    for row in range(columns.n):
        eligible = list(columns.eligible_lists[row])
        probs = policy.distribution(columns.contexts[row], eligible)
        out[row, eligible] = probs
    return out
