"""Columnar views for batch off-policy evaluation *and* batch harvesting.

The scalar paths walk one row at a time, re-resolving eligible actions
and re-featurizing the context for every policy they touch.  That
per-row work is identical across the hundreds of candidate policies a
class search evaluates — §4's "simultaneous evaluation" promise makes
it the hottest path in the system — and, symmetrically, identical
across the hundreds of thousands of decisions a harvest-side workload
generator draws.  Both sides share the machinery in this module:

- :class:`ContextColumns` hoists everything that depends only on the
  *decision-time inputs* (contexts + eligibility) out of the per-row
  loop: the ``(N, K)`` boolean eligibility mask, eligible counts, and
  memoized feature matrices (named-feature and hashed layouts).
- :class:`DecisionBatch` is the harvest-side view: a batch of contexts
  about to be *acted on* by :meth:`repro.core.policies.Policy.act_batch`,
  before any action, reward, or propensity exists.
- :class:`DatasetColumns` is the evaluation-side view: a logged
  dataset's contexts plus its ``actions``/``rewards``/``propensities``
  arrays.  :meth:`DatasetColumns.from_arrays` closes the loop — the
  batch harvester writes its sampled actions and propensities straight
  into a columnar view, so generated logs feed the vectorized
  estimators without ever constructing per-row objects.

Policies consume either view through
:meth:`~repro.core.policies.Policy.probabilities_batch`, which returns
the full ``(N, K)`` probability matrix; estimators reduce that matrix
with a handful of array operations, and ``act_batch`` samples from it
with one uniform draw per row.  Columns are cached on the dataset (see
:meth:`repro.core.types.Dataset.columns`) and invalidated when the
dataset is mutated, so every estimator and every member of a policy
class shares one featurization pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Sequence, Union

import numpy as np

from repro.core.types import ActionSpace, Context, Dataset, Interaction, RewardRange

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.features import Featurizer
    from repro.core.policies import Policy

#: Eligibility in batch form: one shared action list for every row, or
#: one list per row.
EligibleSpec = Union[Sequence[int], Sequence[Sequence[int]]]


def is_per_row_eligibility(eligible: EligibleSpec) -> bool:
    """Whether an eligibility spec is per-row (vs one shared list).

    A shared spec is a flat sequence of ints; a per-row spec is a
    sequence of sequences, one per row.  Empty specs count as shared.
    """
    try:
        first = eligible[0]  # type: ignore[index]
    except (IndexError, TypeError, KeyError):
        return False
    return not isinstance(first, (int, np.integer))


class ContextColumns:
    """Columnar view of decision-time inputs: contexts + eligibility.

    ``n_actions`` (K) bounds the action ids; ``eligible_mask[t, a]`` is
    whether action ``a`` is eligible at row ``t``.  Probabilities of
    ineligible actions are exactly zero in every batch matrix built
    from this view.  Subclasses add outcome columns
    (:class:`DatasetColumns`) or stay pure decision batches
    (:class:`DecisionBatch`).
    """

    def __init__(
        self,
        contexts: Sequence[Context],
        eligible: EligibleSpec,
        n_actions: Optional[int] = None,
    ) -> None:
        contexts = tuple(contexts)
        n = len(contexts)
        if is_per_row_eligibility(eligible):
            eligible_lists = tuple(
                tuple(int(a) for a in row) for row in eligible
            )
            if len(eligible_lists) != n:
                raise ValueError(
                    f"got {len(eligible_lists)} eligibility rows for "
                    f"{n} contexts"
                )
            uniform = len(set(eligible_lists)) <= 1
        else:
            shared = tuple(int(a) for a in eligible)
            eligible_lists = (shared,) * n
            uniform = True
        for row in set(eligible_lists):
            if not row:
                raise ValueError("every row needs at least one eligible action")
            if min(row) < 0:
                raise ValueError(f"negative action id in eligible set {row}")
        if n_actions is None:
            n_actions = (
                max(max(row) for row in set(eligible_lists)) + 1
                if eligible_lists
                else 1
            )
        self._init_columns(contexts, eligible_lists, int(n_actions), uniform)

    # Shared initializer so DatasetColumns can keep its own eligibility
    # reconstruction (action space / observed actions) while reusing the
    # mask assembly and caches.
    def _init_columns(
        self,
        contexts: tuple[Context, ...],
        eligible_lists: tuple[tuple[int, ...], ...],
        n_actions: int,
        uniform_eligibility: bool,
    ) -> None:
        n = len(contexts)
        self.n = n
        self.contexts = contexts
        self.n_actions = n_actions
        self.eligible_lists = eligible_lists
        distinct = set(eligible_lists)
        for row in distinct:
            if row and max(row) >= n_actions:
                raise ValueError(
                    f"eligible action {max(row)} outside action space of "
                    f"size {n_actions}"
                )
        mask = np.zeros((n, n_actions), dtype=bool)
        if uniform_eligibility and n > 0:
            mask[:, list(eligible_lists[0])] = True
        else:
            for row, eligible in enumerate(eligible_lists):
                mask[row, list(eligible)] = True
        self.eligible_mask = mask
        self.uniform_eligibility = uniform_eligibility
        self.eligible_counts = mask.sum(axis=1).astype(float)
        #: Whether every row's eligible list is sorted ascending.  When
        #: true, a masked argmax (lowest-id tie-break) reproduces the
        #: scalar path's first-in-list tie-break exactly; deterministic
        #: batch policies fall back to the loop otherwise.
        self.canonical_order = all(
            all(a < b for a, b in zip(row, row[1:])) for row in distinct
        )
        self._row_index = np.arange(n)
        self._feature_matrices: dict[tuple[str, ...], np.ndarray] = {}
        self._hashed_matrices: dict[int, tuple[object, np.ndarray]] = {}
        # Dataset-level memos (see shared_block / ips_weights); kept at
        # this level so every construction path initializes them.
        self._shared_block = None
        self._ips_weight_cache: dict[int, tuple[object, np.ndarray]] = {}

    # -- memoized featurizations -------------------------------------------

    def feature_matrix(self, feature_names: Sequence[str]) -> np.ndarray:
        """``(N, F+1)`` matrix of named features plus a bias column.

        Matches :class:`~repro.core.policies.LinearThresholdPolicy`'s
        ``φ(x)`` layout; memoized per feature-name tuple so a class of
        |Π| linear policies sharing a template featurizes once.
        """
        key = tuple(feature_names)
        cached = self._feature_matrices.get(key)
        if cached is None:
            cached = np.empty((self.n, len(key) + 1))
            for row, context in enumerate(self.contexts):
                for col, name in enumerate(key):
                    cached[row, col] = float(context.get(name, 0.0))
            cached[:, -1] = 1.0
            self._feature_matrices[key] = cached
        return cached

    def hashed_matrix(self, featurizer: "Featurizer") -> np.ndarray:
        """``(N, n_dims)`` hashed context matrix, memoized per featurizer."""
        entry = self._hashed_matrices.get(id(featurizer))
        if entry is None or entry[0] is not featurizer:
            matrix = featurizer.matrix(list(self.contexts))
            entry = (featurizer, matrix)
            self._hashed_matrices[id(featurizer)] = entry
        return entry[1]

    # -- batch building blocks ---------------------------------------------

    def uniform_matrix(self) -> np.ndarray:
        """``(N, K)`` uniform distribution over each row's eligible set."""
        out = np.zeros((self.n, self.n_actions))
        np.divide(
            1.0,
            self.eligible_counts[:, None],
            out=out,
            where=self.eligible_mask,
        )
        return out

    def point_mass_matrix(self, chosen: np.ndarray) -> np.ndarray:
        """``(N, K)`` matrix putting probability 1 on ``chosen[t]``."""
        chosen = np.asarray(chosen, dtype=np.int64)
        if chosen.shape != (self.n,):
            raise ValueError(f"chosen must have shape ({self.n},)")
        out = np.zeros((self.n, self.n_actions))
        out[self._row_index, chosen] = 1.0
        return out

    def masked_argbest(self, scores: np.ndarray, maximize: bool = True) -> np.ndarray:
        """Per-row best *eligible* action id for a ``(N, K)`` score matrix.

        Ties break toward the lowest action id, matching the scalar
        path when eligible lists are in canonical (ascending) order.
        """
        if scores.shape != (self.n, self.n_actions):
            raise ValueError(
                f"scores must have shape ({self.n}, {self.n_actions})"
            )
        guarded = np.where(
            self.eligible_mask, scores if maximize else -scores, -np.inf
        )
        return np.argmax(guarded, axis=1)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n}, k={self.n_actions})"


class DecisionBatch(ContextColumns):
    """A batch of contexts about to be acted on (the harvest side).

    This is what :meth:`repro.core.policies.Policy.act_batch` consumes:
    decision-time contexts plus eligibility, with no actions, rewards,
    or propensities yet.  It shares the memoized feature matrices and
    mask machinery of :class:`ContextColumns`, so a vectorized policy
    pays featurization once per batch rather than once per row.
    """

    @classmethod
    def from_action_space(
        cls,
        contexts: Sequence[Context],
        space: Optional[ActionSpace],
        observed: Optional[Sequence[int]] = None,
    ) -> "DecisionBatch":
        """Build a batch whose eligibility comes from an action space.

        Mirrors :class:`DatasetColumns`' reconstruction: a restricted
        space is resolved per context, an unrestricted one is shared;
        with no space at all, ``observed`` (sorted) stands in for the
        eligible set, as for a scavenged log.
        """
        if space is not None and space.restricted:
            eligible: EligibleSpec = [
                tuple(space.actions(context)) for context in contexts
            ]
            return cls(contexts, eligible, n_actions=space.n_actions)
        if space is not None:
            return cls(
                contexts, tuple(range(space.n_actions)),
                n_actions=space.n_actions,
            )
        shared = tuple(sorted(set(int(a) for a in (observed or ())))) or (0,)
        return cls(contexts, shared, n_actions=max(shared) + 1)


def as_decision_batch(
    contexts, eligible: Optional[EligibleSpec] = None
) -> ContextColumns:
    """Coerce ``(contexts, eligible)`` into a columnar decision view.

    Accepts a prebuilt :class:`ContextColumns` (with ``eligible=None``)
    and passes it through unchanged, so callers that already hold a
    batch — the harvest engine, chained policies — pay for mask
    construction once.
    """
    if isinstance(contexts, ContextColumns):
        if eligible is not None:
            raise ValueError(
                "eligible must be None when contexts is already columnar"
            )
        return contexts
    if eligible is None:
        raise ValueError("eligible is required for raw context sequences")
    return DecisionBatch(contexts, eligible)


class DatasetColumns(ContextColumns):
    """Immutable columnar view of a dataset, shared across evaluations.

    ``n_actions`` (K) is the action-space size when the dataset carries
    one, else ``max(logged action) + 1`` — the best reconstruction
    available for scavenged logs.  ``eligible_mask[t, a]`` is whether
    action ``a`` was eligible at row ``t``; probabilities of ineligible
    actions are exactly zero in every batch matrix.
    """

    def __init__(self, dataset: Dataset) -> None:
        # Single pass over the log: one traversal fills every outcome
        # column and collects the contexts, and no per-row Interaction
        # list is retained once the arrays exist.
        n = len(dataset)
        context_list: list[Context] = []
        actions = np.empty(n, dtype=np.int64)
        rewards = np.empty(n, dtype=np.float64)
        propensities = np.empty(n, dtype=np.float64)
        timestamps = np.empty(n, dtype=np.float64)
        for row, interaction in enumerate(dataset):
            context_list.append(interaction.context)
            actions[row] = interaction.action
            rewards[row] = interaction.reward
            propensities[row] = interaction.propensity
            timestamps[row] = interaction.timestamp
        contexts: tuple[Context, ...] = tuple(context_list)
        del context_list

        space = dataset.action_space
        if space is not None:
            n_actions = space.n_actions
        elif n > 0:
            n_actions = int(actions.max()) + 1
        else:
            n_actions = 1

        # Per-row eligible actions, mirroring eligible_actions_fn: the
        # action space (possibly context-restricted) when present, else
        # the set of actions observed anywhere in the log.
        if space is not None and space.restricted:
            eligible_lists: tuple[tuple[int, ...], ...] = tuple(
                tuple(space.actions(context)) for context in contexts
            )
            uniform = False
        else:
            if space is not None:
                shared: tuple[int, ...] = tuple(range(n_actions))
            elif n > 0:
                shared = tuple(sorted(set(actions.tolist())))
            else:
                shared = (0,)
            eligible_lists = (shared,) * n
            uniform = True

        self._init_columns(contexts, eligible_lists, n_actions, uniform)
        self.actions = actions
        self.rewards = rewards
        self.propensities = propensities
        self.timestamps = timestamps
        self.action_space = space
        self.reward_range = dataset.reward_range
        self._observed_actions: Optional[np.ndarray] = None
        self._identity_error: Optional[float] = None

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "DatasetColumns":
        """Build (without caching) the columnar view of ``dataset``."""
        return cls(dataset)

    @classmethod
    def from_arrays(
        cls,
        contexts: Sequence[Context],
        actions: np.ndarray,
        rewards: np.ndarray,
        propensities: np.ndarray,
        *,
        eligible: Optional[EligibleSpec] = None,
        n_actions: Optional[int] = None,
        action_space: Optional[ActionSpace] = None,
        reward_range: Optional[RewardRange] = None,
        timestamps: Optional[np.ndarray] = None,
    ) -> "DatasetColumns":
        """Assemble a columnar log directly from arrays — no Dataset.

        This is the batch harvester's output path: sampled actions and
        propensities land in the columnar layout the vectorized
        estimators consume, skipping per-row ``Interaction``
        construction entirely.  ``eligible`` follows the
        :data:`EligibleSpec` convention; when omitted it is derived
        from ``action_space`` (per-row if restricted) or from the
        sorted set of observed actions, exactly as the Dataset path
        reconstructs it.  Use :meth:`to_dataset` to materialize
        per-row objects when the scalar paths (or JSONL export) need
        them.
        """
        n = len(contexts)
        actions = np.asarray(actions, dtype=np.int64)
        rewards = np.asarray(rewards, dtype=np.float64)
        propensities = np.asarray(propensities, dtype=np.float64)
        for name, array in (
            ("actions", actions),
            ("rewards", rewards),
            ("propensities", propensities),
        ):
            if array.shape != (n,):
                raise ValueError(
                    f"{name} must have shape ({n},), got {array.shape}"
                )
        if n > 0 and (
            (propensities <= 0.0).any() or (propensities > 1.0).any()
        ):
            raise ValueError("propensities must be in (0, 1]")
        if n > 0 and not np.isfinite(rewards).all():
            raise ValueError("rewards must be finite")

        if eligible is None:
            if action_space is not None and action_space.restricted:
                eligible = [
                    tuple(action_space.actions(context))
                    for context in contexts
                ]
            elif action_space is not None:
                eligible = tuple(range(action_space.n_actions))
            else:
                eligible = tuple(
                    sorted(set(actions.tolist()))
                ) if n > 0 else (0,)
        if n_actions is None and action_space is not None:
            n_actions = action_space.n_actions

        columns = cls.__new__(cls)
        ContextColumns.__init__(columns, contexts, eligible, n_actions)
        if n > 0:
            chosen_eligible = columns.eligible_mask[
                np.arange(n), np.clip(actions, 0, columns.n_actions - 1)
            ]
            if (actions >= columns.n_actions).any() or not chosen_eligible.all():
                bad = int(np.argmin(chosen_eligible))
                raise ValueError(
                    f"row {bad}: action {int(actions[bad])} is not eligible"
                )
        columns.actions = actions
        columns.rewards = rewards
        columns.propensities = propensities
        columns.timestamps = (
            np.asarray(timestamps, dtype=np.float64)
            if timestamps is not None
            else np.arange(n, dtype=np.float64)
        )
        if columns.timestamps.shape != (n,):
            raise ValueError(f"timestamps must have shape ({n},)")
        columns.action_space = action_space
        columns.reward_range = reward_range
        columns._observed_actions = None
        columns._identity_error = None
        return columns

    def to_dataset(self) -> Dataset:
        """Materialize per-row :class:`Interaction` objects.

        The inverse bridge of :meth:`from_arrays`: batch-harvested
        columns become an ordinary :class:`~repro.core.types.Dataset`
        for the scalar estimators, JSONL export, or any per-row
        consumer.  The columnar view stays authoritative — this copies.
        """
        interactions = [
            Interaction(
                context=self.contexts[t],
                action=int(self.actions[t]),
                reward=float(self.rewards[t]),
                propensity=float(self.propensities[t]),
                timestamp=float(self.timestamps[t]),
            )
            for t in range(self.n)
        ]
        return Dataset(
            interactions,
            action_space=self.action_space,
            reward_range=self.reward_range,
        )

    # -- policy-independent diagnostic inputs --------------------------------

    def observed_actions(self) -> np.ndarray:
        """Sorted unique logged action ids, computed once per dataset.

        The logged *support*: any candidate-policy mass outside this set
        is invisible to importance-weighted estimators (see
        :mod:`repro.core.diagnostics`).
        """
        if self._observed_actions is None:
            self._observed_actions = np.unique(self.actions)
        return self._observed_actions

    def propensity_identity_error(self) -> float:
        """Cached per-action A1 identity deviation of the *log* itself.

        Depends only on the logged (action, propensity) pairs, so a
        class search over hundreds of candidates pays for it once.
        """
        if self._identity_error is None:
            from repro.core.diagnostics import propensity_identity_error

            self._identity_error = propensity_identity_error(
                self.actions, self.propensities
            )
        return self._identity_error

    # -- logged-action lookups ----------------------------------------------

    def probability_of_logged(self, matrix: np.ndarray) -> np.ndarray:
        """Extract ``π(a_t | x_t)`` from a batch probability matrix."""
        return matrix[self._row_index, self.actions]

    def logged_probabilities(self, policy: "Policy") -> np.ndarray:
        """``π(a_t | x_t)`` for every row, via the policy's batch API."""
        return self.probability_of_logged(policy.probabilities_batch(self))

    def ips_weights(self, policy: "Policy") -> np.ndarray:
        """Cached importance weights ``π(a_t|x_t)/p_t`` for ``policy``.

        Computed once per (policy, log) and shared by everything that
        needs the weight vector — IPS/SNIPS point estimates, their
        bootstrap intervals, diagnostics — so a bootstrap's thousands
        of replicates (and repeated intervals for the same candidate)
        pay for the probability pass exactly once.  Keyed by policy
        identity; a small cap keeps class searches over many candidates
        from pinning every weight vector at once.
        """
        key = id(policy)
        entry = self._ips_weight_cache.get(key)
        if entry is None or entry[0] is not policy:
            if len(self._ips_weight_cache) >= 16:
                self._ips_weight_cache.clear()
            weights = self.logged_probabilities(policy) / self.propensities
            self._ips_weight_cache[key] = (policy, weights)
            return weights
        return entry[1]

    # -- shared-memory bridge ------------------------------------------------

    def shared_block(self):
        """This view packed into a shared segment, built once and reused.

        Returns a :class:`repro.core.shm.SharedArrayBlock` whose
        descriptor workers attach zero-copy; raises
        :class:`repro.core.shm.SharedMemoryUnsupported` when the view
        cannot be packed (callers fall back to pickled payloads).  The
        block is owned by this process and lives until
        :meth:`release_shared_block` (or process exit) — the point is
        that every parallel fold and bootstrap against this log reuses
        one segment.
        """
        if self._shared_block is None or self._shared_block.released:
            from repro.core import shm

            self._shared_block = shm.pack_columns(self)
        return self._shared_block

    def release_shared_block(self) -> None:
        """Unlink this view's shared segment, if one was created."""
        block, self._shared_block = self._shared_block, None
        if block is not None:
            block.release()


class FixedEligibility:
    """Picklable eligibility callback returning one fixed action tuple.

    Used to pin a spaceless log's globally observed actions onto chunk
    datasets (a lambda would not survive the trip to worker processes).
    """

    def __init__(self, actions: Sequence[int]) -> None:
        self.actions = tuple(int(a) for a in actions)

    def __call__(self, context: Context) -> tuple[int, ...]:
        """Return the pinned eligible-action tuple (context ignored)."""
        return self.actions


def pinned_action_space(
    dataset: Optional[Dataset] = None,
    *,
    space: Optional[ActionSpace] = None,
    observed: Optional[Sequence[int]] = None,
) -> Optional[ActionSpace]:
    """An action space that makes chunk views match the whole-log view.

    A chunk of a dataset *with* an action space already sees the right
    ``n_actions`` and eligibility — the space passes through unchanged.
    A chunk of a *spaceless* log would reconstruct both from the chunk's
    own rows (wrong: a chunk may miss actions the log contains), so we
    pin the global reconstruction — ``max(observed)+1`` actions,
    eligibility fixed to the sorted globally observed set — exactly what
    :class:`DatasetColumns` derives for the whole spaceless log.
    """
    if dataset is not None:
        if dataset.action_space is not None:
            return dataset.action_space
        observed = sorted({i.action for i in dataset})
    elif space is not None:
        return space
    else:
        observed = sorted(set(observed or ()))
    if not observed:
        return None
    return ActionSpace(
        int(max(observed)) + 1, eligibility=FixedEligibility(observed)
    )


def iter_chunk_columns(
    dataset: Dataset, chunk_size: int
) -> Iterator[DatasetColumns]:
    """Yield columnar views of consecutive ``chunk_size`` slices.

    Each chunk carries the pinned action space, so per-chunk eligible
    sets, masks, and ``n_actions`` agree with the whole-log view — the
    invariant the chunked backend's equivalence guarantee rests on.
    Feature matrices are memoized per chunk and released with it.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    space = pinned_action_space(dataset)
    interactions = list(dataset)
    for start in range(0, len(interactions), chunk_size):
        chunk = Dataset(
            interactions[start:start + chunk_size],
            action_space=space,
            reward_range=dataset.reward_range,
        )
        yield chunk.columns()


class ColumnsSlice(DatasetColumns):
    """Zero-copy view of rows ``[start, stop)`` of a parent columnar view.

    The chunked backend's unit of work: every column is a NumPy slice
    (a view, not a copy) of the parent's arrays, so folding a chunk
    costs no per-row reconstruction — the parent's one featurization
    and mask build are shared by every chunk.  Feature matrices are
    reused from the parent when it has them memoized and computed
    slice-locally (O(chunk)) otherwise, so a pure chunked run never
    materializes a whole-log feature matrix it didn't already have.
    """

    def __init__(self, parent: DatasetColumns, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= parent.n:
            raise ValueError(
                f"slice [{start}, {stop}) outside [0, {parent.n})"
            )
        n = stop - start
        self._parent = parent
        self._start = start
        self._stop = stop
        self.n = n
        self.contexts = parent.contexts[start:stop]
        self.n_actions = parent.n_actions
        self.eligible_mask = parent.eligible_mask[start:stop]
        self.eligible_counts = parent.eligible_counts[start:stop]
        self.uniform_eligibility = parent.uniform_eligibility
        self.canonical_order = parent.canonical_order
        self._row_index = np.arange(n)
        self._feature_matrices = {}
        self._hashed_matrices = {}
        self._shared_block = None
        self._ips_weight_cache = {}
        self.actions = parent.actions[start:stop]
        self.rewards = parent.rewards[start:stop]
        self.propensities = parent.propensities[start:stop]
        self.timestamps = parent.timestamps[start:stop]
        self.action_space = parent.action_space
        self.reward_range = parent.reward_range
        self._observed_actions = None
        self._identity_error = None

    def __getattr__(self, name: str):
        """Lazily slice ``eligible_lists`` out of the parent on demand.

        Only the per-row loop fallbacks need the tuples; batch paths
        use the mask, so most chunks never build them.
        """
        if name == "eligible_lists":
            lists = tuple(self._parent.eligible_lists[self._start:self._stop])
            self.eligible_lists = lists
            return lists
        raise AttributeError(name)

    def feature_matrix(self, feature_names) -> np.ndarray:
        """Named-feature matrix for this slice, reusing parent memos.

        A parent-cached (or cheaply gatherable, for shared-memory
        parents) whole-log matrix is sliced as a view; otherwise the
        matrix is computed over just this slice's rows — identical
        values either way, since both paths read the same contexts.
        """
        key = tuple(feature_names)
        cached = self._feature_matrices.get(key)
        if cached is not None:
            return cached
        parent_matrix = self._parent._feature_matrices.get(key)
        if parent_matrix is None and hasattr(self._parent, "_ctx_key_index"):
            # Shared-memory parents gather the whole matrix vectorized;
            # memoizing it there lets every later slice reuse it.
            parent_matrix = self._parent.feature_matrix(key)
        if parent_matrix is not None:
            cached = parent_matrix[self._start:self._stop]
        else:
            cached = super().feature_matrix(key)
        self._feature_matrices[key] = cached
        return cached

    def hashed_matrix(self, featurizer: "Featurizer") -> np.ndarray:
        """Hashed context matrix for this slice, reusing parent memos."""
        entry = self._parent._hashed_matrices.get(id(featurizer))
        if entry is not None and entry[0] is featurizer:
            return entry[1][self._start:self._stop]
        return super().hashed_matrix(featurizer)


def iter_column_slices(
    columns: DatasetColumns, chunk_size: int
) -> Iterator[DatasetColumns]:
    """Yield consecutive ``chunk_size`` row slices of a columnar view.

    The fast successor to :func:`iter_chunk_columns`: instead of
    rebuilding a per-chunk ``Dataset`` + ``DatasetColumns`` (four
    ``fromiter`` passes and a mask build per chunk), each chunk is a
    :class:`ColumnsSlice` — pure NumPy views over the already-built
    whole-log columns, which the in-memory chunked path materializes
    anyway for its reduction context.  Eligibility, ``n_actions``, and
    feature values are inherited from the whole-log view, so the
    pinned-space equivalence invariant holds by construction.  A view
    no larger than one chunk is yielded as-is.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if columns.n <= chunk_size:
        yield columns
        return
    for start in range(0, columns.n, chunk_size):
        yield ColumnsSlice(columns, start, min(start + chunk_size, columns.n))


def loop_probabilities(policy: "Policy", columns: ContextColumns) -> np.ndarray:
    """Reference ``(N, K)`` probability matrix via per-row dispatch.

    The correct-for-anything fallback behind
    :meth:`~repro.core.policies.Policy.probabilities_batch`: calls
    ``policy.distribution`` once per row and scatters the result into
    the batch layout.  Arbitrary user policies get this for free; the
    built-ins override it with real array code.
    """
    out = np.zeros((columns.n, columns.n_actions))
    for row in range(columns.n):
        eligible = list(columns.eligible_lists[row])
        probs = policy.distribution(columns.contexts[row], eligible)
        out[row, eligible] = probs
    return out
