"""Evaluation-backend selection for the off-policy machinery.

Three interchangeable execution paths compute every estimator, all of
them drivers over the same reduction kernel
(:mod:`repro.core.estimators.reductions`):

- ``"scalar"`` — the reference implementation: walk the log one
  :class:`~repro.core.types.Interaction` at a time, calling
  :meth:`~repro.core.policies.Policy.distribution` per row.  Simple,
  obviously correct, and the semantics the array paths must match.
- ``"vectorized"`` — the columnar engine: featurize the log once into
  :class:`~repro.core.columns.DatasetColumns` and evaluate policies
  with :meth:`~repro.core.policies.Policy.probabilities_batch`, which
  returns the whole ``(N, K)`` probability matrix in a handful of
  NumPy operations.
- ``"chunked"`` — the out-of-core engine: fold fixed-size chunks of
  the log through the kernel, keeping only O(chunk) rows plus O(1)
  sufficient statistics resident.  For in-memory datasets it bounds
  the *working set* (no whole-log ``(N, K)`` matrix is ever built);
  chunks are zero-copy :class:`~repro.core.columns.ColumnsSlice` views
  of the whole-log columns, so chunking costs slicing, not per-chunk
  reconstruction.  :func:`evaluate_jsonl_chunked` extends it to logs
  that never fit in memory at all, streaming JSONL through the
  validation layer and optionally folding chunks in parallel worker
  processes.
- ``"shared"`` — the multi-process engine: the chunked fold plan
  executed across the persistent worker pool (:mod:`repro.core.pool`),
  with the columnar data living in one shared-memory segment
  (:mod:`repro.core.shm`) that workers attach zero-copy.  Each task
  payload is a compact descriptor plus slice bounds — no row data is
  ever pickled.  Falls back to the serial chunked plan (bit-identical)
  whenever the data cannot be shared or the pool breaks.

The paths agree to floating-point reassociation (asserted by
``tests/core/test_batch_equivalence.py`` and
``tests/core/test_reduction_equivalence.py``); the vectorized path
exists because §4's promise — one harvested log evaluates a *large
class* of policies simultaneously — is only credible at array speed,
and the chunked path because production logs outgrow RAM long before
they outgrow usefulness.

Every estimator takes a ``backend=`` override; this module holds the
process-wide default plus a context manager for scoped switches.
"""

from __future__ import annotations

import pickle
import time
import warnings
from collections import deque
from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np

from repro.core import pool as worker_pool
from repro.core.pool import BrokenProcessPool
from repro.obs.metrics import get_metrics
from repro.obs.monitors import get_monitors
from repro.obs.tracing import get_tracer

#: The recognized backend names.
BACKENDS = ("scalar", "vectorized", "chunked", "shared")

_default_backend = "vectorized"

#: Rows per fold on the chunked backend.  8192 rows × a few hundred
#: actions of float64 keeps the per-chunk probability matrix in the
#: tens of megabytes — comfortably inside any address-space budget
#: while still amortizing NumPy dispatch overhead.
_default_chunk_size = 8192

#: Worker processes folding chunks on the chunked backend; 1 = serial.
_default_workers = 1

#: Policy types already warned about missing a batch implementation.
_warned_fallback_types: set = set()


def _check(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKENDS}"
        )
    return name


def get_default_backend() -> str:
    """The process-wide default evaluation backend."""
    return _default_backend


def set_default_backend(name: str) -> None:
    """Set the process-wide default evaluation backend."""
    global _default_backend
    _default_backend = _check(name)


def resolve_backend(override: Optional[str] = None) -> str:
    """An explicit backend if given, else the process default."""
    return _check(override) if override is not None else _default_backend


def get_chunk_size() -> int:
    """Rows per fold on the chunked backend."""
    return _default_chunk_size


def set_chunk_size(chunk_size: int) -> None:
    """Set the process-wide chunk size for the chunked backend."""
    global _default_chunk_size
    if int(chunk_size) <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    _default_chunk_size = int(chunk_size)


def get_workers() -> int:
    """Worker processes used by chunked folding (1 = in-process)."""
    return _default_workers


def set_workers(workers: int) -> None:
    """Set the process-wide worker count for chunked folding."""
    global _default_workers
    if int(workers) < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    _default_workers = int(workers)


@contextmanager
def use_backend(
    name: str,
    *,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> Iterator[str]:
    """Temporarily switch the default backend within a ``with`` block.

    ``chunk_size`` and ``workers`` scope the chunked backend's knobs
    alongside it.  On exit the previous defaults are restored and the
    per-policy-type fallback-warning memory is cleared, so a scoped
    backend switch cannot leak warning-suppression state into later
    code (or, in test suites, into later tests).
    """
    global _default_backend, _default_chunk_size, _default_workers
    previous = (_default_backend, _default_chunk_size, _default_workers)
    _default_backend = _check(name)
    if chunk_size is not None:
        set_chunk_size(chunk_size)
    if workers is not None:
        set_workers(workers)
    try:
        yield _default_backend
    finally:
        _default_backend, _default_chunk_size, _default_workers = previous
        _warned_fallback_types.clear()


def warn_missing_batch(policy_type: type) -> None:
    """One-time warning that a policy type lacks ``probabilities_batch``.

    The loop fallback is correct but forfeits the vectorized speedup;
    surfacing it once per type tells users which custom policies are
    worth giving a batch implementation (see DESIGN.md).

    Every downgrade event also increments the
    ``engine.batch_fallback`` counter on the active metrics registry
    (labeled by policy type), so instrumented runs count downgrades
    per run even though the warning prints once per process.
    """
    get_metrics().counter(
        "engine.batch_fallback", policy_type=policy_type.__name__
    ).inc()
    if policy_type in _warned_fallback_types:
        return
    _warned_fallback_types.add(policy_type)
    warnings.warn(
        f"{policy_type.__name__} does not implement probabilities_batch(); "
        "the vectorized backend is falling back to a per-row Python loop "
        "for it. Implement probabilities_batch(columns) to restore array "
        "speed (see DESIGN.md, 'Columnar evaluation engine').",
        RuntimeWarning,
        stacklevel=3,
    )


def reset_backend_warnings() -> None:
    """Forget which policy types have been warned about.

    Warnings fire once per policy type per process; callers that want
    them again (fresh test, fresh experiment run) reset here.
    """
    _warned_fallback_types.clear()


#: Backwards-compatible alias for :func:`reset_backend_warnings`.
reset_fallback_warnings = reset_backend_warnings


# ---------------------------------------------------------------------------
# in-memory chunked folding: slice views, optionally across the pool


def fold_dataset_chunked(
    reduction,
    state,
    dataset,
    *,
    chunk_size: Optional[int] = None,
    workers: int = 1,
):
    """Fold a dataset through ``reduction`` in fixed-size chunk slices.

    The driver behind the in-memory ``"chunked"`` and ``"shared"``
    backends.  Chunks are zero-copy
    :class:`~repro.core.columns.ColumnsSlice` views over the dataset's
    cached whole-log columns (which the chunked plan builds anyway for
    its reduction context), so no per-chunk reconstruction happens.
    With ``workers > 1`` the slices fold across the persistent worker
    pool against a shared-memory copy of the columns; any failure to
    share (unpackable data, unpicklable reduction, a broken pool)
    falls back to the serial plan, which is bit-identical because
    ``merge`` is exactly how ``fold`` accumulates.
    """
    from repro.core.columns import iter_column_slices

    chunk_size = chunk_size if chunk_size is not None else get_chunk_size()
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    columns = dataset.columns()
    if workers > 1 and columns.n > chunk_size:
        chunk_states = _fold_columns_parallel(
            reduction, columns, chunk_size, workers
        )
        if chunk_states is not None:
            for chunk_state in chunk_states:
                state = reduction.merge(state, chunk_state)
            return state
    for chunk in iter_column_slices(columns, chunk_size):
        state = reduction.fold(state, chunk)
    return state


def _fold_columns_parallel(reduction, columns, chunk_size, workers):
    """Fold slices of a shared-memory block across the worker pool.

    Returns the chunk states in chunk order, or ``None`` when the data
    cannot be shared, the reduction is unpicklable, or the pool broke
    mid-run — the caller then recomputes serially (bit-identical).
    The columns' shared block is memoized on the columns object, so a
    class search fanning many reductions over one log packs the
    segment exactly once.
    """
    from repro.core import shm

    if not shm.available():
        return None
    try:
        block = columns.shared_block()
    except shm.SharedMemoryUnsupported:
        return None
    try:
        job_key, blob = worker_pool.new_job((block.descriptor, reduction))
    except Exception as error:
        warnings.warn(
            "shared backend falling back to serial folding: work items "
            f"are not picklable ({error})",
            RuntimeWarning,
            stacklevel=4,
        )
        return None
    tracer = get_tracer()
    metrics = get_metrics()
    bounds = [
        (start, min(start + chunk_size, columns.n))
        for start in range(0, columns.n, chunk_size)
    ]
    try:
        executor = worker_pool.get_pool(workers)
        futures = [
            executor.submit(
                _fold_slice_worker,
                (job_key, blob, start, stop, index, tracer.enabled),
            )
            for index, (start, stop) in enumerate(bounds)
        ]
        outcomes = [future.result() for future in futures]
    except BrokenProcessPool:
        worker_pool.reset_pool()
        warnings.warn(
            "worker pool died mid-fold; recomputing serially "
            "(results are unaffected)",
            RuntimeWarning,
            stacklevel=4,
        )
        return None
    fold_seconds = metrics.histogram("engine.chunk_fold_seconds")
    fold_count = metrics.counter("engine.chunk_folds")
    chunk_states = []
    for chunk_state, seconds, span_dict in outcomes:
        fold_seconds.observe(seconds)
        fold_count.inc()
        if span_dict is not None:
            tracer.attach(span_dict)
        chunk_states.append(chunk_state)
    return chunk_states


def _fold_slice_worker(payload):
    """Fold one slice of a shared columnar block (worker process).

    The job blob (descriptor + reduction) is unpickled once per worker
    and the segment attached once per worker — every subsequent slice
    of the same job reuses both, which is what makes pool reuse cheap.
    Traced tasks open a fresh per-task
    :class:`~repro.obs.tracing.Tracer` and ship the span home, so
    spans survive pool reuse without leaking state between tasks.
    """
    job_key, blob, start, stop, index, traced = payload
    from repro.core import shm
    from repro.core.columns import ColumnsSlice

    descriptor, reduction = worker_pool.job_payload(job_key, blob)
    columns = shm.attach_columns(descriptor)
    if start == 0 and stop == columns.n:
        chunk = columns
    else:
        chunk = ColumnsSlice(columns, start, stop)
    span_dict = None
    clock = time.perf_counter()
    if traced:
        from repro.obs.tracing import Tracer

        tracer = Tracer()
        with tracer.span(
            "evaluate.chunk", index=index, rows=stop - start, worker=True
        ):
            state = reduction.fold(reduction.init_state(), chunk)
        span_dict = tracer.span_tree()[0]
    else:
        state = reduction.fold(reduction.init_state(), chunk)
    return state, time.perf_counter() - clock, span_dict


# ---------------------------------------------------------------------------
# out-of-core evaluation: stream a JSONL log through the reduction kernel


def _iter_interaction_chunks(stream, chunk_size: int):
    """Group an interaction iterator into lists of ``chunk_size``."""
    chunk: list = []
    for interaction in stream:
        chunk.append(interaction)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _fold_chunk_worker(payload):
    """Fold one chunk into fresh states (runs in a worker process).

    Folding a chunk into a *fresh* state and merging it later is
    bit-identical to folding it into the accumulated state directly —
    ``fold`` is implemented as merge-of-a-chunk-local-state — which is
    what makes parallel and serial chunked runs agree exactly.

    Returns ``(states, seconds, span_dict)``: the fold wall time is
    always measured (two clock reads — the parent feeds it to the
    ``engine.chunk_fold_seconds`` histogram), and when the parent runs
    traced the worker opens its own ``evaluate.chunk`` span and ships
    it home serialized so the merged span tree covers every chunk no
    matter which process folded it.
    """
    interactions, space, reward_range, reductions, index, traced = payload
    from repro.core.types import Dataset

    span_dict = None
    start = time.perf_counter()
    if traced:
        from repro.obs.tracing import Tracer

        tracer = Tracer()
        with tracer.span(
            "evaluate.chunk", index=index, rows=len(interactions),
            worker=True,
        ):
            columns = Dataset(
                interactions, action_space=space, reward_range=reward_range
            ).columns()
            states = [
                reduction.fold(reduction.init_state(), columns)
                for reduction in reductions
            ]
        span_dict = tracer.span_tree()[0]
    else:
        columns = Dataset(
            interactions, action_space=space, reward_range=reward_range
        ).columns()
        states = [
            reduction.fold(reduction.init_state(), columns)
            for reduction in reductions
        ]
    return states, time.perf_counter() - start, span_dict


def _scan_context_keys(chunk, keys: set) -> bool:
    """Collect context keys from a chunk; ``False`` if any value won't pack.

    Feeds the discovery pass's shared-memory vocabulary: only exactly
    numeric values (bools excluded — they'd lose their type through a
    float64 cell) can live in the packed context matrix.
    """
    for interaction in chunk:
        for key, value in interaction.context.items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float, np.integer, np.floating)
            ):
                return False
            keys.add(key)
    return True


def _shared_space_eligibility(space) -> Optional[tuple]:
    """The one eligible-action tuple all rows share under ``space``.

    ``None`` when eligibility genuinely varies per context (a custom
    restricted space) — those chunks fall back to pickled rows.  The
    pinned spaces the JSONL driver builds for spaceless logs use
    :class:`~repro.core.columns.FixedEligibility`, which shares one
    tuple by construction.
    """
    if space is None:
        return None
    if not space.restricted:
        return tuple(range(space.n_actions))
    from repro.core.columns import FixedEligibility

    eligibility = getattr(space, "_eligibility", None)
    if isinstance(eligibility, FixedEligibility):
        return eligibility.actions
    return None


def _fold_shm_chunk_worker(payload):
    """Fold one shared-memory chunk into fresh states (worker process).

    The chunk's rows live in a one-shot segment; the payload is just
    ``(job_key, blob, descriptor, index, traced)``.  The job blob
    (action space, reward range, reductions, context vocabulary) is
    unpickled once per worker and reused for every chunk of the job.
    The result is pickled *before* the mapping is detached so no state
    can carry views into a closed segment, and returned as bytes (the
    parent unpickles).
    """
    job_key, blob, descriptor, index, traced = payload
    from repro.core import shm

    _space, reward_range, reductions, vocab = worker_pool.job_payload(
        job_key, blob
    )
    columns = shm.attach_columns(
        descriptor, vocab=vocab, reward_range=reward_range, cache=False
    )
    try:
        span_dict = None
        clock = time.perf_counter()
        if traced:
            from repro.obs.tracing import Tracer

            tracer = Tracer()
            with tracer.span(
                "evaluate.chunk", index=index, rows=columns.n, worker=True
            ):
                states = [
                    reduction.fold(reduction.init_state(), columns)
                    for reduction in reductions
                ]
            span_dict = tracer.span_tree()[0]
        else:
            states = [
                reduction.fold(reduction.init_state(), columns)
                for reduction in reductions
            ]
        result = pickle.dumps(
            (states, time.perf_counter() - clock, span_dict)
        )
        states = None
        return result
    finally:
        del columns
        shm.detach(descriptor)


class ChunkedEvaluation:
    """Everything :func:`evaluate_jsonl_chunked` learned from one log.

    ``results[p][e]`` is the
    :class:`~repro.core.estimators.base.EstimatorResult` of policy ``p``
    under estimator ``e`` (indexed like the input sequences, with names
    in ``policy_names`` / ``estimator_names``).  ``quarantine`` is the
    fold pass's record quarantine (empty in strict mode — strict raises
    instead).  ``terms`` maps ``(policy_name, estimator_name)`` to the
    per-row term vector when the run collected terms (for bootstrap
    CIs); composite estimators contribute no term vector.
    """

    def __init__(
        self,
        policy_names,
        estimator_names,
        results,
        n,
        n_chunks,
        quarantine,
        terms=None,
    ) -> None:
        self.policy_names = tuple(policy_names)
        self.estimator_names = tuple(estimator_names)
        self.results = results
        self.n = n
        self.n_chunks = n_chunks
        self.quarantine = quarantine
        self.terms = terms or {}

    def __repr__(self) -> str:
        return (
            f"ChunkedEvaluation(n={self.n}, chunks={self.n_chunks}, "
            f"policies={len(self.policy_names)}, "
            f"estimators={len(self.estimator_names)})"
        )


def evaluate_jsonl_chunked(
    path: str,
    policies,
    estimators,
    *,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
    mode: str = "strict",
    validator=None,
    action_space=None,
    reward_range=None,
    collect_terms: bool = False,
) -> ChunkedEvaluation:
    """Evaluate policies against a JSONL log without loading it.

    Two streaming passes, each O(chunk) peak memory:

    1. **Discovery** — count rows, collect the logged action support,
       fold the policy-independent :class:`LogStats` (propensity floor,
       A1 identity sums), and — when any estimator needs a reward model
       it doesn't already have — fold the per-action ridge normal
       equations (:class:`~repro.core.estimators.direct.RewardModelFolder`).
       This pins the reduction context (total N sizes the exact-q99
       tail buffers; the global support pins chunk eligibility).
    2. **Fold** — re-stream the file, build a pinned-space columnar
       view per chunk, and fold every (policy × estimator) reduction,
       serially or across ``workers`` processes.  Chunk states merge in
       chunk order, so parallel and serial runs agree bit-for-bit.

    Validation (:mod:`repro.core.validation`) is deterministic, so both
    passes accept the same rows; the fold pass's quarantine is the one
    reported.  ``mode="strict"`` raises on the first defect,
    ``"quarantine"``/``"repair"`` set defects aside and keep going —
    the chaos suite proves quarantine counts and UNRELIABLE verdicts
    survive chunk-boundary folding.

    Instrumented end to end (see :mod:`repro.obs`): under an active
    tracer the run produces an ``evaluate.jsonl`` span tree covering
    the validation/discovery pass, every chunk fold (including folds
    executed in worker processes, whose spans are merged home), and
    the finalize step; under an active metrics registry it feeds the
    ``engine.*`` counters/histograms and the ``validation.*``
    quarantine counters (fold pass only — discovery's duplicate sight
    of each defect is deliberately not mirrored).  With the default
    no-op tracer/registry the overhead is unmeasurable.
    """
    policies = list(policies)
    estimators = list(estimators)
    tracer = get_tracer()
    with tracer.span(
        "evaluate.jsonl",
        path=path,
        backend="chunked",
        mode=mode,
        n_policies=len(policies),
        n_estimators=len(estimators),
    ) as root:
        evaluation = _evaluate_jsonl_chunked(
            path,
            policies,
            estimators,
            chunk_size=chunk_size,
            workers=workers,
            mode=mode,
            validator=validator,
            action_space=action_space,
            reward_range=reward_range,
            collect_terms=collect_terms,
        )
        root.set(rows=evaluation.n, chunks=evaluation.n_chunks)
        return evaluation


def _evaluate_jsonl_chunked(
    path: str,
    policies,
    estimators,
    *,
    chunk_size: Optional[int],
    workers: Optional[int],
    mode: str,
    validator,
    action_space,
    reward_range,
    collect_terms: bool,
) -> ChunkedEvaluation:
    from repro.core import shm
    from repro.core.columns import pinned_action_space
    from repro.core.estimators.direct import RewardModelFolder
    from repro.core.estimators.reductions import (
        FoldState,
        LogStats,
        ReductionContext,
    )
    from repro.core.streaming import ValidatedInteractionStream
    from repro.core.types import Dataset
    from repro.core.validation import Quarantine, RecordValidator, check_mode

    check_mode(mode)
    policies = list(policies)
    estimators = list(estimators)
    if not policies:
        raise ValueError("need at least one policy")
    if not estimators:
        raise ValueError("need at least one estimator")
    chunk_size = chunk_size if chunk_size is not None else get_chunk_size()
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    workers = workers if workers is not None else get_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if validator is None:
        validator = (
            RecordValidator()
            if mode == "strict"
            else RecordValidator(
                action_space=action_space, reward_range=reward_range
            )
        )

    needs_shared_model = any(
        est.needs_model and getattr(est, "model", None) is None
        for est in estimators
    )

    # -- pass 1: discovery -------------------------------------------------
    tracer = get_tracer()
    metrics = get_metrics()
    stats = LogStats()
    observed: set = set()
    total_rows = 0
    folder = RewardModelFolder() if needs_shared_model else None
    # Shared-memory viability is decided during discovery: collect the
    # global context-key vocabulary and verify every value packs.
    ctx_keys: set = set()
    shm_ok = workers > 1 and shm.available()
    # Validation is deterministic and the fold pass re-validates every
    # record; this pass's quarantine stays out of the metrics mirror so
    # each defect is counted once per run.
    with tracer.span(
        "evaluate.validation", path=path, mode=mode
    ) as validation_span:
        with open(path, "r", encoding="utf-8") as handle:
            stream = ValidatedInteractionStream(
                handle,
                mode=mode,
                validator=validator,
                source_name=path,
                quarantine=Quarantine(record_metrics=False),
            )
            for chunk in _iter_interaction_chunks(stream, chunk_size):
                count = len(chunk)
                actions = np.fromiter(
                    (i.action for i in chunk), dtype=np.int64, count=count
                )
                propensities = np.fromiter(
                    (i.propensity for i in chunk), dtype=np.float64, count=count
                )
                stats.fold(actions, propensities)
                observed.update(int(a) for a in np.unique(actions))
                total_rows += count
                if shm_ok:
                    shm_ok = _scan_context_keys(chunk, ctx_keys)
                if folder is not None:
                    rewards = np.fromiter(
                        (i.reward for i in chunk), dtype=np.float64, count=count
                    )
                    folder.fold_rows(
                        [i.context for i in chunk], actions, rewards
                    )
            validation_span.set(
                rows=total_rows, rejected=stream.quarantine.n_rejected
            )
    if total_rows == 0:
        raise ValueError(f"{path}: no valid interactions to evaluate")

    space = action_space or pinned_action_space(observed=sorted(observed))
    shared_model = None
    if folder is not None:
        n_actions = space.n_actions if space is not None else 1
        shared_model = folder.finalize(n_actions)
    context = ReductionContext(
        observed_actions=np.array(sorted(observed), dtype=np.int64),
        total_rows=total_rows,
    )

    # -- build one reduction per (policy × estimator) ----------------------
    reductions = []
    for policy in policies:
        for est in estimators:
            if est.needs_model:
                reduction = est.reduction(policy, context, model=shared_model)
            else:
                reduction = est.reduction(policy, context)
            reduction.collect_terms = collect_terms
            reductions.append(reduction)

    # The one-time job serialization doubles as the picklability probe:
    # the blob (space, reward range, reductions, context vocabulary)
    # crosses the pickle machinery exactly once per run, and per-chunk
    # payloads carry only a compact segment descriptor — never the
    # reductions list, never the rows.
    job_key = job_blob = None
    vocab = tuple(sorted(ctx_keys))
    if workers > 1:
        try:
            job_key, job_blob = worker_pool.new_job(
                (space, reward_range, reductions, vocab)
            )
        except Exception as error:  # pragma: no cover - env-specific
            warnings.warn(
                "chunked evaluation falling back to serial folding: "
                f"work items are not picklable ({error})",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = 1
    eligible_shared = _shared_space_eligibility(space)
    use_shm = (
        workers > 1
        and shm_ok
        and eligible_shared is not None
        and len(vocab) <= shm.MAX_CONTEXT_KEYS
    )
    key_to_col = {key: col for col, key in enumerate(vocab)}

    # -- pass 2: fold ------------------------------------------------------
    fold_seconds = metrics.histogram("engine.chunk_fold_seconds")
    fold_count = metrics.counter("engine.chunk_folds")

    def _merge(outcome, states) -> None:
        if isinstance(outcome, bytes):
            outcome = pickle.loads(outcome)
        chunk_states, seconds, span_dict = outcome
        fold_seconds.observe(seconds)
        fold_count.inc()
        if span_dict is not None:
            tracer.attach(span_dict)
        for index, reduction in enumerate(reductions):
            states[index] = reduction.merge(
                states[index], chunk_states[index]
            )

    monitors = get_monitors()

    def _observe_chunk(chunk) -> None:
        # One monitor feed per *chunk*, not per reduction — the fold
        # below runs every (policy x estimator) reduction over the same
        # rows, and double-feeding would inflate the ESS windows.
        if monitors.enabled and chunk:
            monitors.observe_propensities(
                np.fromiter(
                    (interaction.propensity for interaction in chunk),
                    dtype=np.float64,
                    count=len(chunk),
                )
            )

    def _fold_pass(parallel: bool):
        states = [reduction.init_state() for reduction in reductions]
        n_chunks = 0
        with open(path, "r", encoding="utf-8") as handle:
            stream = ValidatedInteractionStream(
                handle, mode=mode, validator=validator, source_name=path
            )
            chunks = _iter_interaction_chunks(stream, chunk_size)
            if not parallel:
                for chunk in chunks:
                    start = time.perf_counter()
                    with tracer.span(
                        "evaluate.chunk", index=n_chunks, rows=len(chunk)
                    ):
                        columns = Dataset(
                            chunk, action_space=space,
                            reward_range=reward_range,
                        ).columns()
                        if monitors.enabled:
                            monitors.observe_propensities(
                                columns.propensities
                            )
                        for index, reduction in enumerate(reductions):
                            states[index] = reduction.fold(
                                states[index], columns
                            )
                    fold_seconds.observe(time.perf_counter() - start)
                    fold_count.inc()
                    n_chunks += 1
                return states, n_chunks, stream.quarantine

            # Parallel: ship each chunk as a one-shot shared segment
            # (a few-hundred-byte payload) when the data packs, or as
            # pickled rows otherwise.  Bound in-flight chunks so peak
            # memory — including live segments — stays O(workers ×
            # chunk) even when folding lags the file read; segments
            # are unlinked as soon as their chunk merges, and in
            # ``finally`` on any failure.
            traced = tracer.enabled
            executor = worker_pool.get_pool(workers)
            in_flight: deque = deque()

            def _drain_one() -> None:
                future, block = in_flight.popleft()
                try:
                    outcome = future.result()
                finally:
                    if block is not None:
                        block.release()
                _merge(outcome, states)

            try:
                for chunk in chunks:
                    _observe_chunk(chunk)
                    block = None
                    if use_shm:
                        try:
                            block = shm.pack_interactions(
                                chunk, key_to_col, eligible_shared,
                                space.n_actions,
                            )
                        except shm.SharedMemoryUnsupported:
                            block = None
                    try:
                        if block is not None:
                            future = executor.submit(
                                _fold_shm_chunk_worker,
                                (job_key, job_blob, block.descriptor,
                                 n_chunks, traced),
                            )
                        else:
                            future = executor.submit(
                                _fold_chunk_worker,
                                (chunk, space, reward_range, reductions,
                                 n_chunks, traced),
                            )
                    except BaseException:
                        # submit itself fails on an already-broken pool;
                        # the block is not in ``in_flight`` yet, so the
                        # outer finally would miss it.
                        if block is not None:
                            block.release()
                        raise
                    in_flight.append((future, block))
                    n_chunks += 1
                    if len(in_flight) >= 2 * workers:
                        _drain_one()
                while in_flight:
                    _drain_one()
            finally:
                for _future, block in in_flight:
                    if block is not None:
                        block.release()
            return states, n_chunks, stream.quarantine

    with tracer.span(
        "evaluate.fold", chunk_size=chunk_size, workers=workers
    ) as fold_span:
        if workers > 1:
            try:
                states, n_chunks, quarantine = _fold_pass(parallel=True)
            except BrokenProcessPool:
                worker_pool.reset_pool()
                warnings.warn(
                    "chunked fold worker pool died; refolding serially "
                    "(results are unaffected)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                states, n_chunks, quarantine = _fold_pass(parallel=False)
        else:
            states, n_chunks, quarantine = _fold_pass(parallel=False)
        fold_span.set(chunks=n_chunks)
    metrics.counter("engine.rows_ingested", backend="chunked").inc(total_rows)

    # -- finalize ----------------------------------------------------------
    log_summary = stats.summary()
    terms = {}
    results = []
    with tracer.span("evaluate.finalize"):
        flat = iter(zip(reductions, states))
        for policy in policies:
            row = []
            for est in estimators:
                reduction, state = next(flat)
                row.append(reduction.finalize(state, log_summary))
                if (
                    collect_terms
                    and isinstance(state, FoldState)
                    and state.term_chunks is not None
                ):
                    terms[(policy.name, reduction.name)] = (
                        reduction.collected_terms(state)
                    )
            results.append(row)

    return ChunkedEvaluation(
        policy_names=[p.name for p in policies],
        estimator_names=[
            reductions[i].name for i in range(len(estimators))
        ],
        results=results,
        n=total_rows,
        n_chunks=n_chunks,
        quarantine=quarantine,
        terms=terms,
    )
