"""Evaluation-backend selection for the off-policy machinery.

Two interchangeable execution paths compute every estimator:

- ``"scalar"`` — the reference implementation: walk the log one
  :class:`~repro.core.types.Interaction` at a time, calling
  :meth:`~repro.core.policies.Policy.distribution` per row.  Simple,
  obviously correct, and the semantics the vectorized path must match.
- ``"vectorized"`` — the columnar engine: featurize the log once into
  :class:`~repro.core.columns.DatasetColumns` and evaluate policies
  with :meth:`~repro.core.policies.Policy.probabilities_batch`, which
  returns the whole ``(N, K)`` probability matrix in a handful of
  NumPy operations.

The two paths agree to floating-point noise (asserted by
``tests/core/test_batch_equivalence.py``); the vectorized path exists
purely because §4's promise — one harvested log evaluates a *large
class* of policies simultaneously — is only credible when evaluation
runs at array speed rather than interpreter speed.

Every estimator takes a ``backend=`` override; this module holds the
process-wide default plus a context manager for scoped switches.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Iterator, Optional

#: The recognized backend names.
BACKENDS = ("scalar", "vectorized")

_default_backend = "vectorized"

#: Policy types already warned about missing a batch implementation.
_warned_fallback_types: set = set()


def _check(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKENDS}"
        )
    return name


def get_default_backend() -> str:
    """The process-wide default evaluation backend."""
    return _default_backend


def set_default_backend(name: str) -> None:
    """Set the process-wide default evaluation backend."""
    global _default_backend
    _default_backend = _check(name)


def resolve_backend(override: Optional[str] = None) -> str:
    """An explicit backend if given, else the process default."""
    return _check(override) if override is not None else _default_backend


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Temporarily switch the default backend within a ``with`` block."""
    global _default_backend
    previous = _default_backend
    _default_backend = _check(name)
    try:
        yield _default_backend
    finally:
        _default_backend = previous


def warn_missing_batch(policy_type: type) -> None:
    """One-time warning that a policy type lacks ``probabilities_batch``.

    The loop fallback is correct but forfeits the vectorized speedup;
    surfacing it once per type tells users which custom policies are
    worth giving a batch implementation (see DESIGN.md).
    """
    if policy_type in _warned_fallback_types:
        return
    _warned_fallback_types.add(policy_type)
    warnings.warn(
        f"{policy_type.__name__} does not implement probabilities_batch(); "
        "the vectorized backend is falling back to a per-row Python loop "
        "for it. Implement probabilities_batch(columns) to restore array "
        "speed (see DESIGN.md, 'Columnar evaluation engine').",
        RuntimeWarning,
        stacklevel=3,
    )


def reset_fallback_warnings() -> None:
    """Forget which policy types have been warned about (test helper)."""
    _warned_fallback_types.clear()
