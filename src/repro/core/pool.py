"""Persistent worker pool shared by chunk folds and bootstrap shards.

The parallel paths used to build a fresh ``ProcessPoolExecutor`` per
call, paying fork/teardown for every evaluation and every bootstrap
interval — and a fresh pool means fresh workers that re-attach every
shared segment and re-unpickle every job.  This module keeps **one**
lazily created executor for the whole process:

- :func:`get_pool` returns the singleton, growing it (by recreating)
  when a caller asks for more workers than it was built with.
- Workers cache job context (the once-pickled ``(reductions, …)``
  blob) by job key via :func:`job_payload`, so a job's context crosses
  the pickle machinery once per worker no matter how many chunks or
  shards it spans; shared segments are likewise attached once per
  worker (see :mod:`repro.core.shm`).
- :func:`reset_pool` discards a broken executor (a killed worker
  poisons the whole pool — ``BrokenProcessPool``); callers then fall
  back to bit-identical serial recomputation.
- An ``atexit`` hook shuts the pool down so worker processes never
  outlive the parent.

Per-task observability survives pool reuse because workers open a
*fresh* :class:`~repro.obs.tracing.Tracer` per traced task and ship
the span dict home with the result — nothing accumulates in worker
globals between tasks.  The watchtower layer rides the same contract:
monitored tasks run under a fresh
:class:`~repro.obs.monitors.MonitorSuite` and ship their mergeable
states home, profiled tasks under a fresh
:class:`~repro.obs.profiler.SpanProfiler` and ship their flame
tables; the parent absorbs both exactly where it grafts spans.  Pool
churn is itself telemetry: ``pool.created`` / ``pool.resets``
counters feed the dashboard, and coordinator-level retries feed the
``retry_storm`` monitor.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Optional

from repro.obs.metrics import get_metrics

__all__ = [
    "BrokenProcessPool",
    "get_pool",
    "job_payload",
    "new_job",
    "pool_size",
    "reset_pool",
    "shutdown_pool",
]

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0
_job_counter = itertools.count(1)

#: Worker-side cache of unpickled job blobs, keyed by job key.  Small:
#: a worker only ever serves a handful of concurrent jobs.
_JOB_CACHE: dict = {}
_JOB_CACHE_SIZE = 4


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent executor, sized for at least ``workers`` workers.

    Created lazily on first use; asking for more workers than the
    current pool has recreates it larger (asking for fewer reuses the
    existing, bigger pool).
    """
    global _pool, _pool_workers
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if _pool is not None and _pool_workers < workers:
        _shutdown(wait=False)
    if _pool is None:
        _pool = ProcessPoolExecutor(max_workers=workers)
        _pool_workers = workers
        get_metrics().counter("pool.created").inc()
    return _pool


def pool_size() -> int:
    """Worker count of the live pool (0 when no pool exists)."""
    return _pool_workers if _pool is not None else 0


def _shutdown(wait: bool) -> None:
    global _pool, _pool_workers
    pool, _pool, _pool_workers = _pool, None, 0
    if pool is not None:
        try:
            pool.shutdown(wait=wait, cancel_futures=True)
        except Exception:  # pragma: no cover - already-broken executors
            pass


def reset_pool() -> None:
    """Discard the pool (after ``BrokenProcessPool``); next use recreates.

    Safe to call when no pool exists.
    """
    _shutdown(wait=False)
    get_metrics().counter("pool.resets").inc()


def shutdown_pool() -> None:
    """Shut the pool down cleanly (process exit, or tests)."""
    _shutdown(wait=True)


atexit.register(shutdown_pool)


def new_job(context) -> tuple:
    """Serialize a job's shared context exactly once.

    Returns ``(job_key, blob)``.  The blob rides inside every task
    payload of the job, but workers unpickle it only on first sight
    (see :func:`job_payload`) — the per-task cost after that is the
    bytes transfer, not reconstruction.  Raising here (unpicklable
    policies/reductions) doubles as the picklability probe: callers
    catch and fall back to serial execution.
    """
    key = f"{os.getpid()}:{next(_job_counter)}"
    return key, pickle.dumps(context)


def job_payload(job_key: str, blob: bytes):
    """Worker-side: the job context, unpickled once per worker.

    Cache keyed by ``job_key`` (process id + counter, so keys never
    collide across parent restarts); a tiny LRU keeps concurrent jobs
    from thrashing each other.
    """
    cached = _JOB_CACHE.get(job_key)
    if cached is None:
        while len(_JOB_CACHE) >= _JOB_CACHE_SIZE:
            _JOB_CACHE.pop(next(iter(_JOB_CACHE)))
        cached = pickle.loads(blob)
        _JOB_CACHE[job_key] = cached
    return cached
