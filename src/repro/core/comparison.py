"""Policy comparison with finite-sample guarantees.

The decisions the methodology feeds are *comparative*: is the candidate
better than the incumbent, with enough confidence to justify a
deployment?  (§4: "this is already enough to conclude with high
confidence that the learned policy outperforms the default".)

Two tools:

- :func:`evaluate_with_bound` — one policy's IPS estimate with a
  finite-sample confidence interval (empirical-Bernstein on the IPS
  terms; valid for bounded rewards, no normality assumption).
- :func:`compare_policies` — a *paired* comparison: the difference of
  two policies' values estimated on the same log.  Pairing cancels the
  per-context reward noise shared by both candidates, so the
  difference CI is far tighter than differencing two independent CIs.

Both accept a ``backend=`` override (``"scalar"``, ``"vectorized"``,
or ``"chunked"``; see :mod:`repro.core.engine`) for the single pass
that computes the per-interaction IPS terms — on ``"chunked"`` the
term vector is assembled chunk by chunk, so the peak working set
stays O(chunk) plus the O(N) terms the bounds themselves need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.estimators.bounds import (
    ConfidenceInterval,
    empirical_bernstein_interval,
    hoeffding_interval,
)
from repro.core.estimators.ips import IPSEstimator
from repro.core.policies import Policy
from repro.core.types import Dataset


@dataclass(frozen=True)
class BoundedEstimate:
    """A point estimate with a finite-sample confidence interval."""

    policy_name: str
    value: float
    interval: ConfidenceInterval
    n: int

    def separated_from(self, other: "BoundedEstimate") -> bool:
        """Whether the two intervals are disjoint (a confident win)."""
        return (
            self.interval.high < other.interval.low
            or other.interval.high < self.interval.low
        )


def evaluate_with_bound(
    policy: Policy,
    dataset: Dataset,
    delta: float = 0.05,
    method: str = "bernstein",
    backend: Optional[str] = None,
) -> BoundedEstimate:
    """IPS estimate with a distribution-free confidence interval.

    ``method`` is ``"bernstein"`` (empirical Bernstein — tight when the
    IPS terms have low variance) or ``"hoeffding"``.  The value range
    of the IPS terms is ``reward_range.width / min propensity``, which
    both bounds assume.
    """
    terms = IPSEstimator(backend=backend).weighted_rewards(policy, dataset)
    value_range = dataset.reward_range.width / dataset.min_propensity()
    if method == "bernstein":
        interval = empirical_bernstein_interval(terms, delta, value_range)
    elif method == "hoeffding":
        interval = hoeffding_interval(terms, delta, value_range)
    else:
        raise ValueError(f"unknown method {method!r}")
    return BoundedEstimate(
        policy_name=policy.name,
        value=float(terms.mean()),
        interval=interval,
        n=len(dataset),
    )


@dataclass(frozen=True)
class PairedComparison:
    """The estimated value difference ``champion − challenger``."""

    champion_name: str
    challenger_name: str
    difference: float
    interval: ConfidenceInterval
    n: int

    def winner(self, maximize: bool = True) -> str:
        """The confidently better policy, or ``"inconclusive"``.

        A winner is declared only when the difference interval excludes
        zero.
        """
        if self.interval.low > 0.0:
            better_is_champion = maximize
        elif self.interval.high < 0.0:
            better_is_champion = not maximize
        else:
            return "inconclusive"
        return self.champion_name if better_is_champion else (
            self.challenger_name
        )


def compare_policies(
    champion: Policy,
    challenger: Policy,
    dataset: Dataset,
    delta: float = 0.05,
    backend: Optional[str] = None,
) -> PairedComparison:
    """Paired off-policy comparison on a shared exploration log.

    Computes per-datapoint difference terms
    ``(π₁(a|x) − π₂(a|x)) / p · r`` — datapoints where the candidates
    agree contribute exactly zero, so shared noise cancels instead of
    inflating the interval.
    """
    ips = IPSEstimator(backend=backend)
    champion_terms = ips.weighted_rewards(champion, dataset)
    challenger_terms = ips.weighted_rewards(challenger, dataset)
    differences = champion_terms - challenger_terms
    # Each difference term lies in ±(range / min propensity).
    value_range = 2.0 * dataset.reward_range.width / dataset.min_propensity()
    interval = empirical_bernstein_interval(differences, delta, value_range)
    return PairedComparison(
        champion_name=champion.name,
        challenger_name=challenger.name,
        difference=float(differences.mean()),
        interval=interval,
        n=len(dataset),
    )


def sufficient_log_size(
    champion: Policy,
    challenger: Policy,
    dataset: Dataset,
    delta: float = 0.05,
    backend: Optional[str] = None,
) -> float:
    """Rough N at which the current paired comparison would separate.

    Extrapolates the empirical variance of the difference terms into
    the empirical-Bernstein radius
    ``sqrt(2 v L / N) + 3 R L / N`` (L = log(3/δ), R the term range)
    and solves ``radius(N) = |difference|`` — a quadratic in
    ``1/sqrt(N)``.  ``inf`` when the observed difference is
    (numerically) zero.
    """
    ips = IPSEstimator(backend=backend)
    differences = (
        ips.weighted_rewards(champion, dataset)
        - ips.weighted_rewards(challenger, dataset)
    )
    gap = abs(float(differences.mean()))
    if gap < 1e-12:
        return float("inf")
    variance = float(differences.var(ddof=1)) if len(differences) > 1 else 0.0
    log_term = float(np.log(3.0 / delta))
    value_range = 2.0 * dataset.reward_range.width / dataset.min_propensity()
    # radius(N) = b·x + a·x² with x = 1/sqrt(N):
    a = 3.0 * value_range * log_term
    b = math.sqrt(2.0 * variance * log_term)
    x = (-b + math.sqrt(b**2 + 4.0 * a * gap)) / (2.0 * a)
    return 1.0 / x**2
