"""Report formatting for harvesting runs.

Harvesting ends in a decision meeting: someone reads a table of
offline estimates (and, for candidates that did get deployed, online
numbers) and picks what ships.  This module renders those tables —
plain text for terminals, Markdown for docs/PRs — plus a one-stop
summary of an exploration dataset's vital signs.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.estimators.base import EstimatorResult
from repro.core.types import Dataset


def text_table(headers: Sequence, rows: Sequence[Sequence]) -> str:
    """Fixed-width aligned text table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def markdown_table(headers: Sequence, rows: Sequence[Sequence]) -> str:
    """GitHub-flavored Markdown table."""
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    rule = "|" + "|".join("---" for _ in headers) + "|"
    body = [
        "| " + " | ".join(str(c) for c in row) + " |" for row in rows
    ]
    return "\n".join([head, rule] + body)


def dataset_summary(dataset: Dataset) -> dict:
    """Vital signs of an exploration dataset.

    Everything a reviewer asks before trusting estimates from it:
    volume, action coverage, the propensity floor (ε of Eq. 1), and
    the reward distribution.
    """
    if len(dataset) == 0:
        raise ValueError("empty dataset has no summary")
    actions = dataset.actions()
    rewards = dataset.rewards()
    counts = np.bincount(actions)
    observed_actions = int(np.count_nonzero(counts))
    declared_actions = (
        dataset.action_space.n_actions
        if dataset.action_space is not None
        else observed_actions
    )
    return {
        "n": len(dataset),
        "actions_declared": declared_actions,
        "actions_observed": observed_actions,
        "min_propensity": dataset.min_propensity(),
        "least_seen_action_share": float(counts[counts > 0].min()) / len(dataset),
        "reward_mean": float(rewards.mean()),
        "reward_min": float(rewards.min()),
        "reward_max": float(rewards.max()),
        "timespan": (
            float(dataset[-1].timestamp - dataset[0].timestamp)
            if len(dataset) > 1
            else 0.0
        ),
    }


def dataset_summary_text(dataset: Dataset) -> str:
    """The summary rendered as a small text table."""
    summary = dataset_summary(dataset)
    rows = [[key, f"{value:g}" if isinstance(value, float) else value]
            for key, value in summary.items()]
    return text_table(["quantity", "value"], rows)


def estimator_table(
    results: Mapping[str, EstimatorResult],
    markdown: bool = False,
) -> str:
    """Render policy → EstimatorResult rows with CIs and match rates.

    When any result carries reliability diagnostics (see
    :mod:`repro.core.diagnostics`), a ``reliability`` column is added
    with the per-estimate verdict — an ``UNRELIABLE`` row should never
    reach a decision meeting unflagged.
    """
    with_verdicts = any(
        result.diagnostics is not None for result in results.values()
    )
    headers = ["policy", "estimate", "95% CI", "n", "match rate"]
    if with_verdicts:
        headers.append("reliability")
    rows = []
    for name, result in results.items():
        lo, hi = result.confidence_interval()
        match = result.details.get("match_rate")
        row = [
            name,
            f"{result.value:.4f}",
            f"[{lo:.4f}, {hi:.4f}]",
            result.n,
            f"{match:.1%}" if match is not None else "-",
        ]
        if with_verdicts:
            row.append(
                result.diagnostics.verdict
                if result.diagnostics is not None
                else "-"
            )
        rows.append(row)
    renderer = markdown_table if markdown else text_table
    return renderer(headers, rows)


def diagnostics_table(
    results: Mapping[str, EstimatorResult],
    markdown: bool = False,
) -> str:
    """Per-policy reliability detail: ESS, weight tail, coverage, verdict.

    The companion drill-down to :func:`estimator_table`'s verdict
    column; rows without diagnostics render as dashes.
    """
    headers = [
        "policy", "verdict", "ESS", "max w", "coverage", "reasons",
    ]
    rows = []
    for name, result in results.items():
        d = result.diagnostics
        if d is None:
            rows.append([name, "-", "-", "-", "-", "-"])
            continue
        rows.append(
            [
                name,
                d.verdict,
                f"{d.effective_sample_size:.1f}"
                if d.effective_sample_size is not None
                else "-",
                f"{d.max_weight:.1f}" if d.max_weight is not None else "-",
                f"{d.support_coverage:.0%}",
                "; ".join(d.reasons) if d.reasons else "-",
            ]
        )
    renderer = markdown_table if markdown else text_table
    return renderer(headers, rows)


def chunked_evaluation_table(evaluation, markdown: bool = False) -> str:
    """Policy × estimator grid for a chunked out-of-core evaluation.

    Renders a
    :class:`~repro.core.engine.ChunkedEvaluation` — one row per policy,
    one ``value ±stderr`` column per estimator, with an UNRELIABLE
    ``!`` marker on estimates whose diagnostics tripped (the same
    convention as the CLI table).
    """
    headers = ["policy"] + list(evaluation.estimator_names)
    rows = []
    for name, results in zip(evaluation.policy_names, evaluation.results):
        cells = []
        for result in results:
            marker = "" if result.reliable else "!"
            cells.append(f"{result.value:.4f} ±{result.std_error:.4f}{marker}")
        rows.append([name] + cells)
    renderer = markdown_table if markdown else text_table
    return renderer(headers, rows)


def quarantine_table(quarantine, markdown: bool = False) -> str:
    """Per-reason rejection/repair counts for a validation quarantine."""
    headers = ["reason", "rejected", "repaired"]
    reasons = sorted(set(quarantine.counts) | set(quarantine.repairs))
    rows = [
        [
            reason,
            quarantine.counts.get(reason, 0),
            quarantine.repairs.get(reason, 0),
        ]
        for reason in reasons
    ]
    rows.append(["total", quarantine.n_rejected, quarantine.n_repaired])
    renderer = markdown_table if markdown else text_table
    return renderer(headers, rows)


def offline_online_table(
    entries: Mapping[str, tuple],
    unit: str = "",
    markdown: bool = False,
) -> str:
    """The Table 2 layout: policy | off-policy eval | online eval.

    ``entries`` maps policy name → ``(offline, online)``; either value
    may be None (e.g. candidates never deployed).
    """
    headers = ["policy", "off-policy eval", "online eval"]

    def fmt(value: Optional[float]) -> str:
        return f"{value:.3f}{unit}" if value is not None else "-"

    rows = [
        [name, fmt(offline), fmt(online)]
        for name, (offline, online) in entries.items()
    ]
    renderer = markdown_table if markdown else text_table
    return renderer(headers, rows)
