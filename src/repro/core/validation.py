"""Log validation and quarantine — the guard at the data boundary.

The paper's methodology is only sound when the harvested tuples
``⟨x, a, r, p⟩`` satisfy its assumptions; real production logs violate
them constantly (§5), and mundanely: truncated lines, missing fields,
zero or out-of-range propensities, actions outside the eligible set.
SAYER and the contextual-bandit productization literature both report
that guarding this boundary is the hard part of shipping these
systems.  This module is that guard:

- :class:`RecordValidator` — composable per-record rules (parseable,
  schema-complete, propensity in (0, 1], action in the eligible set,
  reward finite/in range, monotone timestamps) that classify each raw
  record as clean, repairable, or rejected.
- :class:`Quarantine` — collects rejected records *with reasons*
  instead of crashing mid-file, and renders a per-reason report.
- Three processing modes, wired through
  :meth:`repro.core.types.Dataset.load_jsonl`,
  :meth:`repro.core.harvest.HarvestPipeline.build_dataset`,
  :class:`repro.core.streaming.ValidatedInteractionStream`, and the
  ``python -m repro evaluate`` CLI:

  - ``"strict"`` — first bad record raises a :class:`ValueError`
    naming the source and 1-based line number;
  - ``"quarantine"`` — bad records are set aside with a reason and
    processing continues;
  - ``"repair"`` — fixable defects (clampable propensities, clippable
    rewards, non-monotone timestamps) are repaired and counted; the
    rest are quarantined.
"""

from __future__ import annotations

import json
import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

from repro.core.types import (
    ActionSpace,
    Context,
    Interaction,
    RewardRange,
)
from repro.obs.metrics import get_metrics
from repro.obs.monitors import NULL_MONITORS, get_monitors

#: Rejection reason codes, used as quarantine bucket keys.
UNPARSEABLE = "unparseable"
SCHEMA = "schema"
PROPENSITY = "propensity"
ACTION = "action"
REWARD = "reward"
TIMESTAMP = "timestamp"
#: Ledger-chain rejections (hash binding broken, tampered content);
#: same code as :data:`repro.audit.ledger.LEDGER`.
LEDGER = "ledger"

REASONS = (UNPARSEABLE, SCHEMA, PROPENSITY, ACTION, REWARD, TIMESTAMP, LEDGER)

#: The recognized processing modes.
MODES = ("strict", "quarantine", "repair")


def check_mode(mode: str) -> str:
    """Validate a processing-mode name."""
    if mode not in MODES:
        raise ValueError(f"unknown validation mode {mode!r}; expected one of {MODES}")
    return mode


@dataclass(frozen=True)
class RejectedRecord:
    """One record the validator refused, with provenance.

    ``line_number`` is 1-based; 0 means the source had no line numbers
    (e.g. an in-memory record stream, where it is the record index + 1).
    """

    line_number: int
    reason: str
    detail: str
    raw: str

    def __str__(self) -> str:
        return f"line {self.line_number}: {self.reason}: {self.detail}"


class Quarantine:
    """Rejected records, collected instead of crashing the pipeline.

    Keeps per-reason counts for every rejection and retains up to
    ``max_kept`` full :class:`RejectedRecord` examples (counting always
    continues past the cap — a 10%-corrupt billion-line log must not
    hold a billion lines of garbage in memory).

    Every rejection and repair is also mirrored to the active metrics
    registry (:mod:`repro.obs.metrics`) as ``validation.rejected`` /
    ``validation.repaired`` counters labeled by reason, and every
    rejection to the active monitor suite
    (:mod:`repro.obs.monitors` — the quarantine-rate and
    ledger-break-rate monitors) — both no-ops until a run installs
    them.  ``record_metrics=False`` opts a quarantine out of the
    mirrors; the chunked engine uses it for its discovery pass so a
    two-pass run does not double-count.
    """

    def __init__(self, max_kept: int = 1000, record_metrics: bool = True) -> None:
        if max_kept < 0:
            raise ValueError("max_kept must be non-negative")
        self.max_kept = max_kept
        self.record_metrics = record_metrics
        self.rejected: list[RejectedRecord] = []
        self.counts: Counter = Counter()
        self.repairs: Counter = Counter()

    # -- recording -----------------------------------------------------------

    def add(self, line_number: int, reason: str, detail: str, raw: str = "") -> None:
        """Record one rejection."""
        self.counts[reason] += 1
        if self.record_metrics:
            get_metrics().counter("validation.rejected", reason=reason).inc()
            get_monitors().observe_rejected(reason)
        if len(self.rejected) < self.max_kept:
            self.rejected.append(
                RejectedRecord(line_number, reason, detail, raw[:200])
            )

    def note_repair(self, reason: str) -> None:
        """Record one successful in-place repair (repair mode)."""
        self.repairs[reason] += 1
        if self.record_metrics:
            get_metrics().counter("validation.repaired", reason=reason).inc()

    # -- inspection ----------------------------------------------------------

    @property
    def n_rejected(self) -> int:
        """Total records rejected (including those past ``max_kept``)."""
        return sum(self.counts.values())

    @property
    def n_repaired(self) -> int:
        """Total repairs applied (repair mode only)."""
        return sum(self.repairs.values())

    def __len__(self) -> int:
        return self.n_rejected

    def __bool__(self) -> bool:
        # A quarantine is "truthy" when anything landed in it; an empty
        # quarantine is falsy so `if dataset.quarantine:` reads naturally.
        return self.n_rejected > 0 or self.n_repaired > 0

    def counts_by_reason(self) -> dict[str, int]:
        """Rejection counts keyed by reason code."""
        return dict(self.counts)

    def report(self) -> dict:
        """JSON-serializable summary of everything quarantined."""
        return {
            "n_rejected": self.n_rejected,
            "n_repaired": self.n_repaired,
            "by_reason": dict(self.counts),
            "repairs_by_reason": dict(self.repairs),
            "examples": [
                {
                    "line": r.line_number,
                    "reason": r.reason,
                    "detail": r.detail,
                    "raw": r.raw,
                }
                for r in self.rejected[:10]
            ],
        }

    def summary_text(self) -> str:
        """Human-readable per-reason report for terminals."""
        lines = [
            f"quarantine: {self.n_rejected} record(s) rejected, "
            f"{self.n_repaired} repaired"
        ]
        for reason in sorted(self.counts):
            lines.append(f"  {reason:<12s} {self.counts[reason]}")
        for reason in sorted(self.repairs):
            lines.append(f"  repaired/{reason:<12s} {self.repairs[reason]}")
        for example in self.rejected[:3]:
            lines.append(f"  e.g. {example}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Quarantine(rejected={self.n_rejected}, "
            f"repaired={self.n_repaired})"
        )


def check_values(
    context: Optional[Context],
    action: object,
    reward: object,
    propensity: object,
    eligible: Optional[Sequence[int]] = None,
    reward_range: Optional[RewardRange] = None,
) -> list[tuple[str, str]]:
    """Value-level rules shared by every validation entry point.

    Returns ``(reason, detail)`` issues; empty means the tuple is a
    legal exploration datapoint.  Used both on parsed JSONL records and
    on the harvest pipeline's scavenged-record → propensity-model path.
    """
    issues: list[tuple[str, str]] = []
    # Action: an integer, non-negative, inside the eligible set.
    try:
        action_id = int(action)  # type: ignore[arg-type]
        if isinstance(action, float) and not float(action).is_integer():
            raise ValueError(action)
    except (TypeError, ValueError):
        issues.append((ACTION, f"action {action!r} is not an integer"))
    else:
        if action_id < 0:
            issues.append((ACTION, f"action {action_id} is negative"))
        elif eligible is not None and action_id not in eligible:
            issues.append(
                (ACTION, f"action {action_id} not in eligible set {list(eligible)}")
            )
    # Reward: finite float, inside the declared range when one is known.
    try:
        reward_value = float(reward)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        issues.append((REWARD, f"reward {reward!r} is not a number"))
    else:
        if not math.isfinite(reward_value):
            issues.append((REWARD, f"reward {reward_value} is not finite"))
        elif reward_range is not None and not (
            reward_range.low <= reward_value <= reward_range.high
        ):
            issues.append(
                (
                    REWARD,
                    f"reward {reward_value:g} outside declared range "
                    f"[{reward_range.low:g}, {reward_range.high:g}]",
                )
            )
    # Propensity: a probability, strictly positive (p = 0 breaks IPS).
    try:
        p = float(propensity)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        issues.append((PROPENSITY, f"propensity {propensity!r} is not a number"))
    else:
        if not math.isfinite(p):
            issues.append((PROPENSITY, f"propensity {p} is not finite"))
        elif not 0.0 < p <= 1.0:
            issues.append((PROPENSITY, f"propensity {p:g} outside (0, 1]"))
    return issues


class RecordValidator:
    """Composable per-record rules over raw (parsed-JSON) log records.

    The built-in rules mirror the exploration-tuple contract: schema
    completeness, a well-formed context, ``propensity ∈ (0, 1]``,
    ``action`` in the eligible set, ``reward`` finite and in range, and
    (optionally) monotone timestamps.  ``extra_rules`` appends custom
    callables ``record -> Optional[(reason, detail)]``.

    The monotone-timestamp rule is stateful: call :meth:`reset` before
    reusing a validator on a new log.
    """

    REQUIRED_FIELDS = ("context", "action", "reward", "propensity")

    def __init__(
        self,
        action_space: Optional[ActionSpace] = None,
        reward_range: Optional[RewardRange] = None,
        monotone_timestamps: bool = False,
        repair_propensity_floor: float = 1e-3,
        extra_rules: Sequence = (),
    ) -> None:
        if not 0.0 < repair_propensity_floor <= 1.0:
            raise ValueError("repair_propensity_floor must be in (0, 1]")
        self.action_space = action_space
        self.reward_range = reward_range
        self.monotone_timestamps = monotone_timestamps
        self.repair_propensity_floor = repair_propensity_floor
        self.extra_rules = list(extra_rules)
        self._last_timestamp: Optional[float] = None

    def reset(self) -> None:
        """Forget cross-record state (the last accepted timestamp)."""
        self._last_timestamp = None

    # -- rule evaluation -----------------------------------------------------

    def check(self, record: object) -> list[tuple[str, str]]:
        """All rule violations for one parsed record (empty = clean).

        Pure with respect to validator state: the monotone-timestamp
        watermark only advances via :meth:`observe`, which the drivers
        call after a record is *accepted*.
        """
        if not isinstance(record, Mapping):
            return [(SCHEMA, f"record is {type(record).__name__}, not an object")]
        missing = [f for f in self.REQUIRED_FIELDS if f not in record]
        if missing:
            return [(SCHEMA, f"missing field(s) {missing}")]
        issues: list[tuple[str, str]] = []
        context = record["context"]
        eligible: Optional[Sequence[int]] = None
        if not isinstance(context, Mapping):
            issues.append(
                (SCHEMA, f"context is {type(context).__name__}, not a mapping")
            )
            context = None
        else:
            try:
                context = {str(k): float(v) for k, v in context.items()}
            except (TypeError, ValueError):
                issues.append((SCHEMA, "context has non-numeric feature values"))
                context = None
        if context is not None and self.action_space is not None:
            try:
                eligible = self.action_space.actions(context)
            except (KeyError, ValueError, TypeError):
                eligible = list(range(self.action_space.n_actions))
        issues.extend(
            check_values(
                context,
                record["action"],
                record["reward"],
                record["propensity"],
                eligible=eligible,
                reward_range=self.reward_range,
            )
        )
        full_rewards = record.get("full_rewards")
        if full_rewards is not None:
            try:
                if not all(math.isfinite(float(r)) for r in full_rewards):
                    issues.append((REWARD, "full_rewards contains non-finite values"))
            except (TypeError, ValueError):
                issues.append((REWARD, "full_rewards is not a numeric sequence"))
        if self.monotone_timestamps and self._last_timestamp is not None:
            try:
                timestamp = float(record.get("timestamp", 0.0))
            except (TypeError, ValueError):
                timestamp = None
                issues.append((TIMESTAMP, "timestamp is not a number"))
            if timestamp is not None and timestamp < self._last_timestamp:
                issues.append(
                    (
                        TIMESTAMP,
                        f"timestamp {timestamp:g} precedes previous "
                        f"{self._last_timestamp:g}",
                    )
                )
        for rule in self.extra_rules:
            issue = rule(record)
            if issue is not None:
                issues.append(tuple(issue))  # type: ignore[arg-type]
        return issues

    def observe(self, record: Mapping) -> None:
        """Advance cross-record state after a record is accepted."""
        if self.monotone_timestamps:
            try:
                self._last_timestamp = float(record.get("timestamp", 0.0))
            except (TypeError, ValueError):  # pragma: no cover - checked earlier
                pass

    # -- repair --------------------------------------------------------------

    def repair(
        self, record: Mapping, issues: Sequence[tuple[str, str]]
    ) -> tuple[dict, list[tuple[str, str]], list[str]]:
        """Fix what is fixable; return (record, remaining issues, repairs).

        Repairable defects:

        - propensity > 1 → clamped to 1; propensity ≤ 0 (but numeric and
          finite) → raised to ``repair_propensity_floor`` — a recorded
          guess that keeps the record usable at bounded weight;
        - reward outside the declared range → clipped into it;
        - non-monotone timestamp → raised to the previous timestamp.

        Schema and action defects are structural and never repaired.
        """
        repaired = dict(record)
        remaining: list[tuple[str, str]] = []
        applied: list[str] = []
        for reason, detail in issues:
            if reason == PROPENSITY:
                try:
                    p = float(repaired["propensity"])
                except (TypeError, ValueError):
                    remaining.append((reason, detail))
                    continue
                if not math.isfinite(p):
                    remaining.append((reason, detail))
                elif p > 1.0:
                    repaired["propensity"] = 1.0
                    applied.append(PROPENSITY)
                else:  # p <= 0: floor it
                    repaired["propensity"] = self.repair_propensity_floor
                    applied.append(PROPENSITY)
            elif reason == REWARD and self.reward_range is not None:
                try:
                    r = float(repaired["reward"])
                except (TypeError, ValueError):
                    remaining.append((reason, detail))
                    continue
                if math.isfinite(r):
                    repaired["reward"] = self.reward_range.clip(r)
                    applied.append(REWARD)
                else:
                    remaining.append((reason, detail))
            elif reason == TIMESTAMP and self._last_timestamp is not None:
                try:
                    float(repaired.get("timestamp", 0.0))
                except (TypeError, ValueError):
                    remaining.append((reason, detail))
                    continue
                repaired["timestamp"] = self._last_timestamp
                applied.append(TIMESTAMP)
            else:
                remaining.append((reason, detail))
        return repaired, remaining, applied


def validated_interactions(
    source: Iterable[Union[str, Mapping]],
    mode: str = "strict",
    validator: Optional[RecordValidator] = None,
    quarantine: Optional[Quarantine] = None,
    source_name: str = "<stream>",
    chain=None,
) -> Iterator[Interaction]:
    """Validate a stream of JSONL lines (or parsed dicts) into Interactions.

    The shared driver behind every validated entry point.  ``source``
    may mix raw JSONL strings and already-parsed mappings.  In strict
    mode the first defect raises a :class:`ValueError` naming
    ``source_name`` and the 1-based line number; otherwise defects land
    in ``quarantine`` (pass one in to read the report afterwards).
    Blank lines are skipped without counting as rejections.

    ``chain`` (a :class:`repro.audit.ledger.ChainFollower`) adds
    tamper-evidence on top of the value rules: each record's ledger
    hash binding is checked *before* any repair mutates it, broken
    bindings are rejected under the :data:`LEDGER` reason (never
    repaired — a record that fails its own hash has no trustworthy
    content to fix), and the chain head advances over the log as
    written so a single bad record localizes instead of poisoning its
    suffix.
    """
    check_mode(mode)
    validator = validator or RecordValidator()
    validator.reset()
    quarantine = quarantine if quarantine is not None else Quarantine()
    monitors = get_monitors() if quarantine.record_metrics else NULL_MONITORS
    accepted = 0
    for line_number, item in enumerate(source, start=1):
        raw = ""
        if isinstance(item, str):
            raw = item.strip()
            if not raw:
                continue
            try:
                record: object = json.loads(raw)
            except json.JSONDecodeError as error:
                if mode == "strict":
                    raise ValueError(
                        f"{source_name}: invalid JSON at line {line_number}: "
                        f"{error.msg}"
                    ) from error
                quarantine.add(line_number, UNPARSEABLE, error.msg, raw)
                continue
        else:
            record = item
        chain_issues: list[tuple[str, str]] = []
        if chain is not None and isinstance(record, Mapping):
            # Check the binding on the ORIGINAL record (repair must not
            # resurrect a tampered one), then advance the head over the
            # log as written, accepted or not.
            chain_issues = list(chain.check(record))
            chain.observe(record)
        if chain_issues:
            reason, detail = chain_issues[0]
            if mode == "strict":
                raise ValueError(
                    f"{source_name}: line {line_number}: {reason}: {detail}"
                )
            quarantine.add(
                line_number, reason,
                "; ".join(d for _, d in chain_issues), raw,
            )
            continue
        issues = validator.check(record)
        if issues and mode == "repair" and isinstance(record, Mapping):
            record, issues, applied = validator.repair(record, issues)
            for reason in applied:
                quarantine.note_repair(reason)
        if issues:
            reason, detail = issues[0]
            if mode == "strict":
                raise ValueError(
                    f"{source_name}: line {line_number}: {reason}: {detail}"
                )
            quarantine.add(
                line_number, reason, "; ".join(d for _, d in issues), raw
            )
            continue
        try:
            interaction = Interaction.from_dict(record)  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as error:
            # Belt and braces: whatever the rules missed, the Interaction
            # constructor's own invariants still hold the line.
            if mode == "strict":
                raise ValueError(
                    f"{source_name}: line {line_number}: {error}"
                ) from error
            quarantine.add(line_number, SCHEMA, str(error), raw)
            continue
        validator.observe(record)  # type: ignore[arg-type]
        if monitors.enabled:
            # Batched so quarantine-rate denominators cost one fold per
            # 1024 accepted rows, not one per row.
            accepted += 1
            if accepted >= 1024:
                monitors.observe_rows(accepted)
                accepted = 0
        yield interaction
    if accepted:
        monitors.observe_rows(accepted)
