"""Propensity inference (step 2 of the methodology).

Off-policy evaluation needs the probability ``p`` with which the
logging system chose each logged action.  §3 identifies two routes:

- **Code inspection**: the randomization is visible in the source
  (e.g. Redis samples eviction candidates uniformly; Nginx `random`
  picks uniformly) — :class:`DeclaredPropensityModel`.
- **Regression on the scavenged ⟨x, a⟩ data**: "a more robust approach
  is to do a regression ... to learn the probability distribution over
  actions" — :class:`RegressionPropensityModel` (softmax regression)
  and the context-free :class:`EmpiricalPropensityModel`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Optional, Sequence

import numpy as np

from repro.core.features import Featurizer
from repro.core.policies import Policy
from repro.core.types import Context, Dataset, Interaction


class PropensityModel(ABC):
    """Interface: the logging policy's action distribution."""

    @abstractmethod
    def propensity(
        self, context: Context, action: int, actions: Sequence[int]
    ) -> float:
        """Probability the logging policy chose ``action`` in ``context``."""

    def annotate(
        self,
        records: Sequence[tuple[Context, int, float]],
        actions_of: Optional[Sequence[Sequence[int]]] = None,
        n_actions: Optional[int] = None,
    ) -> Dataset:
        """Turn scavenged ``(x, a, r)`` triples into a full dataset.

        ``actions_of`` optionally supplies the eligible action set per
        record; otherwise ``n_actions`` (or the observed max) defines a
        shared one.
        """
        if not records:
            raise ValueError("no records to annotate")
        if n_actions is None:
            n_actions = max(a for _, a, _ in records) + 1
        shared = list(range(n_actions))
        dataset = Dataset()
        for index, (context, action, reward) in enumerate(records):
            eligible = (
                list(actions_of[index]) if actions_of is not None else shared
            )
            p = self.propensity(context, action, eligible)
            dataset.append(
                Interaction(
                    context=context,
                    action=action,
                    reward=reward,
                    propensity=p,
                    timestamp=float(index),
                )
            )
        return dataset


class DeclaredPropensityModel(PropensityModel):
    """Propensities read off a known logging policy (code inspection)."""

    def __init__(self, logging_policy: Policy) -> None:
        self.logging_policy = logging_policy

    def propensity(
        self, context: Context, action: int, actions: Sequence[int]
    ) -> float:
        p = self.logging_policy.probability_of(context, actions, action)
        if p <= 0.0:
            raise ValueError(
                f"declared policy gives zero probability to logged action "
                f"{action}; the log is inconsistent with the declaration"
            )
        return p


class EmpiricalPropensityModel(PropensityModel):
    """Context-free action frequencies, with add-one smoothing.

    Correct when the logging policy ignores context (uniform random,
    round-robin marginals, hash routing over context-free keys);
    biased otherwise — use the regression model then.
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self._total = 0

    def fit(self, actions: Sequence[int]) -> "EmpiricalPropensityModel":
        """Count action frequencies from the scavenged log."""
        if len(actions) == 0:
            raise ValueError("cannot fit on zero actions")
        self._counts = Counter(int(a) for a in actions)
        self._total = len(actions)
        return self

    def propensity(
        self, context: Context, action: int, actions: Sequence[int]
    ) -> float:
        if self._total == 0:
            raise RuntimeError("model must be fitted before use")
        # Add-one smoothing keeps every eligible action's propensity
        # positive, as IPS requires.
        return (self._counts.get(action, 0) + 1.0) / (
            self._total + len(actions)
        )


class RegressionPropensityModel(PropensityModel):
    """Softmax (multinomial logistic) regression  P(a | x).

    Trained by SGD on the scavenged ``(x, a)`` pairs.  A propensity
    floor keeps estimates away from 0 so that downstream IPS weights
    stay finite even when the model is overconfident.
    """

    def __init__(
        self,
        n_actions: int,
        featurizer: Optional[Featurizer] = None,
        learning_rate: float = 0.5,
        epochs: int = 5,
        floor: float = 1e-3,
    ) -> None:
        if n_actions <= 1:
            raise ValueError("need at least two actions to discriminate")
        if not 0.0 < floor < 1.0:
            raise ValueError("floor must be in (0, 1)")
        self.n_actions = n_actions
        self.featurizer = featurizer or Featurizer(n_dims=32)
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.floor = floor
        self.weights = np.zeros((n_actions, self.featurizer.n_dims))
        self._fitted = False

    def _softmax(self, x_vec: np.ndarray) -> np.ndarray:
        logits = self.weights @ x_vec
        logits -= logits.max()
        exp = np.exp(logits)
        return exp / exp.sum()

    def fit(
        self, contexts: Sequence[Context], actions: Sequence[int]
    ) -> "RegressionPropensityModel":
        """SGD on the multinomial log-likelihood of the logged actions."""
        if len(contexts) != len(actions):
            raise ValueError("contexts and actions length mismatch")
        if not contexts:
            raise ValueError("cannot fit on zero examples")
        X = [self.featurizer.vector(c) for c in contexts]
        n = len(X)
        step = 0
        for _ in range(self.epochs):
            for x_vec, action in zip(X, actions):
                probs = self._softmax(x_vec)
                gradient_scale = probs.copy()
                gradient_scale[action] -= 1.0
                rate = self.learning_rate / np.sqrt(1.0 + step)
                self.weights -= rate * np.outer(gradient_scale, x_vec)
                step += 1
        del n
        self._fitted = True
        return self

    def distribution(self, context: Context) -> np.ndarray:
        """Estimated action distribution at ``context`` (floored)."""
        if not self._fitted:
            raise RuntimeError("model must be fitted before use")
        probs = self._softmax(self.featurizer.vector(context))
        probs = np.maximum(probs, self.floor)
        return probs / probs.sum()

    def propensity(
        self, context: Context, action: int, actions: Sequence[int]
    ) -> float:
        probs = self.distribution(context)
        eligible = list(actions)
        restricted = np.array([probs[a] for a in eligible])
        restricted /= restricted.sum()
        return float(restricted[eligible.index(action)])
