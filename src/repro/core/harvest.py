"""The harvesting pipeline: scavenge → infer → evaluate/optimize (§3).

:class:`LogScavenger` pulls ``⟨x, a, r⟩`` triples out of raw log
records via user-supplied extractors (each simulated system ships its
own pre-configured scavenger, e.g.
:func:`repro.loadbalance.harvest.access_log_scavenger`).
:class:`HarvestPipeline` chains a scavenger with a propensity model and
an off-policy estimator into the paper's three-step methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.core.estimators.base import EstimatorResult, OffPolicyEstimator
from repro.core.estimators.ips import IPSEstimator
from repro.core.learners.cb import PolicyClassOptimizer
from repro.core.policies import Policy, PolicyClass
from repro.core.propensity import PropensityModel
from repro.core.types import ActionSpace, Context, Dataset, Interaction, RewardRange


@dataclass
class ScavengedRecord:
    """One ``⟨x, a, r⟩`` triple extracted from a log, pre-propensity."""

    context: Context
    action: int
    reward: float
    timestamp: float = 0.0
    eligible_actions: Optional[Sequence[int]] = None


class LogScavenger:
    """Step 1: extract ``⟨x, a, r⟩`` from raw log records.

    Parameterized by extractor callbacks so it adapts to any log
    format.  Records for which any extractor raises or returns ``None``
    are dropped and counted (real logs are messy; the count surfaces
    how lossy the scavenge was).
    """

    def __init__(
        self,
        context_of: Callable[[dict], Optional[Context]],
        action_of: Callable[[dict], Optional[int]],
        reward_of: Callable[[dict], Optional[float]],
        timestamp_of: Optional[Callable[[dict], float]] = None,
        eligible_of: Optional[Callable[[dict], Sequence[int]]] = None,
    ) -> None:
        self._context_of = context_of
        self._action_of = action_of
        self._reward_of = reward_of
        self._timestamp_of = timestamp_of
        self._eligible_of = eligible_of
        self.dropped = 0

    def scavenge(self, records: Iterable[dict]) -> list[ScavengedRecord]:
        """Extract all parseable records, counting drops."""
        out: list[ScavengedRecord] = []
        self.dropped = 0
        for index, record in enumerate(records):
            try:
                context = self._context_of(record)
                action = self._action_of(record)
                reward = self._reward_of(record)
            except (KeyError, ValueError, TypeError):
                self.dropped += 1
                continue
            if context is None or action is None or reward is None:
                self.dropped += 1
                continue
            timestamp = (
                self._timestamp_of(record)
                if self._timestamp_of is not None
                else float(index)
            )
            eligible = (
                list(self._eligible_of(record))
                if self._eligible_of is not None
                else None
            )
            out.append(
                ScavengedRecord(context, int(action), float(reward), timestamp, eligible)
            )
        return out


@dataclass
class HarvestReport:
    """Summary of one full pipeline run."""

    n_records: int
    n_scavenged: int
    n_dropped: int
    min_propensity: float
    evaluations: dict[str, EstimatorResult] = field(default_factory=dict)


class HarvestPipeline:
    """Steps 1–3 composed: scavenge logs, infer propensities, evaluate.

    Typical use::

        pipeline = HarvestPipeline(scavenger, propensity_model,
                                   action_space=space)
        dataset = pipeline.build_dataset(log_records)
        result = pipeline.evaluate(candidate_policy, dataset)
    """

    def __init__(
        self,
        scavenger: LogScavenger,
        propensity_model: PropensityModel,
        action_space: Optional[ActionSpace] = None,
        reward_range: Optional[RewardRange] = None,
        estimator: Optional[OffPolicyEstimator] = None,
    ) -> None:
        self.scavenger = scavenger
        self.propensity_model = propensity_model
        self.action_space = action_space
        self.reward_range = reward_range
        self.estimator = estimator or IPSEstimator()

    def build_dataset(self, records: Iterable[dict]) -> Dataset:
        """Steps 1 and 2: raw log records → exploration dataset."""
        scavenged = self.scavenger.scavenge(records)
        if not scavenged:
            raise ValueError("scavenger extracted no usable records")
        dataset = Dataset(
            action_space=self.action_space, reward_range=self.reward_range
        )
        for record in scavenged:
            if record.eligible_actions is not None:
                eligible = list(record.eligible_actions)
            elif self.action_space is not None:
                eligible = self.action_space.actions(record.context)
            else:
                eligible = list(range(max(r.action for r in scavenged) + 1))
            propensity = self.propensity_model.propensity(
                record.context, record.action, eligible
            )
            dataset.append(
                Interaction(
                    context=record.context,
                    action=record.action,
                    reward=record.reward,
                    propensity=propensity,
                    timestamp=record.timestamp,
                )
            )
        return dataset

    def evaluate(self, policy: Policy, dataset: Dataset) -> EstimatorResult:
        """Step 3a: off-policy evaluation of one candidate."""
        return self.estimator.estimate(policy, dataset)

    def optimize(
        self,
        policy_class: PolicyClass,
        dataset: Dataset,
        maximize: bool = True,
    ) -> tuple[Policy, float]:
        """Step 3b: offline optimization over a policy class."""
        optimizer = PolicyClassOptimizer(self.estimator, maximize=maximize)
        return optimizer.optimize(policy_class, dataset)

    def run(
        self,
        records: Sequence[dict],
        candidates: Sequence[Policy],
    ) -> HarvestReport:
        """End-to-end: scavenge, infer, evaluate every candidate."""
        records = list(records)
        dataset = self.build_dataset(records)
        evaluations = {
            policy.name: self.evaluate(policy, dataset) for policy in candidates
        }
        return HarvestReport(
            n_records=len(records),
            n_scavenged=len(dataset),
            n_dropped=self.scavenger.dropped,
            min_propensity=dataset.min_propensity(),
            evaluations=evaluations,
        )
