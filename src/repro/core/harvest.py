"""The harvesting pipeline: scavenge → infer → evaluate/optimize (§3).

:class:`LogScavenger` pulls ``⟨x, a, r⟩`` triples out of raw log
records via user-supplied extractors (each simulated system ships its
own pre-configured scavenger, e.g.
:func:`repro.loadbalance.harvest.access_log_scavenger`).
:class:`HarvestPipeline` chains a scavenger with a propensity model and
an off-policy estimator into the paper's three-step methodology.

The module also hosts the **batch harvest engine** — the generation
side of the paper's pitch that exploration data is cheap at scale.
:func:`harvest_columns` drives any policy's
:meth:`~repro.core.policies.Policy.act_batch` over a context stream in
configurable batches and writes the sampled ``⟨x, a, r, p⟩`` tuples
straight into a :class:`~repro.core.columns.DatasetColumns` view, so
generated logs enter the vectorized estimators without a per-row
object in between.  :func:`harvest_rows` is the scalar reference
(legacy ``act()`` per row); :func:`harvest_dataset` picks between them.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.audit.ledger import DecisionLedger
from repro.audit.streams import StreamRNG
from repro.core.columns import (
    DatasetColumns,
    DecisionBatch,
    EligibleSpec,
    is_per_row_eligibility,
)
from repro.core.estimators.base import EstimatorResult, OffPolicyEstimator
from repro.core.estimators.ips import IPSEstimator
from repro.core.learners.cb import PolicyClassOptimizer
from repro.core.policies import Policy, PolicyClass
from repro.core.propensity import PropensityModel
from repro.core.types import ActionSpace, Context, Dataset, Interaction, RewardRange
from repro.core.validation import (
    PROPENSITY,
    REWARD,
    Quarantine,
    check_mode,
    check_values,
)
from repro.obs.metrics import get_metrics
from repro.obs.monitors import get_monitors
from repro.obs.tracing import get_tracer

#: Default number of decisions sampled per ``act_batch`` call.
DEFAULT_BATCH_SIZE = 8192

#: ``reward_fn(indices, actions) -> rewards``: vectorized outcome lookup
#: for the rows at ``indices`` (positions in the context stream) under
#: the sampled ``actions``.  Called once per batch.
RewardFn = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: Harvest randomness: a plain seeded generator, or an audit-grade
#: sharded stream (:class:`repro.audit.streams.StreamRNG`) whose draws
#: re-derive per shard for fork equivalence.
HarvestRNG = Union[np.random.Generator, StreamRNG]


def batch_segments(
    rng: HarvestRNG, start: int, stop: int
) -> Iterator[Tuple[int, int, np.random.Generator]]:
    """Split batch rows ``[start, stop)`` into generator segments.

    A plain generator is one segment; a :class:`StreamRNG` splits at
    shard boundaries so the derivation grid stays independent of the
    batch grid — the key to keeping the any-batch-size determinism
    contract while every shard remains re-derivable in isolation.
    """
    if isinstance(rng, StreamRNG):
        yield from rng.segments(start, stop)
    else:
        yield start, stop, rng


def _resolve_eligibility(
    contexts: Sequence[Context],
    eligible: Optional[EligibleSpec],
    action_space: Optional[ActionSpace],
) -> tuple[EligibleSpec, bool, int]:
    """Normalize harvest eligibility → ``(spec, per_row, n_actions)``."""
    if eligible is None:
        if action_space is None:
            raise ValueError("harvest needs eligible actions or an action space")
        if action_space.restricted:
            eligible = [
                tuple(action_space.actions(context)) for context in contexts
            ]
        else:
            eligible = tuple(range(action_space.n_actions))
    per_row = is_per_row_eligibility(eligible)
    if action_space is not None:
        n_actions = action_space.n_actions
    elif per_row:
        n_actions = max((max(row) for row in eligible), default=0) + 1
    else:
        n_actions = max(eligible, default=0) + 1
    return eligible, per_row, int(n_actions)


def harvest_columns(
    policy: Policy,
    contexts: Sequence[Context],
    reward_fn: RewardFn,
    rng: HarvestRNG,
    *,
    eligible: Optional[EligibleSpec] = None,
    action_space: Optional[ActionSpace] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    reward_range: Optional[RewardRange] = None,
    scenario: str = "generic",
    timestamps: Optional[np.ndarray] = None,
    ledger: Optional[DecisionLedger] = None,
) -> DatasetColumns:
    """Generate an exploration log in batches; return it columnar.

    The harvest-side hot path: for each batch of up to ``batch_size``
    contexts, one :meth:`~repro.core.policies.Policy.act_batch` call
    samples actions and propensities, one ``reward_fn`` call computes
    outcomes, and the results land in preallocated arrays — no per-row
    ``Interaction`` objects anywhere.  The output
    :class:`~repro.core.columns.DatasetColumns` feeds the vectorized
    estimators directly (use ``.to_dataset()`` when per-row objects are
    required).

    Determinism contract: each batch consumes the generator exactly as
    ``act_batch`` specifies (one uniform per row, in row order, for
    randomizing policies), so **the produced log is bit-identical for
    any** ``batch_size`` ≥ 1 given the same seeded generator — "per
    row" is just ``batch_size=1`` through this same engine.  (The
    legacy per-row reference :func:`harvest_rows` draws through
    ``Generator.choice`` and is a different, equally valid stream.)

    Audit hooks: ``rng`` may be a
    :class:`~repro.audit.streams.StreamRNG`, in which case each batch
    is internally split at shard boundaries — the derivation grid is
    independent of the batch grid, so the contract above still holds
    *and* any shard of the log regenerates bit-identically in
    isolation (fork equivalence).  ``ledger`` chains every sampled
    ``(context, action, propensity)`` into a
    :class:`~repro.audit.ledger.DecisionLedger`; the per-batch cost is
    O(1) bookkeeping (hashing is deferred to seal time), keeping the
    hot path within the benchmark gate.

    Instrumented with a ``harvest.batched`` span (per-batch
    ``harvest.batch`` children), the ``harvest.rows_generated`` counter
    (labelled by ``scenario``), and a ``harvest.batch_seconds`` latency
    histogram.  When a monitor suite is installed
    (:func:`repro.obs.monitors.use_monitors`) each batch's
    propensities also feed the streaming health monitors — windowed
    ESS, propensity floor, and weight tails fire mid-harvest instead
    of in the post-hoc report.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    contexts = tuple(contexts)
    n = len(contexts)
    eligible, per_row, n_actions = _resolve_eligibility(
        contexts, eligible, action_space
    )
    actions = np.empty(n, dtype=np.int64)
    propensities = np.empty(n, dtype=np.float64)
    rewards = np.empty(n, dtype=np.float64)
    tracer = get_tracer()
    metrics = get_metrics()
    monitors = get_monitors()
    latency = metrics.histogram("harvest.batch_seconds", scenario=scenario)
    with tracer.span(
        "harvest.batched", scenario=scenario, batch_size=batch_size
    ) as span:
        n_batches = 0
        for start in range(0, n, batch_size):
            stop = min(n, start + batch_size)
            began = time.perf_counter()
            with tracer.span("harvest.batch", start=start, rows=stop - start):
                for seg_start, seg_stop, generator in batch_segments(
                    rng, start, stop
                ):
                    batch = DecisionBatch(
                        contexts[seg_start:seg_stop],
                        eligible[seg_start:seg_stop] if per_row else eligible,
                        n_actions=n_actions,
                    )
                    sampled, probs = policy.act_batch(batch, None, generator)
                    actions[seg_start:seg_stop] = sampled
                    propensities[seg_start:seg_stop] = probs
                rewards[start:stop] = reward_fn(
                    np.arange(start, stop), actions[start:stop]
                )
                if ledger is not None:
                    ledger.extend_batch(
                        contexts[start:stop],
                        actions[start:stop],
                        propensities[start:stop],
                    )
            if monitors.enabled:
                monitors.observe_propensities(propensities[start:stop])
            latency.observe(time.perf_counter() - began)
            n_batches += 1
        span.set(rows=n, batches=n_batches)
    metrics.counter("harvest.rows_generated", scenario=scenario).inc(n)
    return DatasetColumns.from_arrays(
        contexts,
        actions,
        rewards,
        propensities,
        eligible=eligible,
        n_actions=n_actions,
        action_space=action_space,
        reward_range=reward_range,
        timestamps=timestamps,
    )


def harvest_rows(
    policy: Policy,
    contexts: Sequence[Context],
    reward_fn: RewardFn,
    rng: HarvestRNG,
    *,
    eligible: Optional[EligibleSpec] = None,
    action_space: Optional[ActionSpace] = None,
    reward_range: Optional[RewardRange] = None,
    scenario: str = "generic",
    timestamps: Optional[np.ndarray] = None,
    ledger: Optional[DecisionLedger] = None,
) -> Dataset:
    """Scalar reference harvester: one legacy ``act()`` call per row.

    Functionally equivalent to :func:`harvest_columns` but pays the
    per-row costs the batch engine exists to amortize (``act``'s
    ``Generator.choice``, per-row eligibility resolution, one
    ``Interaction`` object per decision) — it is the throughput
    baseline the benchmarks compare against, and the fallback for
    policies whose statefulness resists batching.  Note the RNG stream
    differs from the batch engine's (``Generator.choice`` vs one
    uniform per row), so per-seed outputs match :func:`harvest_columns`
    only distributionally.
    """
    contexts = tuple(contexts)
    n = len(contexts)
    eligible, per_row, _ = _resolve_eligibility(
        contexts, eligible, action_space
    )
    shared = None if per_row else list(eligible)
    interactions: list[Interaction] = []
    with get_tracer().span("harvest.per_row", scenario=scenario, rows=n):
        for index in range(n):
            row_eligible = (
                list(eligible[index]) if per_row else shared
            )
            row_rng = (
                rng.generator_for_row(index)
                if isinstance(rng, StreamRNG)
                else rng
            )
            action, propensity = policy.act(
                contexts[index], row_eligible, row_rng
            )
            reward = float(
                reward_fn(
                    np.array([index]), np.array([action], dtype=np.int64)
                )[0]
            )
            if ledger is not None:
                ledger.append(contexts[index], int(action), float(propensity))
            interactions.append(
                Interaction(
                    context=contexts[index],
                    action=int(action),
                    reward=reward,
                    propensity=float(propensity),
                    timestamp=float(
                        timestamps[index] if timestamps is not None else index
                    ),
                )
            )
    get_metrics().counter("harvest.rows_generated", scenario=scenario).inc(n)
    return Dataset(
        interactions, action_space=action_space, reward_range=reward_range
    )


def harvest_dataset(
    policy: Policy,
    contexts: Sequence[Context],
    reward_fn: RewardFn,
    rng: HarvestRNG,
    *,
    eligible: Optional[EligibleSpec] = None,
    action_space: Optional[ActionSpace] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    reward_range: Optional[RewardRange] = None,
    scenario: str = "generic",
    timestamps: Optional[np.ndarray] = None,
    ledger: Optional[DecisionLedger] = None,
) -> Dataset:
    """Harvest an exploration :class:`~repro.core.types.Dataset`.

    ``batch_size >= 1`` runs the batched engine
    (:func:`harvest_columns`) and materializes the result;
    ``batch_size=0`` selects the legacy per-row reference
    (:func:`harvest_rows`) — a *different RNG stream*, kept for
    baselines and for policies that cannot batch.  A ``ledger``
    (and/or a :class:`~repro.audit.streams.StreamRNG` as ``rng``)
    flows through to whichever engine runs.
    """
    if batch_size == 0:
        return harvest_rows(
            policy,
            contexts,
            reward_fn,
            rng,
            eligible=eligible,
            action_space=action_space,
            reward_range=reward_range,
            scenario=scenario,
            timestamps=timestamps,
            ledger=ledger,
        )
    columns = harvest_columns(
        policy,
        contexts,
        reward_fn,
        rng,
        eligible=eligible,
        action_space=action_space,
        batch_size=batch_size,
        reward_range=reward_range,
        scenario=scenario,
        timestamps=timestamps,
        ledger=ledger,
    )
    return columns.to_dataset()


@dataclass
class ScavengedRecord:
    """One ``⟨x, a, r⟩`` triple extracted from a log, pre-propensity."""

    context: Context
    action: int
    reward: float
    timestamp: float = 0.0
    eligible_actions: Optional[Sequence[int]] = None


class LogScavenger:
    """Step 1: extract ``⟨x, a, r⟩`` from raw log records.

    Parameterized by extractor callbacks so it adapts to any log
    format.  Records for which any extractor raises or returns ``None``
    are dropped and counted (real logs are messy; the count surfaces
    how lossy the scavenge was).
    """

    def __init__(
        self,
        context_of: Callable[[dict], Optional[Context]],
        action_of: Callable[[dict], Optional[int]],
        reward_of: Callable[[dict], Optional[float]],
        timestamp_of: Optional[Callable[[dict], float]] = None,
        eligible_of: Optional[Callable[[dict], Sequence[int]]] = None,
    ) -> None:
        self._context_of = context_of
        self._action_of = action_of
        self._reward_of = reward_of
        self._timestamp_of = timestamp_of
        self._eligible_of = eligible_of
        self.dropped = 0

    def scavenge(self, records: Iterable[dict]) -> list[ScavengedRecord]:
        """Extract all parseable records, counting drops."""
        out: list[ScavengedRecord] = []
        self.dropped = 0
        with get_tracer().span("harvest.scavenge") as span:
            for index, record in enumerate(records):
                try:
                    context = self._context_of(record)
                    action = self._action_of(record)
                    reward = self._reward_of(record)
                except (KeyError, ValueError, TypeError):
                    self.dropped += 1
                    continue
                if context is None or action is None or reward is None:
                    self.dropped += 1
                    continue
                timestamp = (
                    self._timestamp_of(record)
                    if self._timestamp_of is not None
                    else float(index)
                )
                eligible = (
                    list(self._eligible_of(record))
                    if self._eligible_of is not None
                    else None
                )
                out.append(
                    ScavengedRecord(context, int(action), float(reward), timestamp, eligible)
                )
            span.set(scavenged=len(out), dropped=self.dropped)
        metrics = get_metrics()
        metrics.counter("harvest.scavenged").inc(len(out))
        metrics.counter("harvest.dropped").inc(self.dropped)
        return out


@dataclass
class HarvestReport:
    """Summary of one full pipeline run."""

    n_records: int
    n_scavenged: int
    n_dropped: int
    min_propensity: float
    evaluations: dict[str, EstimatorResult] = field(default_factory=dict)
    #: Records rejected (or repaired) by validation during build_dataset.
    #: Empty (falsy) when every scavenged record passed.
    quarantine: Optional[Quarantine] = None


class HarvestPipeline:
    """Steps 1–3 composed: scavenge logs, infer propensities, evaluate.

    Typical use::

        pipeline = HarvestPipeline(scavenger, propensity_model,
                                   action_space=space)
        dataset = pipeline.build_dataset(log_records)
        result = pipeline.evaluate(candidate_policy, dataset)
    """

    def __init__(
        self,
        scavenger: LogScavenger,
        propensity_model: PropensityModel,
        action_space: Optional[ActionSpace] = None,
        reward_range: Optional[RewardRange] = None,
        estimator: Optional[OffPolicyEstimator] = None,
        mode: str = "strict",
        repair_propensity_floor: float = 1e-3,
        backend: Optional[str] = None,
    ) -> None:
        self.scavenger = scavenger
        self.propensity_model = propensity_model
        self.action_space = action_space
        self.reward_range = reward_range
        #: ``backend`` seeds the default estimator's execution path
        #: (``"scalar"`` / ``"vectorized"`` / ``"chunked"``, see
        #: :mod:`repro.core.engine`); an explicit ``estimator`` carries
        #: its own backend and ignores this knob.
        self.estimator = estimator or IPSEstimator(backend=backend)
        self.mode = check_mode(mode)
        if not 0.0 < repair_propensity_floor <= 1.0:
            raise ValueError("repair_propensity_floor must be in (0, 1]")
        self.repair_propensity_floor = repair_propensity_floor
        #: Quarantine from the most recent build_dataset call.
        self.quarantine: Optional[Quarantine] = None

    def build_dataset(
        self, records: Iterable[dict], mode: Optional[str] = None
    ) -> Dataset:
        """Steps 1 and 2: raw log records → exploration dataset.

        Every candidate tuple — including the propensity the model
        just *inferred* — passes through the value rules of
        :mod:`repro.core.validation` before it reaches the dataset.
        ``mode`` overrides the pipeline's default: ``"strict"`` raises
        on the first violation, ``"quarantine"`` sets violators aside
        with a reason, ``"repair"`` clamps fixable propensities/rewards
        and quarantines the rest.  The quarantine lands on both the
        returned dataset and ``self.quarantine``.

        Instrumented: the run is covered by a ``harvest.build_dataset``
        span (with the scavenge as a child span) and feeds the
        ``harvest.rows`` counter with the accepted-row count.
        """
        mode = check_mode(mode) if mode is not None else self.mode
        with get_tracer().span("harvest.build_dataset", mode=mode) as span:
            dataset = self._build_dataset(records, mode)
            span.set(rows=len(dataset), rejected=self.quarantine.n_rejected
                     if self.quarantine is not None else 0)
        get_metrics().counter("harvest.rows").inc(len(dataset))
        return dataset

    def _build_dataset(self, records: Iterable[dict], mode: str) -> Dataset:
        scavenged = self.scavenger.scavenge(records)
        if not scavenged:
            raise ValueError("scavenger extracted no usable records")
        dataset = Dataset(
            action_space=self.action_space, reward_range=self.reward_range
        )
        quarantine = Quarantine()
        if self.action_space is None:
            # Hoisted out of the loop: the observed-action ceiling is a
            # property of the whole scavenge, not of any one record.
            default_eligible = list(
                range(max(r.action for r in scavenged) + 1)
            )
        for number, record in enumerate(scavenged, start=1):
            if record.eligible_actions is not None:
                eligible = list(record.eligible_actions)
            elif self.action_space is not None:
                eligible = self.action_space.actions(record.context)
            else:
                eligible = default_eligible
            propensity = self.propensity_model.propensity(
                record.context, record.action, eligible
            )
            reward = record.reward
            issues = check_values(
                record.context,
                record.action,
                reward,
                propensity,
                eligible=eligible,
                reward_range=self.reward_range,
            )
            if issues and mode == "repair":
                remaining = []
                for reason, detail in issues:
                    if reason == PROPENSITY and math.isfinite(propensity):
                        propensity = (
                            1.0
                            if propensity > 1.0
                            else self.repair_propensity_floor
                        )
                        quarantine.note_repair(reason)
                    elif reason == REWARD and self.reward_range is not None \
                            and math.isfinite(reward):
                        reward = self.reward_range.clip(reward)
                        quarantine.note_repair(reason)
                    else:
                        remaining.append((reason, detail))
                issues = remaining
            if issues:
                reason, detail = issues[0]
                if mode == "strict":
                    raise ValueError(
                        f"harvest: record {number}: {reason}: {detail}"
                    )
                quarantine.add(
                    number, reason, "; ".join(d for _, d in issues)
                )
                continue
            dataset.append(
                Interaction(
                    context=record.context,
                    action=record.action,
                    reward=reward,
                    propensity=propensity,
                    timestamp=record.timestamp,
                )
            )
        if len(dataset) == 0:
            raise ValueError(
                "validation rejected every scavenged record; quarantine: "
                + ", ".join(
                    f"{k}={v}" for k, v in quarantine.counts_by_reason().items()
                )
            )
        dataset.quarantine = quarantine
        self.quarantine = quarantine
        return dataset

    def evaluate(self, policy: Policy, dataset: Dataset) -> EstimatorResult:
        """Step 3a: off-policy evaluation of one candidate."""
        return self.estimator.estimate(policy, dataset)

    def optimize(
        self,
        policy_class: PolicyClass,
        dataset: Dataset,
        maximize: bool = True,
    ) -> tuple[Policy, float]:
        """Step 3b: offline optimization over a policy class."""
        optimizer = PolicyClassOptimizer(self.estimator, maximize=maximize)
        return optimizer.optimize(policy_class, dataset)

    def run(
        self,
        records: Sequence[dict],
        candidates: Sequence[Policy],
    ) -> HarvestReport:
        """End-to-end: scavenge, infer, evaluate every candidate."""
        records = list(records)
        with get_tracer().span("harvest.run", candidates=len(candidates)):
            dataset = self.build_dataset(records)
            evaluations = {
                policy.name: self.evaluate(policy, dataset)
                for policy in candidates
            }
        return HarvestReport(
            n_records=len(records),
            n_scavenged=len(dataset),
            n_dropped=self.scavenger.dropped,
            min_propensity=dataset.min_propensity(),
            evaluations=evaluations,
            quarantine=self.quarantine,
        )
