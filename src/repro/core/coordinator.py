"""Shard-native harvest coordination across the persistent worker pool.

The distributed-harvest refactor: instead of one monolithic per-run
loop, a harvest is a :class:`~repro.audit.shards.ShardPlan` fanned out
by :class:`HarvestCoordinator` onto the persistent pool of
:mod:`repro.core.pool`.  The architecture leans entirely on the audit
primitives:

- **Descriptor-only bootstrap.**  A worker receives the once-pickled
  :class:`HarvestJob` (scenario name + config + policy + master seed)
  plus ``(start, stop)`` — never RNG state, never simulator objects,
  never context arrays.  It rebuilds its inputs deterministically from
  the scenario config (cached per job, so pool reuse pays the build
  once per worker), derives its decision stream at the shard's start
  ordinal (:class:`~repro.audit.streams.StreamRNG` fork equivalence),
  and harvests its rows with the same
  :func:`~repro.core.harvest.harvest_columns` engine a serial run
  uses.
- **Provisional sealing, splice anchoring.**  A worker cannot know its
  true ``prev`` (the predecessor shard may still be in flight), so it
  seals a *provisional* genesis-anchored ledger shard and ships home
  ``(actions, rewards, propensities, context digests, provisional
  head)``.  The provisional head doubles as a payload checksum: the
  coordinator re-chains the shipped digests
  (:func:`~repro.audit.shards.chain_digests`) and rejects any payload
  that does not recompute — in-transit corruption is indistinguishable
  from a failed worker and triggers the same re-derivation.  Accepted
  payloads are spliced in ordinal order
  (:func:`~repro.audit.shards.splice_payloads`) into ONE ledger whose
  entries and head are bit-identical to a serial harvest.
- **Resumable by construction.**  Worker loss (crash, SIGKILL,
  ``BrokenProcessPool``) costs exactly the unfinished shards: the pool
  is reset and only those shards are re-derived.  A shard that keeps
  failing past ``max_retries`` is harvested locally in the parent —
  bit-identical, guaranteed to terminate.

Observability: the run is covered by a ``harvest.sharded`` span with
per-shard worker spans grafted across the pool (the
:mod:`repro.core.pool` pattern), plus ``harvest.shards_completed`` /
``harvest.shards_retried`` counters and a ``harvest.shard_seconds``
histogram.  :meth:`ShardedHarvest.manifest_entry` records the shard
map (per-shard ``prev``/``head`` boundary hashes) next to the spliced
head, which is what ``repro verify-ledger`` uses to verify each shard
in isolation later.
"""

from __future__ import annotations

import importlib
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from repro.audit.ledger import GENESIS, DecisionLedger
from repro.audit.shards import ShardPlan, ShardSpec, chain_digests, splice_payloads
from repro.audit.streams import StreamKey, StreamRegistry, StreamRNG
from repro.core import pool as worker_pool
from repro.core.columns import DatasetColumns, EligibleSpec, is_per_row_eligibility
from repro.core.harvest import DEFAULT_BATCH_SIZE, RewardFn, harvest_columns
from repro.core.pool import BrokenProcessPool
from repro.core.types import ActionSpace, RewardRange
from repro.obs.metrics import get_metrics
from repro.obs.monitors import MonitorSuite, get_monitors, use_monitors
from repro.obs.profiler import SpanProfiler, get_profiler
from repro.obs.tracing import Tracer, get_tracer, use_tracer

__all__ = [
    "SCENARIO_BUILDERS",
    "HarvestCoordinator",
    "HarvestInputs",
    "HarvestJob",
    "ShardPayloadError",
    "ShardedHarvest",
    "build_inputs",
    "synthetic_shard_inputs",
]

#: Dotted ``module:function`` builder per scenario.  Resolved lazily so
#: the core layer never imports scenario packages at module load — the
#: registry is data, the import happens inside :func:`build_inputs`.
SCENARIO_BUILDERS = {
    "machinehealth": "repro.machinehealth.dataset:exploration_shard_inputs",
    "loadbalance": "repro.loadbalance.harvest:exploration_shard_inputs",
    "cache": "repro.cache.harvest:exploration_shard_inputs",
    "synthetic": "repro.core.coordinator:synthetic_shard_inputs",
}


class ShardPayloadError(RuntimeError):
    """A returned shard payload failed its integrity re-chaining."""


@dataclass(frozen=True)
class HarvestJob:
    """The complete, picklable description of one sharded harvest.

    This is the *entire* state a worker needs: scenario name, row
    count, master seed, shard size, the logging policy, and the
    scenario config dict.  Everything else — contexts, reward law,
    generators, ledger shards — is re-derived deterministically from
    these on the worker side, which is what makes shards re-derivable
    after a crash without any state transfer.
    """

    scenario: str
    rows: int
    master_seed: int
    policy: Any
    shard_size: int = DEFAULT_BATCH_SIZE
    batch_size: int = DEFAULT_BATCH_SIZE
    config: Mapping = field(default_factory=dict)
    #: Override the scenario's registered builder (dotted
    #: ``module:function``); tests and external scenarios hook in here.
    builder: Optional[str] = None

    def __post_init__(self) -> None:
        if self.rows < 0:
            raise ValueError(f"rows must be >= 0, got {self.rows}")
        if self.shard_size <= 0:
            raise ValueError(f"shard_size must be positive, got {self.shard_size}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")

    def stream_key(self) -> StreamKey:
        """The decision stream all shards of this job draw from."""
        return StreamKey(self.scenario, "harvest", "decisions")


@dataclass
class HarvestInputs:
    """Deterministic harvest inputs, shared by serial and sharded runs.

    A scenario builder turns a :class:`HarvestJob` into these —
    contexts, a *global-row-indexed* reward function, eligibility, and
    metadata.  Determinism contract: the same job must produce
    bit-identical inputs in every process (builders may only draw
    randomness from the job's config seed or from streams derived off
    the registry they are given), because workers rebuild them
    independently and the splice assumes every shard saw the same
    rows.
    """

    contexts: tuple
    reward_fn: RewardFn
    eligible: Optional[EligibleSpec] = None
    action_space: Optional[ActionSpace] = None
    reward_range: Optional[RewardRange] = None
    timestamps: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.contexts = tuple(self.contexts)

    @property
    def n(self) -> int:
        """Harvestable rows (may differ from ``job.rows`` — e.g. the
        cache scenario harvests one row per *eviction*, not per
        request)."""
        return len(self.contexts)

    def eligible_slice(self, start: int, stop: int) -> Optional[EligibleSpec]:
        """Eligibility restricted to rows ``[start, stop)``."""
        if self.eligible is None:
            return None
        if is_per_row_eligibility(self.eligible):
            return self.eligible[start:stop]
        return self.eligible


def build_inputs(job: HarvestJob, registry: StreamRegistry) -> HarvestInputs:
    """Resolve and run the scenario builder for ``job``.

    ``registry`` is the stream authority the builder must use for any
    randomness beyond the scenario's own config seed (e.g. the
    loadbalance latency noise) so all derivations land in the
    provenance log.
    """
    path = job.builder or SCENARIO_BUILDERS.get(job.scenario)
    if path is None:
        raise ValueError(
            f"no shard-input builder registered for scenario "
            f"{job.scenario!r} (known: {sorted(SCENARIO_BUILDERS)})"
        )
    module_name, _, function_name = path.partition(":")
    if not function_name:
        raise ValueError(f"builder {path!r} is not module:function")
    builder = getattr(importlib.import_module(module_name), function_name)
    return builder(job, registry)


def synthetic_shard_inputs(
    job: HarvestJob, registry: StreamRegistry
) -> HarvestInputs:
    """A dependency-free scenario for tests and benchmarks.

    Contexts carry the global row index (``i``) plus two derived
    features; rewards are a fixed arithmetic law of ``(row, action)``.
    Nothing draws randomness, so inputs are trivially process-
    independent — the coordinator machinery is exercised in isolation.
    """
    n_actions = int(job.config.get("n_actions", 4))
    if n_actions <= 0:
        raise ValueError(f"n_actions must be positive, got {n_actions}")
    rows = np.arange(job.rows, dtype=np.float64)
    contexts = tuple(
        {
            "i": float(i),
            "phase": float((i * 31) % 17) / 17.0,
            "load": float((i * 7) % 13) / 13.0,
        }
        for i in range(job.rows)
    )

    def reward_fn(indices: np.ndarray, actions: np.ndarray) -> np.ndarray:
        return ((indices * 31 + actions * 17) % 97) / 96.0

    return HarvestInputs(
        contexts=contexts,
        reward_fn=reward_fn,
        eligible=tuple(range(n_actions)),
        reward_range=None,
        timestamps=rows,
    )


# -- worker side --------------------------------------------------------------

#: Worker-side cache of built inputs, keyed by job key.  Deliberately
#: tiny: a worker serves one harvest job at a time; keeping the last
#: two tolerates back-to-back jobs without unbounded growth.
_INPUTS_CACHE: dict = {}
_INPUTS_CACHE_SIZE = 2


def _worker_inputs(job_key: str, job: HarvestJob):
    """``(inputs, registry)`` for ``job``, built once per worker."""
    cached = _INPUTS_CACHE.get(job_key)
    if cached is None:
        while len(_INPUTS_CACHE) >= _INPUTS_CACHE_SIZE:
            _INPUTS_CACHE.pop(next(iter(_INPUTS_CACHE)))
        registry = StreamRegistry(job.master_seed)
        cached = (build_inputs(job, registry), registry)
        _INPUTS_CACHE[job_key] = cached
    return cached


def _harvest_shard_impl(
    job: HarvestJob,
    inputs: HarvestInputs,
    registry: StreamRegistry,
    spec: ShardSpec,
    genesis: str = GENESIS,
) -> dict:
    """Harvest one shard; return its payload (provisionally sealed).

    The shard's stream derives at ``spec.start`` and its ledger is
    anchored at ``genesis`` — workers use the provisional zero anchor
    (they cannot know the true predecessor head), so only the ``prev``
    linkage differs from the final spliced chain; the digests (and the
    sampled decisions) are exactly what the serial harvest produces.
    The in-process path passes the *true* predecessor head instead, so
    its sealed entries can be adopted by the splice without re-hashing
    the chain a second time.
    """
    key = job.stream_key()
    rng = StreamRNG(
        registry, key, shard_size=job.shard_size, start_ordinal=spec.start
    )
    ledger = DecisionLedger(
        key,
        shard_size=job.shard_size,
        genesis=genesis,
        start_ordinal=spec.start,
        master_fingerprint=registry.master_fingerprint,
    )

    def shard_reward_fn(indices: np.ndarray, actions: np.ndarray) -> np.ndarray:
        return inputs.reward_fn(indices + spec.start, actions)

    columns = harvest_columns(
        job.policy,
        inputs.contexts[spec.start : spec.stop],
        shard_reward_fn,
        rng,
        eligible=inputs.eligible_slice(spec.start, spec.stop),
        action_space=inputs.action_space,
        batch_size=job.batch_size,
        reward_range=inputs.reward_range,
        scenario=job.scenario,
        ledger=ledger,
    )
    entries = ledger.entries()
    return {
        "start": spec.start,
        "n": spec.n,
        "actions": columns.actions,
        "rewards": columns.rewards,
        "propensities": columns.propensities,
        "context_shas": [entry.context_sha for entry in entries],
        "genesis": genesis,
        "head": ledger.head,
        "entries": entries,
        "derivations": registry.derivations(),
        "span": None,
        "seconds": 0.0,
    }


def _shard_worker(payload: tuple) -> dict:
    """Pool entry point: harvest one shard in a worker process.

    The job blob is unpickled once per worker (:func:`~repro.core.pool.
    job_payload`) and the scenario inputs are rebuilt once per worker
    (:func:`_worker_inputs`); each subsequent shard of the same job
    pays only the harvest itself.  Traced tasks open a fresh
    :class:`~repro.obs.tracing.Tracer` and ship the span dict home;
    monitored tasks likewise run under a fresh
    :class:`~repro.obs.monitors.MonitorSuite` (states shipped home for
    the coordinator to merge), and profiled tasks under a fresh
    :class:`~repro.obs.profiler.SpanProfiler` (flame tables shipped
    home) — nothing accumulates in worker globals between tasks.
    """
    job_key, blob, index, start, stop, traced, monitored, profiled = payload
    job: HarvestJob = worker_pool.job_payload(job_key, blob)
    inputs, registry = _worker_inputs(job_key, job)
    spec = ShardSpec(index=index, start=start, stop=stop)
    suite = MonitorSuite() if monitored else None
    profiler = SpanProfiler() if profiled else None
    clock = time.perf_counter()

    def harvest() -> dict:
        if suite is not None:
            with use_monitors(suite):
                return _harvest_shard_impl(job, inputs, registry, spec)
        return _harvest_shard_impl(job, inputs, registry, spec)

    if profiler is not None:
        profiler.start()
    try:
        if traced:
            tracer = Tracer()
            with use_tracer(tracer):
                with tracer.span(
                    "harvest.shard",
                    index=index,
                    start=start,
                    rows=stop - start,
                    worker=True,
                ):
                    result = harvest()
            result["span"] = tracer.span_tree()[0]
        else:
            result = harvest()
    finally:
        if profiler is not None:
            profiler.stop()
    if suite is not None:
        result["monitor_states"] = suite.states()
    if profiler is not None:
        result["profile"] = profiler.to_dict()
    result["seconds"] = time.perf_counter() - clock
    # Sealed entries never leave the worker: the coordinator must
    # re-chain remote payloads from the shipped digests anyway (the
    # head doubles as the transport checksum), so shipping them would
    # be pickle weight that could only tempt an unverified adoption.
    result.pop("entries", None)
    return result


# -- coordinator --------------------------------------------------------------


@dataclass
class ShardedHarvest:
    """The result of one coordinated harvest: columns + spliced chain."""

    columns: DatasetColumns
    ledger: DecisionLedger
    registry: StreamRegistry
    plan: ShardPlan
    shard_map: list
    workers: int
    retries: int

    @property
    def head(self) -> str:
        """The spliced chain head (bit-identical to a serial harvest)."""
        return self.ledger.head

    @property
    def stream(self) -> str:
        """The decision stream name of the spliced ledger."""
        return self.ledger.stream

    def annotate(self, dataset) -> None:
        """Embed the spliced ledger metadata into ``dataset`` rows."""
        self.ledger.annotate(dataset)

    def entries(self):
        """The spliced ledger's sealed entries, in ordinal order."""
        return self.ledger.entries()

    def manifest_entry(self) -> dict:
        """Ledger manifest section, extended with the shard map.

        Duck-compatible with ``DecisionLedger.manifest_entry`` so
        :meth:`repro.obs.manifest.RunManifest.build` accepts a
        ``ShardedHarvest`` directly as its ``ledger``.
        """
        entry = self.ledger.manifest_entry()
        entry["workers"] = self.workers
        entry["plan"] = self.plan.to_dict()
        entry["shards"] = [dict(shard) for shard in self.shard_map]
        return entry


class HarvestCoordinator:
    """Fan a :class:`HarvestJob` over the pool; splice one verified chain.

    ``workers=1`` runs the shards sequentially in-process (same plan,
    same provisional-seal-then-splice path, no pool); ``workers>=2``
    submits shards to the persistent pool.  Either way the output is
    bit-identical to a serial harvest of the same job — the invariant
    the integration suite pins per scenario and worker count.

    ``max_retries`` bounds how often one shard may fail (worker crash,
    payload corruption, worker exception) before the coordinator
    harvests it locally in the parent process instead.
    """

    def __init__(
        self,
        job: HarvestJob,
        workers: int = 1,
        max_retries: int = 2,
        inputs: Optional[HarvestInputs] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.job = job
        self.workers = int(workers)
        self.max_retries = int(max_retries)
        self._inputs = inputs
        #: Per-shard failed-attempt counts of the most recent run.
        self.attempts: dict[int, int] = {}

    # -- hooks ---------------------------------------------------------------

    def _receive(self, spec: ShardSpec, payload: dict) -> dict:
        """Payload ingress hook (chaos tests corrupt payloads here)."""
        return payload

    # -- pieces --------------------------------------------------------------

    def _validate_payload(self, spec: ShardSpec, payload: dict) -> None:
        """Re-chain a returned payload; raise when it does not recompute."""
        if int(payload["start"]) != spec.start or int(payload["n"]) != spec.n:
            raise ShardPayloadError(
                f"shard {spec.index} payload covers rows "
                f"[{payload['start']}, {payload['start'] + payload['n']}), "
                f"expected [{spec.start}, {spec.stop})"
            )
        if len(payload["context_shas"]) != spec.n:
            raise ShardPayloadError(
                f"shard {spec.index} payload carries "
                f"{len(payload['context_shas'])} digests for {spec.n} rows"
            )
        head = chain_digests(
            self.job.stream_key(),
            payload["context_shas"],
            payload["actions"],
            payload["propensities"],
            genesis=str(payload.get("genesis", GENESIS)),
            start_ordinal=spec.start,
        )
        if head != payload["head"]:
            raise ShardPayloadError(
                f"shard {spec.index} payload failed integrity re-chaining: "
                f"recomputed head {head[:12]}… != shipped "
                f"{str(payload['head'])[:12]}…"
            )

    def _harvest_local(
        self,
        spec: ShardSpec,
        inputs: HarvestInputs,
        registry: StreamRegistry,
        tracer,
        genesis: str = GENESIS,
    ) -> dict:
        """Harvest one shard in this process (serial path + last resort)."""
        clock = time.perf_counter()
        with tracer.span(
            "harvest.shard", index=spec.index, start=spec.start, rows=spec.n
        ):
            payload = _harvest_shard_impl(
                self.job, inputs, registry, spec, genesis=genesis
            )
        payload["seconds"] = time.perf_counter() - clock
        return payload

    def _accept(
        self, spec: ShardSpec, payload: dict, tracer, metrics, remote: bool = False
    ) -> dict:
        """Bookkeeping for an accepted shard payload."""
        if payload.get("span") is not None:
            tracer.attach(payload["span"])
        monitors = get_monitors()
        if remote:
            # Pool-path rows are generated in workers whose metrics are
            # no-ops; count them here so serial and sharded runs report
            # the same totals (local shards count inside harvest_columns).
            metrics.counter(
                "harvest.rows_generated", scenario=self.job.scenario
            ).inc(int(payload["n"]))
            # Worker-side monitor states and flame tables merge here,
            # exactly like the span dict above.
            monitors.absorb(payload.get("monitor_states"))
            get_profiler().absorb(payload.get("profile"))
        monitors.observe_shards(completed=1)
        metrics.counter(
            "harvest.shards_completed", scenario=self.job.scenario
        ).inc()
        metrics.histogram(
            "harvest.shard_seconds", scenario=self.job.scenario
        ).observe(float(payload.get("seconds", 0.0)))
        payload["retries"] = self.attempts.get(spec.index, 0)
        return payload

    # -- run -----------------------------------------------------------------

    def run(self) -> ShardedHarvest:
        """Execute the plan and return the spliced harvest."""
        job = self.job
        tracer = get_tracer()
        metrics = get_metrics()
        registry = StreamRegistry(job.master_seed)
        inputs = self._inputs or build_inputs(job, registry)
        plan = ShardPlan(inputs.n, job.shard_size)
        self.attempts = {spec.index: 0 for spec in plan}
        with tracer.span(
            "harvest.sharded",
            scenario=job.scenario,
            workers=self.workers,
            shards=len(plan),
            shard_size=job.shard_size,
        ) as span:
            if self.workers == 1 or len(plan) <= 1:
                payloads = self._run_in_process(plan, inputs, registry, tracer, metrics)
            else:
                payloads = self._run_pool(plan, inputs, registry, tracer, metrics)
            result = self._assemble(plan, inputs, registry, payloads)
            span.set(rows=inputs.n, retries=result.retries, head=result.head)
        return result

    def _run_in_process(
        self, plan, inputs, registry, tracer, metrics
    ) -> dict:
        # Shards run in ordinal order, so each one can be anchored at
        # the true predecessor head — its provisional chain IS the
        # final chain, and the splice adopts the sealed entries instead
        # of re-hashing every row a second time (the overhead budget
        # gated by ``benchmarks/perf``: workers=1 must hold ≥0.9x
        # serial throughput).
        payloads: dict[int, dict] = {}
        prev = GENESIS
        for spec in plan:
            payload = self._harvest_local(
                spec, inputs, registry, tracer, genesis=prev
            )
            prev = payload["head"]
            payloads[spec.index] = self._accept(spec, payload, tracer, metrics)
        return payloads

    def _run_pool(self, plan, inputs, registry, tracer, metrics) -> dict:
        job = self.job
        try:
            job_key, blob = worker_pool.new_job(job)
        except Exception as error:
            warnings.warn(
                "sharded harvest falling back to in-process shards: job "
                f"is not picklable ({error})",
                RuntimeWarning,
                stacklevel=3,
            )
            return self._run_in_process(plan, inputs, registry, tracer, metrics)
        payloads: dict[int, dict] = {}
        pending = list(plan)
        while pending:
            executor = worker_pool.get_pool(self.workers)
            futures = [
                (
                    spec,
                    executor.submit(
                        _shard_worker,
                        (
                            job_key,
                            blob,
                            spec.index,
                            spec.start,
                            spec.stop,
                            tracer.enabled,
                            get_monitors().enabled,
                            get_profiler().enabled,
                        ),
                    ),
                )
                for spec in pending
            ]
            crashed = False
            failed: list[ShardSpec] = []
            for spec, future in futures:
                try:
                    payload = self._receive(spec, future.result())
                    self._validate_payload(spec, payload)
                except BrokenProcessPool:
                    crashed = True
                    failed.append(spec)
                    continue
                except ShardPayloadError as error:
                    warnings.warn(
                        f"re-deriving shard {spec.index}: {error}",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    failed.append(spec)
                    continue
                except Exception as error:
                    warnings.warn(
                        f"re-deriving shard {spec.index}: worker raised "
                        f"{type(error).__name__}: {error}",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    failed.append(spec)
                    continue
                registry.absorb(payload.get("derivations", ()))
                payloads[spec.index] = self._accept(
                    spec, payload, tracer, metrics, remote=True
                )
            if crashed:
                worker_pool.reset_pool()
                warnings.warn(
                    "worker pool died mid-harvest; re-deriving only the "
                    "missing shard(s) (results are unaffected)",
                    RuntimeWarning,
                    stacklevel=3,
                )
            pending = []
            monitors = get_monitors()
            for spec in failed:
                self.attempts[spec.index] += 1
                metrics.counter(
                    "harvest.shards_retried", scenario=job.scenario
                ).inc()
                monitors.observe_shards(retried=1)
                if self.attempts[spec.index] > self.max_retries:
                    monitors.observe_shards(fallback=1)
                    payload = self._harvest_local(spec, inputs, registry, tracer)
                    payloads[spec.index] = self._accept(
                        spec, payload, tracer, metrics
                    )
                else:
                    pending.append(spec)
        return payloads

    def _assemble(self, plan, inputs, registry, payloads) -> ShardedHarvest:
        job = self.job
        ordered = [payloads[spec.index] for spec in plan]
        ledger, shard_map = splice_payloads(
            job.stream_key(),
            ordered,
            shard_size=job.shard_size,
            master_fingerprint=registry.master_fingerprint,
        )
        n = inputs.n
        actions = np.empty(n, dtype=np.int64)
        rewards = np.empty(n, dtype=np.float64)
        propensities = np.empty(n, dtype=np.float64)
        for spec, payload in zip(plan, ordered):
            actions[spec.start : spec.stop] = payload["actions"]
            rewards[spec.start : spec.stop] = payload["rewards"]
            propensities[spec.start : spec.stop] = payload["propensities"]
        # Record the decision-stream derivations the shards consumed
        # (workers hold their own registries; their logs were absorbed
        # for pool runs, and local runs recorded directly).
        columns = DatasetColumns.from_arrays(
            inputs.contexts,
            actions,
            rewards,
            propensities,
            eligible=inputs.eligible,
            n_actions=None,
            action_space=inputs.action_space,
            reward_range=inputs.reward_range,
            timestamps=inputs.timestamps,
        )
        return ShardedHarvest(
            columns=columns,
            ledger=ledger,
            registry=registry,
            plan=plan,
            shard_map=shard_map,
            workers=self.workers,
            retries=sum(self.attempts.values()),
        )
