"""Bootstrap confidence intervals for off-policy estimates.

IPS terms are heavy-tailed — mostly zeros plus occasional spikes of
``r/p`` — so normal-approximation intervals can be optimistic at small
N, while Hoeffding/Bernstein are valid but conservative.  The
percentile bootstrap sits in between and is the interval practitioners
actually quote: resample the per-interaction terms with replacement,
recompute the mean, and take empirical quantiles.

The resampling operates on the *term vector*, not the dataset, so a
thousand bootstrap replicates of a million-point log cost a handful of
matrix-multiplies — cheap enough to run on every evaluation.

Replicates are generated in fixed **shards** of
:data:`BOOTSTRAP_SHARD`: shard ``s`` draws its index matrix from
``np.random.default_rng((seed, s))``, independent of every other
shard.  That makes the replicate set a pure function of ``(seed,
n_boot, len(terms))`` — the same shards can be computed serially or
fanned across a worker pool and concatenated in shard order, and the
resulting percentile interval is *bit-for-bit identical* either way
(asserted by ``tests/core/test_bootstrap.py``).  Parallel runs go
through the persistent pool (:mod:`repro.core.pool`) with the term
vectors placed in a shared-memory segment (:mod:`repro.core.shm`), so
each shard's payload is a ~100-byte tuple instead of a pickled copy
of the full term vector.  Passing an explicit ``rng`` instead of a
``seed`` keeps the historical single-stream behavior, which cannot be
parallelized deterministically.
"""

from __future__ import annotations

import time
import warnings
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.core import pool as worker_pool
from repro.core.estimators.bounds import ConfidenceInterval
from repro.core.estimators.ips import IPSEstimator, SNIPSEstimator
from repro.core.policies import Policy
from repro.core.pool import BrokenProcessPool
from repro.core.types import Dataset
from repro.obs.metrics import get_metrics
from repro.obs.profiler import get_profiler
from repro.obs.tracing import get_tracer

#: Replicates per shard.  Small enough that n_boot=1000 splits across a
#: few workers, large enough that each shard is one real matrix op.
BOOTSTRAP_SHARD = 256


def _shard_sizes(n_boot: int) -> list[int]:
    """Split ``n_boot`` replicates into BOOTSTRAP_SHARD-sized shards."""
    full, rest = divmod(n_boot, BOOTSTRAP_SHARD)
    return [BOOTSTRAP_SHARD] * full + ([rest] if rest else [])


def _mean_shard(payload) -> np.ndarray:
    """One shard of resampled means (top-level: picklable for workers)."""
    terms, count, seed, shard = payload
    rng = np.random.default_rng((seed, shard))
    indices = rng.integers(0, terms.size, size=(count, terms.size))
    return terms[indices].mean(axis=1)


def _ratio_shard(payload) -> np.ndarray:
    """One shard of resampled SNIPS ratios (jointly resampled pairs)."""
    numerators, weights, count, seed, shard = payload
    rng = np.random.default_rng((seed, shard))
    indices = rng.integers(0, weights.size, size=(count, weights.size))
    num = numerators[indices].sum(axis=1)
    den = weights[indices].sum(axis=1)
    return np.divide(num, den, out=np.full(count, np.nan), where=den > 0)


def _traced_shard(item):
    """Run one shard in a worker, timing it (and tracing/profiling when asked).

    The payload's last three entries are always ``(count, seed,
    shard)``, so the span can be labeled without knowing which shard
    function is running.  Returns ``(replicates, seconds, span_dict,
    profile_dict)`` — the latter two ``None`` unless tracing/profiling
    was requested (profiles graft home like span trees do).
    """
    shard_fn, payload, traced, profiled = item
    profiler = None
    if profiled:
        from repro.obs.profiler import SpanProfiler

        profiler = SpanProfiler()
        profiler.start()
    start = time.perf_counter()
    try:
        if traced:
            from repro.obs.tracing import Tracer, use_tracer

            tracer = Tracer()
            with use_tracer(tracer):
                with tracer.span(
                    "bootstrap.shard",
                    shard=payload[-1],
                    replicates=payload[-3],
                    worker=True,
                ):
                    replicates = shard_fn(payload)
            span_dict = tracer.span_tree()[0]
        else:
            replicates = shard_fn(payload)
            span_dict = None
    finally:
        if profiler is not None:
            profiler.stop()
    profile_dict = profiler.to_dict() if profiler is not None else None
    return replicates, time.perf_counter() - start, span_dict, profile_dict


#: Array names per shard kind; order matches the shard function's
#: positional static arguments, so workers can rebuild them by name.
_SHARD_KINDS = {
    _mean_shard: ("terms",),
    _ratio_shard: ("numerators", "weights"),
}


def _shm_shard_worker(payload):
    """Run one shard against shared term vectors (worker process).

    The payload carries only ``(job_key, blob, count, seed, shard,
    traced, profiled)`` — the term vectors live in one shared segment
    described by the job blob, attached once per worker and reused by
    every shard of every bootstrap call that shares the block.
    Delegates to :func:`_traced_shard` so timing, spans, and profiles
    match the legacy path.
    """
    job_key, blob, count, seed, shard, traced, profiled = payload
    from repro.core import shm

    kind, descriptor = worker_pool.job_payload(job_key, blob)
    views = shm.attach_arrays(descriptor)
    shard_fn = _mean_shard if kind == ("terms",) else _ratio_shard
    args = tuple(views[name] for name in kind) + (count, seed, shard)
    return _traced_shard((shard_fn, args, traced, profiled))


def _parallel_shard_outcomes(
    shard_fn, static_args, payloads, workers, traced, profiled
):
    """Fan the shards across the persistent pool; ``None`` on failure.

    Shares the static term vectors through one shared-memory segment
    when available (per-shard payloads shrink from the full term
    vector to a ~100-byte tuple); otherwise ships legacy pickled
    payloads through the same pool.  A broken pool (killed worker)
    resets the pool and returns ``None`` — the caller recomputes
    serially, which is bit-identical by construction.
    """
    from repro.core import shm

    block = None
    items = None
    if shm.available():
        try:
            kind = _SHARD_KINDS[shard_fn]
            block = shm.SharedArrayBlock.create(
                OrderedDict(zip(kind, static_args))
            )
            job_key, blob = worker_pool.new_job((kind, block.descriptor))
            items = [
                (
                    _shm_shard_worker,
                    (job_key, blob) + tail + (traced, profiled),
                )
                for tail in payloads
            ]
        except Exception:
            if block is not None:
                block.release()
            block = None
            items = None
    if items is None:
        items = [
            (_traced_shard, (shard_fn, static_args + tail, traced, profiled))
            for tail in payloads
        ]
    try:
        executor = worker_pool.get_pool(workers)
        futures = [executor.submit(fn, payload) for fn, payload in items]
        return [future.result() for future in futures]
    except BrokenProcessPool:
        worker_pool.reset_pool()
        warnings.warn(
            "bootstrap worker pool died; recomputing shards serially "
            "(the interval is unaffected)",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    finally:
        if block is not None:
            block.release()


def _sharded_replicates(
    shard_fn, static_args: tuple, n_boot: int, seed: int, workers: int
) -> np.ndarray:
    """Run the shard function over every shard, serially or in a pool.

    Each shard is a deterministic function of ``(seed, shard index)``,
    and shards concatenate in index order — so the output is identical
    for any ``workers`` value.  Every shard lands a
    ``bootstrap.shard`` span (worker shards are serialized home) and
    feeds the ``bootstrap.shard_seconds`` histogram.  Parallel runs go
    through the persistent worker pool with the term vectors in shared
    memory (see :func:`_parallel_shard_outcomes`).
    """
    tracer = get_tracer()
    metrics = get_metrics()
    payloads = [
        (count, seed, shard)
        for shard, count in enumerate(_shard_sizes(n_boot))
    ]
    shard_seconds = metrics.histogram("bootstrap.shard_seconds")
    shard_count = metrics.counter("bootstrap.shards")
    with tracer.span(
        "bootstrap.replicates",
        n_boot=n_boot,
        seed=seed,
        workers=workers,
        shards=len(payloads),
    ):
        outcomes = None
        if workers > 1 and len(payloads) > 1:
            outcomes = _parallel_shard_outcomes(
                shard_fn,
                static_args,
                payloads,
                workers,
                tracer.enabled,
                get_profiler().enabled,
            )
        if outcomes is None:
            outcomes = []
            for tail in payloads:
                count, _seed, shard = tail
                start = time.perf_counter()
                with tracer.span(
                    "bootstrap.shard", shard=shard, replicates=count
                ):
                    # The ambient profiler (if any) samples this path
                    # directly; only pool shards ship profiles home.
                    replicates = shard_fn(static_args + tail)
                outcomes.append(
                    (replicates, time.perf_counter() - start, None, None)
                )
        profiler = get_profiler()
        shards = []
        for replicates, seconds, span_dict, profile_dict in outcomes:
            shard_seconds.observe(seconds)
            shard_count.inc()
            if span_dict is not None:
                tracer.attach(span_dict)
            if profile_dict is not None:
                profiler.absorb(profile_dict)
            shards.append(replicates)
    metrics.counter("bootstrap.replicates").inc(n_boot)
    return np.concatenate(shards)


def _check_replication(
    n_boot: int,
    delta: float,
    rng: Optional[np.random.Generator],
    seed: Optional[int],
    workers: int,
) -> None:
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if n_boot < 10:
        raise ValueError("n_boot too small to estimate quantiles")
    if rng is not None and seed is not None:
        raise ValueError("pass either rng or seed, not both")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers > 1 and seed is None:
        raise ValueError(
            "parallel bootstrap requires a seed: the legacy rng stream "
            "cannot be split across workers deterministically"
        )


def bootstrap_interval_from_terms(
    terms: np.ndarray,
    delta: float = 0.05,
    n_boot: int = 1000,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    workers: int = 1,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for the mean of ``terms``.

    With ``seed`` the replicates come from the sharded generator and
    ``workers`` may fan the shards across processes without changing
    the interval; with ``rng`` (or neither) the historical single
    stream is used and must stay serial.
    """
    terms = np.asarray(terms, dtype=float)
    if terms.size < 2:
        raise ValueError("need at least two terms to bootstrap")
    _check_replication(n_boot, delta, rng, seed, workers)
    if seed is not None:
        means = _sharded_replicates(
            _mean_shard, (terms,), n_boot, seed, workers
        )
    else:
        rng = rng or np.random.default_rng(0)
        indices = rng.integers(0, terms.size, size=(n_boot, terms.size))
        means = terms[indices].mean(axis=1)
    low = float(np.quantile(means, delta / 2.0))
    high = float(np.quantile(means, 1.0 - delta / 2.0))
    return ConfidenceInterval(low, high, 1.0 - delta)


def bootstrap_ips_interval(
    policy: Policy,
    dataset: Dataset,
    delta: float = 0.05,
    n_boot: int = 1000,
    rng: Optional[np.random.Generator] = None,
    backend: Optional[str] = None,
    seed: Optional[int] = None,
    workers: int = 1,
) -> ConfidenceInterval:
    """Bootstrap CI for a policy's IPS value on an exploration log.

    ``backend`` selects the evaluation path for the single pass that
    computes the IPS terms (the resampling itself operates on the term
    vector); the vectorized default shares the dataset's cached
    columnar view with any other estimator runs.  ``seed``/``workers``
    select the sharded replicate generator (see module docstring).
    """
    terms = IPSEstimator(backend=backend).weighted_rewards(policy, dataset)
    return bootstrap_interval_from_terms(
        terms, delta, n_boot, rng, seed=seed, workers=workers
    )


def bootstrap_snips_interval(
    policy: Policy,
    dataset: Dataset,
    delta: float = 0.05,
    n_boot: int = 1000,
    rng: Optional[np.random.Generator] = None,
    backend: Optional[str] = None,
    seed: Optional[int] = None,
    workers: int = 1,
) -> ConfidenceInterval:
    """Bootstrap confidence interval for SNIPS.

    Resamples (weight, weighted-reward) pairs jointly, since the
    estimator is a ratio of means.
    """
    snips = SNIPSEstimator(backend=backend)
    weights = snips.match_weights(policy, dataset)
    rewards = dataset.rewards()
    if weights.size < 2:
        raise ValueError("need at least two interactions")
    if weights.sum() == 0:
        raise ValueError("candidate never matches the log; no information")
    _check_replication(n_boot, delta, rng, seed, workers)
    numerators = weights * rewards
    if seed is not None:
        ratios = _sharded_replicates(
            _ratio_shard, (numerators, weights), n_boot, seed, workers
        )
    else:
        rng = rng or np.random.default_rng(0)
        indices = rng.integers(0, weights.size, size=(n_boot, weights.size))
        num = numerators[indices].sum(axis=1)
        den = weights[indices].sum(axis=1)
        ratios = np.divide(
            num, den, out=np.full(n_boot, np.nan), where=den > 0
        )
    ratios = ratios[np.isfinite(ratios)]
    if ratios.size < n_boot // 2:
        raise ValueError(
            "too few matching interactions for a stable bootstrap"
        )
    low = float(np.quantile(ratios, delta / 2.0))
    high = float(np.quantile(ratios, 1.0 - delta / 2.0))
    return ConfidenceInterval(low, high, 1.0 - delta)
