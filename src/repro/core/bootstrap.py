"""Bootstrap confidence intervals for off-policy estimates.

IPS terms are heavy-tailed — mostly zeros plus occasional spikes of
``r/p`` — so normal-approximation intervals can be optimistic at small
N, while Hoeffding/Bernstein are valid but conservative.  The
percentile bootstrap sits in between and is the interval practitioners
actually quote: resample the per-interaction terms with replacement,
recompute the mean, and take empirical quantiles.

The resampling operates on the *term vector*, not the dataset, so a
thousand bootstrap replicates of a million-point log cost one
matrix-multiply — cheap enough to run on every evaluation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.estimators.bounds import ConfidenceInterval
from repro.core.estimators.ips import IPSEstimator, SNIPSEstimator
from repro.core.policies import Policy
from repro.core.types import Dataset


def bootstrap_interval_from_terms(
    terms: np.ndarray,
    delta: float = 0.05,
    n_boot: int = 1000,
    rng: Optional[np.random.Generator] = None,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for the mean of ``terms``."""
    terms = np.asarray(terms, dtype=float)
    if terms.size < 2:
        raise ValueError("need at least two terms to bootstrap")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if n_boot < 10:
        raise ValueError("n_boot too small to estimate quantiles")
    rng = rng or np.random.default_rng(0)
    indices = rng.integers(0, terms.size, size=(n_boot, terms.size))
    means = terms[indices].mean(axis=1)
    low = float(np.quantile(means, delta / 2.0))
    high = float(np.quantile(means, 1.0 - delta / 2.0))
    return ConfidenceInterval(low, high, 1.0 - delta)


def bootstrap_ips_interval(
    policy: Policy,
    dataset: Dataset,
    delta: float = 0.05,
    n_boot: int = 1000,
    rng: Optional[np.random.Generator] = None,
    backend: Optional[str] = None,
) -> ConfidenceInterval:
    """Bootstrap CI for a policy's IPS value on an exploration log.

    ``backend`` selects the evaluation path for the single pass that
    computes the IPS terms (the resampling itself is always one
    fancy-indexing matrix operation); the vectorized default shares the
    dataset's cached columnar view with any other estimator runs.
    """
    terms = IPSEstimator(backend=backend).weighted_rewards(policy, dataset)
    return bootstrap_interval_from_terms(terms, delta, n_boot, rng)


def bootstrap_snips_interval(
    policy: Policy,
    dataset: Dataset,
    delta: float = 0.05,
    n_boot: int = 1000,
    rng: Optional[np.random.Generator] = None,
    backend: Optional[str] = None,
) -> ConfidenceInterval:
    """Bootstrap CI for SNIPS — resamples (weight, weighted-reward)
    pairs jointly, since the estimator is a ratio of means."""
    snips = SNIPSEstimator(backend=backend)
    weights = snips.match_weights(policy, dataset)
    rewards = dataset.rewards()
    if weights.size < 2:
        raise ValueError("need at least two interactions")
    if weights.sum() == 0:
        raise ValueError("candidate never matches the log; no information")
    rng = rng or np.random.default_rng(0)
    numerators = weights * rewards
    indices = rng.integers(0, weights.size, size=(n_boot, weights.size))
    num = numerators[indices].sum(axis=1)
    den = weights[indices].sum(axis=1)
    ratios = np.divide(num, den, out=np.full(n_boot, np.nan), where=den > 0)
    ratios = ratios[np.isfinite(ratios)]
    if ratios.size < n_boot // 2:
        raise ValueError(
            "too few matching interactions for a stable bootstrap"
        )
    low = float(np.quantile(ratios, delta / 2.0))
    high = float(np.quantile(ratios, 1.0 - delta / 2.0))
    return ConfidenceInterval(low, high, 1.0 - delta)
