"""Core data types for contextual-bandit exploration data.

The central object is the exploration tuple ``⟨x, a, r, p⟩`` from §2 of
the paper: a *context* observed by the system, the *action* it took,
the *reward* obtained, and the *propensity* — the probability with
which the logging policy chose that action.  :class:`Interaction`
represents one tuple; :class:`Dataset` is an ordered collection of them
with the bookkeeping needed by the estimators and learners.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence, Union

import numpy as np

Context = Mapping[str, float]
"""A context is a mapping of named features to numeric values.

Feature engineering (one-hot encoding of categoricals etc.) happens
upstream in :mod:`repro.core.features`; by the time data reaches the
estimators every feature is a float.
"""


@dataclass(frozen=True)
class RewardRange:
    """The closed interval rewards are known to lie in.

    The Eq. 1 confidence interval assumes rewards in ``[0, 1]``; for
    system metrics like latency we record the natural range and
    normalize when computing bounds.  ``maximize`` records the sign
    convention from Table 1 (hit rate is maximized; latency and
    downtime are minimized).
    """

    low: float = 0.0
    high: float = 1.0
    maximize: bool = True

    def __post_init__(self) -> None:
        if not self.high > self.low:
            raise ValueError(f"empty reward range [{self.low}, {self.high}]")

    @property
    def width(self) -> float:
        """Length of the interval."""
        return self.high - self.low

    def normalize(self, reward: float) -> float:
        """Map a raw reward into [0, 1], flipping sign for minimized metrics."""
        unit = (reward - self.low) / self.width
        return unit if self.maximize else 1.0 - unit

    def clip(self, reward: float) -> float:
        """Clamp a raw reward into the declared range."""
        return min(self.high, max(self.low, reward))


class ActionSpace:
    """A finite set of actions, possibly restricted per context.

    Actions are integers ``0..n_actions-1`` with optional human-readable
    labels.  An ``eligibility`` callback restricts which actions are
    available for a given context (the paper notes the action set *A*
    may depend on *x*, e.g. only the items currently in the cache can
    be evicted).
    """

    def __init__(
        self,
        n_actions: int,
        labels: Optional[Sequence[str]] = None,
        eligibility: Optional[Callable[[Context], Sequence[int]]] = None,
    ) -> None:
        if n_actions <= 0:
            raise ValueError("action space must be non-empty")
        if labels is not None and len(labels) != n_actions:
            raise ValueError(
                f"got {len(labels)} labels for {n_actions} actions"
            )
        self.n_actions = n_actions
        self.labels = list(labels) if labels is not None else [
            str(i) for i in range(n_actions)
        ]
        self._eligibility = eligibility

    @property
    def restricted(self) -> bool:
        """Whether eligibility may vary per context."""
        return self._eligibility is not None

    def actions(self, context: Optional[Context] = None) -> list[int]:
        """Eligible action ids for ``context`` (all actions if unrestricted)."""
        if self._eligibility is None or context is None:
            return list(range(self.n_actions))
        eligible = list(self._eligibility(context))
        if not eligible:
            raise ValueError("eligibility callback returned no actions")
        for a in eligible:
            if not 0 <= a < self.n_actions:
                raise ValueError(f"eligible action {a} out of range")
        return eligible

    def label(self, action: int) -> str:
        """Human-readable label of an action id."""
        return self.labels[action]

    def __len__(self) -> int:
        return self.n_actions

    def __repr__(self) -> str:
        return f"ActionSpace(n={self.n_actions})"


@dataclass
class Interaction:
    """One exploration datapoint ``⟨x, a, r, p⟩``.

    ``full_rewards`` is optional and only present for full-feedback
    data such as the machine-health scenario, where the logs reveal the
    reward of *every* action (the paper exploits this to compute ground
    truth and to simulate partial feedback).
    """

    context: Context
    action: int
    reward: float
    propensity: float
    timestamp: float = 0.0
    full_rewards: Optional[Sequence[float]] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.propensity <= 1.0:
            raise ValueError(
                f"propensity must be in (0, 1], got {self.propensity}"
            )
        if self.action < 0:
            raise ValueError(f"action id must be non-negative, got {self.action}")
        if not math.isfinite(self.reward):
            # A single NaN/inf reward silently poisons every estimator
            # downstream; fail at the boundary instead.
            raise ValueError(f"reward must be finite, got {self.reward}")
        if self.full_rewards is not None and not all(
            math.isfinite(r) for r in self.full_rewards
        ):
            raise ValueError("full_rewards must all be finite")

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        out = {
            "context": dict(self.context),
            "action": self.action,
            "reward": self.reward,
            "propensity": self.propensity,
            "timestamp": self.timestamp,
        }
        if self.full_rewards is not None:
            out["full_rewards"] = list(self.full_rewards)
        if self.metadata:
            out["metadata"] = self.metadata
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "Interaction":
        """Inverse of :meth:`to_dict`."""
        return cls(
            context=dict(data["context"]),
            action=int(data["action"]),
            reward=float(data["reward"]),
            propensity=float(data["propensity"]),
            timestamp=float(data.get("timestamp", 0.0)),
            full_rewards=data.get("full_rewards"),
            metadata=dict(data.get("metadata", {})),
        )


class Dataset:
    """An ordered collection of :class:`Interaction` records.

    This is the unit of currency between the harvesting pipeline, the
    estimators, and the learners.  It keeps interactions in logged
    order (the trajectory estimators in
    :mod:`repro.core.estimators.trajectory` need that) and knows its
    action space and reward range.
    """

    def __init__(
        self,
        interactions: Optional[Iterable[Interaction]] = None,
        action_space: Optional[ActionSpace] = None,
        reward_range: Optional[RewardRange] = None,
    ) -> None:
        self._interactions: list[Interaction] = list(interactions or [])
        self.action_space = action_space
        self.reward_range = reward_range or RewardRange()
        #: Populated by validated loaders (see :mod:`repro.core.validation`):
        #: the records rejected or repaired while building this dataset.
        self.quarantine = None
        # Mutation counter + cache slot for the columnar view (see
        # :meth:`columns`); appends invalidate by bumping the counter.
        self._version = 0
        self._columns_cache = None
        self._columns_version = -1

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._interactions)

    def __iter__(self) -> Iterator[Interaction]:
        return iter(self._interactions)

    def __getitem__(self, index: Union[int, slice]) -> Union[Interaction, "Dataset"]:
        if isinstance(index, slice):
            return Dataset(
                self._interactions[index], self.action_space, self.reward_range
            )
        return self._interactions[index]

    def append(self, interaction: Interaction) -> None:
        """Add one interaction to the end of the log."""
        self._interactions.append(interaction)
        self._version += 1

    def extend(self, interactions: Iterable[Interaction]) -> None:
        """Add many interactions, preserving order."""
        self._interactions.extend(interactions)
        self._version += 1

    # -- vectorized views ----------------------------------------------------

    def rewards(self) -> np.ndarray:
        """All rewards as a float array."""
        return np.array([i.reward for i in self._interactions], dtype=float)

    def actions(self) -> np.ndarray:
        """All logged actions as an int array."""
        return np.array([i.action for i in self._interactions], dtype=int)

    def propensities(self) -> np.ndarray:
        """All logged propensities as a float array."""
        return np.array([i.propensity for i in self._interactions], dtype=float)

    def min_propensity(self) -> float:
        """Minimum logged propensity ε — the key quantity in Eq. 1."""
        if not self._interactions:
            raise ValueError("empty dataset has no propensities")
        return float(min(i.propensity for i in self._interactions))

    def columns(self):
        """The cached columnar view (see :mod:`repro.core.columns`).

        Built lazily on first use and shared by every estimator and
        every candidate policy evaluated against this dataset — this is
        what amortizes featurization and eligibility resolution across
        a whole policy-class search.  Invalidated automatically when
        the dataset is mutated via :meth:`append`/:meth:`extend`.
        """
        if self._columns_cache is None or self._columns_version != self._version:
            from repro.core.columns import DatasetColumns

            if self._columns_cache is not None:
                # The stale view may own a shared-memory segment; unlink
                # it now rather than waiting for interpreter exit.
                self._columns_cache.release_shared_block()
            self._columns_cache = DatasetColumns.from_dataset(self)
            self._columns_version = self._version
        return self._columns_cache

    # -- splits and transforms ----------------------------------------------

    def split(self, fraction: float) -> tuple["Dataset", "Dataset"]:
        """Split in logged order into (first ``fraction``, rest)."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        cut = int(round(len(self) * fraction))
        return (
            Dataset(self._interactions[:cut], self.action_space, self.reward_range),
            Dataset(self._interactions[cut:], self.action_space, self.reward_range),
        )

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        """A copy with interaction order permuted (breaks trajectories!)."""
        order = rng.permutation(len(self._interactions))
        return Dataset(
            [self._interactions[int(i)] for i in order],
            self.action_space,
            self.reward_range,
        )

    def subsample(self, n: int, rng: np.random.Generator) -> "Dataset":
        """A uniform random subsample of ``n`` interactions, logged order kept."""
        if n > len(self):
            raise ValueError(f"cannot subsample {n} of {len(self)}")
        chosen = sorted(rng.choice(len(self), size=n, replace=False))
        return Dataset(
            [self._interactions[int(i)] for i in chosen],
            self.action_space,
            self.reward_range,
        )

    def filter(self, predicate: Callable[[Interaction], bool]) -> "Dataset":
        """Interactions satisfying ``predicate``, in logged order."""
        return Dataset(
            [i for i in self._interactions if predicate(i)],
            self.action_space,
            self.reward_range,
        )

    def normalized(self) -> "Dataset":
        """Copy with rewards mapped into [0, 1] via the reward range.

        Estimation theory (Eq. 1) assumes unit-range rewards; systems
        log raw metrics.  This is the bridge between the two.
        """
        rr = self.reward_range
        out = [
            Interaction(
                context=i.context,
                action=i.action,
                reward=rr.normalize(rr.clip(i.reward)),
                propensity=i.propensity,
                timestamp=i.timestamp,
                full_rewards=(
                    [rr.normalize(rr.clip(r)) for r in i.full_rewards]
                    if i.full_rewards is not None
                    else None
                ),
                metadata=i.metadata,
            )
            for i in self._interactions
        ]
        return Dataset(out, self.action_space, RewardRange(0.0, 1.0, maximize=True))

    # -- persistence ----------------------------------------------------------

    def save_jsonl(self, path: str) -> None:
        """Write one JSON object per line (the scavengeable log format)."""
        with open(path, "w", encoding="utf-8") as f:
            for interaction in self._interactions:
                f.write(json.dumps(interaction.to_dict()) + "\n")

    @classmethod
    def load_jsonl(
        cls,
        path: str,
        action_space: Optional[ActionSpace] = None,
        reward_range: Optional[RewardRange] = None,
        mode: str = "strict",
        validator=None,
        verify_ledger: str = "auto",
    ) -> "Dataset":
        """Inverse of :meth:`save_jsonl`, with a validated data boundary.

        ``mode`` selects how defective records are handled (see
        :mod:`repro.core.validation`): ``"strict"`` (default) raises a
        :class:`ValueError` naming the file and 1-based line number of
        the first bad record; ``"quarantine"`` sets bad records aside
        with reasons; ``"repair"`` additionally fixes clampable defects.
        The quarantine is attached to the returned dataset as
        ``dataset.quarantine``.

        In strict mode without an explicit ``validator`` only the
        structural invariants are enforced (parseable JSON plus the
        :class:`Interaction` constructor's own checks), matching the
        historical contract; the non-strict modes also check action
        eligibility and the declared reward range.

        ``verify_ledger`` controls chain verification of ledgered logs
        (see :mod:`repro.audit.ledger`): ``"auto"`` (default) checks
        every record carrying ledger metadata and routes broken hash
        bindings through ``mode`` under the ``"ledger"`` reason — plain
        un-ledgered logs load exactly as before; ``"require"``
        additionally fails if the log carries no ledger at all;
        ``"off"`` skips chain checking.  In strict mode linkage gaps
        (missing records) are also hard failures; in
        quarantine/repair they are tolerated, since dropping a
        quarantined record necessarily leaves a gap — run
        :func:`repro.audit.ledger.rechain` over the survivors to
        restore a clean chain.
        """
        from repro.core.validation import (
            Quarantine,
            RecordValidator,
            check_mode,
            validated_interactions,
        )

        check_mode(mode)
        if verify_ledger not in ("auto", "require", "off"):
            raise ValueError(
                f"unknown verify_ledger {verify_ledger!r}; "
                "expected 'auto', 'require', or 'off'"
            )
        chain = None
        if verify_ledger != "off":
            from repro.audit.ledger import ChainFollower

            chain = ChainFollower(strict_links=(mode == "strict"))
        if validator is None:
            validator = (
                RecordValidator()
                if mode == "strict"
                else RecordValidator(
                    action_space=action_space, reward_range=reward_range
                )
            )
        quarantine = Quarantine()
        with open(path, "r", encoding="utf-8") as f:
            interactions = list(
                validated_interactions(
                    f,
                    mode=mode,
                    validator=validator,
                    quarantine=quarantine,
                    source_name=path,
                    chain=chain,
                )
            )
        if verify_ledger == "require" and (chain is None or not chain.engaged):
            raise ValueError(
                f"{path}: verify_ledger='require' but the log carries no "
                "ledger metadata"
            )
        dataset = cls(interactions, action_space, reward_range)
        dataset.quarantine = quarantine
        from repro.obs.metrics import get_metrics

        get_metrics().counter("engine.rows_ingested", backend="memory").inc(
            len(dataset)
        )
        return dataset

    def __repr__(self) -> str:
        return f"Dataset(n={len(self)}, actions={self.action_space})"
