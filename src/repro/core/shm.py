"""Zero-copy shared-memory transport for columnar evaluation data.

The parallel paths used to ship *data* to worker processes by value:
every chunk fold pickled its interaction rows and every bootstrap shard
pickled the full term vector.  On a multi-megabyte log the serialization
dwarfs the arithmetic, which is how ``BENCH_ope.json`` ended up showing
parallel runs *losing* to serial ones.  This module replaces the data
plane:

- :class:`SharedArrayBlock` packs a set of named NumPy arrays into one
  ``multiprocessing.shared_memory`` segment and hands out a compact,
  picklable :class:`BlockDescriptor` (segment name + per-array
  dtype/shape/offset).  Workers :func:`attach_arrays` zero-copy — the
  payload that crosses the fork boundary is a few hundred bytes no
  matter how large the log is.
- :func:`pack_columns` / :func:`attach_columns` extend that to a whole
  :class:`~repro.core.columns.DatasetColumns` view: actions, rewards,
  propensities, timestamps, the eligibility mask, and the context
  features (packed as a dense ``(N, C)`` float matrix over the sorted
  key vocabulary plus an insertion-order map so worker-side dicts
  rebuild *exactly*, preserving hashed-feature summation order).
  :func:`pack_interactions` is the streaming variant used by the JSONL
  driver, which packs each chunk straight from interaction rows.
- Lifecycle: the creating process owns every segment.  Owners are
  tracked in a registry; :meth:`SharedArrayBlock.release` is
  idempotent, engine/bootstrap callers release in ``finally`` blocks,
  and an ``atexit`` hook unlinks anything still owned at interpreter
  shutdown, so segments never outlive the process even on exceptions
  or worker crashes.  Attaching suppresses ``resource_tracker``
  registration (the owner's registration is the canonical one; a
  second registration per attach would make the tracker double-count
  and spew spurious leak warnings at exit).

``REPRO_NO_SHM=1`` disables the whole module — every caller falls back
to the legacy pickled-payload paths, which remain bit-identical.
"""

from __future__ import annotations

import atexit
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.columns import DatasetColumns
from repro.core.types import RewardRange
from repro.obs.metrics import get_metrics

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing.shared_memory import SharedMemory as _SharedMemory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    _resource_tracker = None
    _SharedMemory = None

#: Byte alignment for each array inside a segment (cache-line friendly).
_ALIGN = 64

#: Refuse to pack context matrices wider than this many distinct keys —
#: a dense (N, C) layout over a huge sparse vocabulary would waste more
#: memory than pickling saves.  Callers fall back to pickled payloads.
MAX_CONTEXT_KEYS = 1024

#: Attached segments cached per process (workers reuse one mapping for
#: every task that references the same block).  Small: long-lived blocks
#: are one per dataset / bootstrap call.
_ATTACH_CACHE_SIZE = 4


class SharedMemoryUnsupported(RuntimeError):
    """Raised when data cannot be placed in shared memory.

    Callers treat this as "use the legacy pickled path": contexts with
    non-numeric values, oversized key vocabularies, non-canonical
    eligibility orders, platforms without POSIX shared memory, or an
    explicit ``REPRO_NO_SHM=1`` opt-out all land here.
    """


def available() -> bool:
    """Whether shared-memory transport can be used in this process."""
    if _SharedMemory is None:
        return False
    return os.environ.get("REPRO_NO_SHM", "") != "1"


@dataclass(frozen=True)
class BlockDescriptor:
    """Compact picklable handle for one shared segment.

    ``arrays`` holds ``(name, dtype_str, shape, offset)`` for each
    packed array; ``meta`` carries small picklable facts the attaching
    side needs to rebuild higher-level views (see
    :func:`attach_columns`).  A descriptor pickles to a few hundred
    bytes regardless of the segment's size — this is the whole payload
    a worker receives instead of the data.
    """

    segment: str
    nbytes: int
    arrays: tuple
    meta: tuple

    def meta_dict(self) -> dict:
        """The ``meta`` key/value pairs as a dict."""
        return dict(self.meta)


# ---------------------------------------------------------------------------
# owner side: create / release

#: Segments owned (created) by this process, keyed by segment name.
_OWNED: "OrderedDict[str, SharedArrayBlock]" = OrderedDict()
_OWNED_LOCK = threading.Lock()


class SharedArrayBlock:
    """A set of named NumPy arrays living in one shared segment.

    Created (and therefore owned) by exactly one process via
    :meth:`create`; other processes attach read-only views through the
    :attr:`descriptor`.  The owner must call :meth:`release` (idempotent)
    when done — engine and bootstrap do so in ``finally`` blocks, and a
    process-exit hook releases anything that slips through.
    """

    def __init__(self, shm, descriptor: BlockDescriptor) -> None:
        self._shm = shm
        self.descriptor = descriptor
        self.released = False

    @classmethod
    def create(
        cls, arrays: "OrderedDict[str, np.ndarray] | dict", meta: Optional[dict] = None
    ) -> "SharedArrayBlock":
        """Copy ``arrays`` into a fresh shared segment and own it.

        ``meta`` must contain only small picklable values; it travels
        inside the descriptor, not the segment.
        """
        if not available():
            raise SharedMemoryUnsupported(
                "shared memory is unavailable (REPRO_NO_SHM or platform)"
            )
        specs = []
        offset = 0
        prepared = []
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            offset = -(-offset // _ALIGN) * _ALIGN
            specs.append((name, array.dtype.str, array.shape, offset))
            prepared.append((array, offset))
            offset += array.nbytes
        total = max(offset, 1)
        try:
            shm = _SharedMemory(create=True, size=total)
        except OSError as error:  # pragma: no cover - /dev/shm exhausted
            raise SharedMemoryUnsupported(
                f"could not create a {total}-byte shared segment: {error}"
            ) from error
        for array, start in prepared:
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=shm.buf, offset=start
            )
            view[...] = array
        descriptor = BlockDescriptor(
            segment=shm.name,
            nbytes=total,
            arrays=tuple(specs),
            meta=tuple(sorted((meta or {}).items())),
        )
        block = cls(shm, descriptor)
        with _OWNED_LOCK:
            _OWNED[shm.name] = block
        metrics = get_metrics()
        metrics.counter("shm.segments_created").inc()
        metrics.counter("shm.bytes_shared").inc(total)
        return block

    def arrays(self) -> dict:
        """Owner-side zero-copy views of the packed arrays."""
        if self.released:
            raise ValueError("block already released")
        return _views(self._shm, self.descriptor)

    def release(self) -> None:
        """Close and unlink the segment (idempotent, exception-safe)."""
        if self.released:
            return
        self.released = True
        with _OWNED_LOCK:
            _OWNED.pop(self.descriptor.segment, None)
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - exported views
            pass
        try:
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass
        get_metrics().counter("shm.segments_released").inc()

    def __enter__(self) -> "SharedArrayBlock":
        """Context-manager entry: the block itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: release the segment."""
        self.release()


def owned_segments() -> tuple:
    """Names of segments this process currently owns (for tests)."""
    with _OWNED_LOCK:
        return tuple(_OWNED)


def release_all() -> None:
    """Release every segment this process still owns.

    Runs at interpreter exit so no segment outlives the process; safe
    to call any time (releases are idempotent).
    """
    with _OWNED_LOCK:
        blocks = list(_OWNED.values())
    for block in blocks:
        block.release()


atexit.register(release_all)


# ---------------------------------------------------------------------------
# attach side: map an existing segment without re-registering it

_ATTACH_LOCK = threading.Lock()
_ATTACHED: "OrderedDict[str, tuple]" = OrderedDict()


def _attach_segment(name: str):
    """Open an existing segment without resource-tracker registration.

    Only the creating process may register a segment: a second
    registration from an attacher makes the shared resource tracker
    double-count the name, producing either spurious "leaked
    shared_memory" warnings or a tracker ``KeyError`` when both sides
    clean up.  Python 3.13 exposes ``track=False``; on earlier versions
    the registration hook is suppressed for the duration of the call.
    """
    if _SharedMemory is None:  # pragma: no cover - guarded by available()
        raise SharedMemoryUnsupported("shared memory is unavailable")
    try:
        return _SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    with _ATTACH_LOCK:
        original = _resource_tracker.register
        _resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _SharedMemory(name=name)
        finally:
            _resource_tracker.register = original


def _views(shm, descriptor: BlockDescriptor) -> dict:
    """Build the named array views over a mapped segment."""
    out = {}
    for name, dtype, shape, offset in descriptor.arrays:
        out[name] = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
        )
    return out


def _close_mapping(shm) -> None:
    """Close one mapping, tolerating exported-view refusals."""
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - views still live
        pass


def attach_arrays(descriptor: BlockDescriptor, cache: bool = True) -> dict:
    """Zero-copy views of a block created by another process.

    With ``cache=True`` the mapping is kept open and reused for later
    attaches of the same segment (bootstrap shards and chunk folds hit
    the same block repeatedly); a small LRU closes old mappings.  With
    ``cache=False`` the mapping is tracked but never reused — workers
    call :func:`detach` once the one-shot views are dead.
    """
    key = descriptor.segment if cache else f"!{descriptor.segment}"
    if cache:
        with _ATTACH_LOCK:
            entry = _ATTACHED.get(key)
            if entry is not None:
                _ATTACHED.move_to_end(key)
                return entry[1]
    shm = _attach_segment(descriptor.segment)
    views = _views(shm, descriptor)
    evicted = []
    with _ATTACH_LOCK:
        _ATTACHED[key] = [shm, views, None]
        while len(_ATTACHED) > _ATTACH_CACHE_SIZE:
            evicted.append(_ATTACHED.popitem(last=False)[1][0])
    for old in evicted:
        _close_mapping(old)
    return views


def detach(descriptor: BlockDescriptor) -> None:
    """Close this process's mapping of ``descriptor``'s segment.

    Views into the mapping must no longer be referenced.  Used by
    workers for one-shot chunk segments; cached mappings are evicted
    automatically.
    """
    with _ATTACH_LOCK:
        entries = [
            _ATTACHED.pop(key, None)
            for key in (descriptor.segment, f"!{descriptor.segment}")
        ]
    for entry in entries:
        if entry is not None:
            _close_mapping(entry[0])


def detach_all() -> None:
    """Close every cached attachment in this process (for tests)."""
    with _ATTACH_LOCK:
        entries = list(_ATTACHED.values())
        _ATTACHED.clear()
    for entry in entries:
        _close_mapping(entry[0])


# ---------------------------------------------------------------------------
# columnar packing: DatasetColumns <-> shared block


def _numeric(value) -> bool:
    """Whether a context value packs losslessly into a float64 cell."""
    return isinstance(value, (int, float, np.integer, np.floating)) and (
        not isinstance(value, bool)
    )


def _pack_context_rows(contexts, key_to_col: dict, n_keys: int):
    """Dense ``(N, C)`` value matrix + 1-based insertion-order map.

    The order map is what makes worker-side reconstruction *exact*:
    rebuilt dicts iterate in the original insertion order, so hashed
    featurization (whose per-slot sums depend on iteration order when
    names collide) is bit-identical to the parent's.
    """
    n = len(contexts)
    values = np.zeros((n, n_keys), dtype=np.float64)
    order = np.zeros((n, n_keys), dtype=np.int32)
    for row, context in enumerate(contexts):
        position = 0
        for key, value in context.items():
            if not _numeric(value):
                raise SharedMemoryUnsupported(
                    f"context value {key}={value!r} is not numeric"
                )
            column = key_to_col.get(key)
            if column is None:
                raise SharedMemoryUnsupported(
                    f"context key {key!r} missing from the packed vocabulary"
                )
            position += 1
            values[row, column] = float(value)
            order[row, column] = position
    return values, order


class PackedContexts(Sequence):
    """Lazy sequence view over contexts packed as dense matrices.

    Behaves like the tuple of context dicts a
    :class:`~repro.core.columns.DatasetColumns` normally holds, but
    each dict is rebuilt on demand from the shared ``(N, C)`` value
    matrix — the common batch paths (named feature matrices) never
    materialize a single dict.  Slicing returns another lazy view.
    """

    __slots__ = ("_values", "_order", "_keys")

    def __init__(self, values, order, keys) -> None:
        self._values = values
        self._order = order
        self._keys = keys

    def __len__(self) -> int:
        """Number of packed context rows."""
        return self._values.shape[0]

    def __getitem__(self, index):
        """One rebuilt context dict, or a lazy view for slices."""
        if isinstance(index, slice):
            return PackedContexts(
                self._values[index], self._order[index], self._keys
            )
        order_row = self._order[index]
        present = np.nonzero(order_row)[0]
        present = present[np.argsort(order_row[present], kind="stable")]
        values_row = self._values[index]
        return {
            self._keys[col]: float(values_row[col]) for col in present
        }


class SharedDatasetColumns(DatasetColumns):
    """A :class:`DatasetColumns` attached zero-copy to a shared block.

    Construction bypasses the per-row ``__init__`` entirely: every
    column is a view into the segment, contexts are a
    :class:`PackedContexts` lazy sequence, and :meth:`feature_matrix`
    gathers named features straight from the packed value matrix.
    Instances are what workers fold; they never own the segment.
    """

    def __getattr__(self, name: str):
        """Lazily derive ``eligible_lists`` from the mask on first use.

        Only the per-row loop fallbacks touch ``eligible_lists``; the
        batch paths use the mask, so attached views skip building the
        tuples until (unless) a loop path asks.
        """
        if name == "eligible_lists":
            if self.uniform_eligibility:
                lists = (self._shared_eligible,) * self.n
            else:
                lists = tuple(
                    tuple(int(a) for a in np.nonzero(row)[0])
                    for row in self.eligible_mask
                )
            self.eligible_lists = lists
            return lists
        raise AttributeError(name)

    def feature_matrix(self, feature_names) -> np.ndarray:
        """Named-feature matrix gathered from the packed value matrix.

        Bit-identical to the per-row dict loop: each cell is the same
        ``float(context.get(name, 0.0))`` the parent stored at pack
        time, and absent names (or names outside the vocabulary) are
        exactly ``0.0``.
        """
        key = tuple(feature_names)
        cached = self._feature_matrices.get(key)
        if cached is None:
            packed: PackedContexts = self.contexts
            cached = np.empty((self.n, len(key) + 1))
            for col, name in enumerate(key):
                index = self._ctx_key_index.get(name)
                if index is None:
                    cached[:, col] = 0.0
                else:
                    values = packed._values[:, index]
                    present = packed._order[:, index] > 0
                    cached[:, col] = np.where(present, values, 0.0)
            cached[:, -1] = 1.0
            self._feature_matrices[key] = cached
        return cached


def _eligibility_payload(columns: DatasetColumns):
    """Split eligibility into ``(shared_tuple, mask_arrays)`` for packing.

    Uniform logs ship one tuple in the descriptor (order preserved
    verbatim, so non-canonical-but-uniform orders stay exact); per-row
    logs ship the boolean mask, which only reconstructs sorted eligible
    lists — exact iff the order was canonical, hence the gate.
    """
    if columns.uniform_eligibility:
        shared = columns.eligible_lists[0] if columns.n else (0,)
        return tuple(int(a) for a in shared), {}
    if not columns.canonical_order:
        raise SharedMemoryUnsupported(
            "per-row eligibility in non-canonical order cannot be packed"
        )
    return None, {
        "eligible_mask": columns.eligible_mask,
        "eligible_counts": columns.eligible_counts,
    }


def pack_columns(columns: DatasetColumns) -> SharedArrayBlock:
    """Pack a whole columnar view into one shared segment.

    Raises :class:`SharedMemoryUnsupported` when the view cannot be
    represented (non-numeric context values, oversized vocabulary,
    non-canonical per-row eligibility) — callers fall back to the
    legacy pickled paths, which remain bit-identical.
    """
    keys = sorted({key for context in columns.contexts for key in context})
    if len(keys) > MAX_CONTEXT_KEYS:
        raise SharedMemoryUnsupported(
            f"{len(keys)} context keys exceed MAX_CONTEXT_KEYS"
        )
    key_to_col = {key: col for col, key in enumerate(keys)}
    values, order = _pack_context_rows(columns.contexts, key_to_col, len(keys))
    shared_eligible, mask_arrays = _eligibility_payload(columns)
    arrays = OrderedDict(
        actions=columns.actions,
        rewards=columns.rewards,
        propensities=columns.propensities,
        timestamps=columns.timestamps,
        ctx_values=values,
        ctx_order=order,
    )
    arrays.update(mask_arrays)
    reward_range = columns.reward_range
    meta = {
        "n": columns.n,
        "n_actions": columns.n_actions,
        "ctx_keys": tuple(keys),
        "eligible_shared": shared_eligible,
        "canonical_order": columns.canonical_order,
        "reward_range": (
            None
            if reward_range is None
            else (reward_range.low, reward_range.high, reward_range.maximize)
        ),
    }
    return SharedArrayBlock.create(arrays, meta)


def pack_interactions(
    rows,
    key_to_col: dict,
    eligible_shared: tuple,
    n_actions: int,
) -> SharedArrayBlock:
    """Pack one chunk of interaction rows straight into a segment.

    The JSONL driver's path: no intermediate ``Dataset`` or
    ``DatasetColumns`` is built parent-side.  ``key_to_col`` comes from
    the discovery pass's global vocabulary and ``eligible_shared`` from
    the pinned action space, so worker-side views agree with the
    whole-log reconstruction exactly.  The context vocabulary itself
    rides in the once-pickled job blob, not in each descriptor.
    """
    n = len(rows)
    actions = np.fromiter((r.action for r in rows), dtype=np.int64, count=n)
    rewards = np.fromiter((r.reward for r in rows), dtype=np.float64, count=n)
    propensities = np.fromiter(
        (r.propensity for r in rows), dtype=np.float64, count=n
    )
    timestamps = np.fromiter(
        (r.timestamp for r in rows), dtype=np.float64, count=n
    )
    values, order = _pack_context_rows(
        [r.context for r in rows], key_to_col, len(key_to_col)
    )
    meta = {
        "n": n,
        "n_actions": int(n_actions),
        "ctx_keys": None,  # shipped once via the job blob
        "eligible_shared": tuple(int(a) for a in eligible_shared),
        "canonical_order": all(
            a < b for a, b in zip(eligible_shared, eligible_shared[1:])
        ),
        "reward_range": None,  # shipped once via the job blob
    }
    return SharedArrayBlock.create(
        OrderedDict(
            actions=actions,
            rewards=rewards,
            propensities=propensities,
            timestamps=timestamps,
            ctx_values=values,
            ctx_order=order,
        ),
        meta,
    )


def attach_columns(
    descriptor: BlockDescriptor,
    *,
    vocab: Optional[tuple] = None,
    reward_range: Optional[RewardRange] = None,
    cache: bool = True,
) -> SharedDatasetColumns:
    """Rebuild a :class:`SharedDatasetColumns` view over a shared block.

    ``vocab``/``reward_range`` override the descriptor's meta for chunk
    blocks, whose vocabulary travels once in the job blob.  With
    ``cache=True`` both the mapping *and* the built view (with its
    memoized feature matrices) are reused across tasks that reference
    the same segment — attach-once-per-worker is what makes pool reuse
    cheap.
    """
    if cache:
        with _ATTACH_LOCK:
            entry = _ATTACHED.get(descriptor.segment)
            if entry is not None and entry[2] is not None:
                _ATTACHED.move_to_end(descriptor.segment)
                return entry[2]
    views = attach_arrays(descriptor, cache=cache)
    meta = descriptor.meta_dict()
    keys = vocab if vocab is not None else meta.get("ctx_keys") or ()
    if reward_range is None and meta.get("reward_range") is not None:
        low, high, maximize = meta["reward_range"]
        reward_range = RewardRange(low, high, maximize)
    columns = _build_columns(views, meta, tuple(keys), reward_range)
    if cache:
        with _ATTACH_LOCK:
            entry = _ATTACHED.get(descriptor.segment)
            if entry is not None:
                entry[2] = columns
    return columns


def _build_columns(
    views: dict, meta: dict, keys: tuple, reward_range
) -> SharedDatasetColumns:
    """Assemble the attached view object from mapped arrays + meta."""
    n = int(meta["n"])
    n_actions = int(meta["n_actions"])
    shared_eligible = meta.get("eligible_shared")
    columns = SharedDatasetColumns.__new__(SharedDatasetColumns)
    columns.n = n
    columns.n_actions = n_actions
    columns.contexts = PackedContexts(
        views["ctx_values"], views["ctx_order"], keys
    )
    columns._ctx_key_index = {key: col for col, key in enumerate(keys)}
    if shared_eligible is not None:
        mask = np.zeros((n, n_actions), dtype=bool)
        if n:
            mask[:, list(shared_eligible)] = True
        columns.eligible_mask = mask
        columns.eligible_counts = mask.sum(axis=1).astype(float)
        columns.uniform_eligibility = True
        columns._shared_eligible = tuple(shared_eligible)
    else:
        columns.eligible_mask = views["eligible_mask"]
        columns.eligible_counts = views["eligible_counts"]
        columns.uniform_eligibility = False
        columns._shared_eligible = None
    columns.canonical_order = bool(meta["canonical_order"])
    columns._row_index = np.arange(n)
    columns._feature_matrices = {}
    columns._hashed_matrices = {}
    columns.actions = views["actions"]
    columns.rewards = views["rewards"]
    columns.propensities = views["propensities"]
    columns.timestamps = views["timestamps"]
    columns.action_space = None
    columns.reward_range = reward_range
    columns._observed_actions = None
    columns._identity_error = None
    columns._shared_block = None
    columns._ips_weight_cache = {}
    return columns
