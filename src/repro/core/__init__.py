"""Core library: contextual bandits and off-policy evaluation.

This package implements the paper's primary contribution — the
*harvesting randomness* methodology:

1. **Scavenge** exploration tuples ``⟨x, a, r⟩`` from system logs
   (:mod:`repro.core.harvest`).
2. **Infer** the propensity ``p`` of each logged decision
   (:mod:`repro.core.propensity`).
3. **Evaluate/optimize** candidate policies offline from the
   ``⟨x, a, r, p⟩`` data (:mod:`repro.core.estimators`,
   :mod:`repro.core.learners`).

The public API re-exported here is everything an application needs to
harvest its own logs.
"""

from repro.core.types import (
    ActionSpace,
    Dataset,
    Interaction,
    RewardRange,
)
from repro.core.columns import ContextColumns, DatasetColumns, DecisionBatch
from repro.core.engine import (
    get_default_backend,
    set_default_backend,
    use_backend,
)
from repro.core.features import FeatureEncoder, Featurizer
from repro.core.policies import (
    ConstantPolicy,
    DeterministicFunctionPolicy,
    EpsilonGreedyPolicy,
    GreedyRegressorPolicy,
    HashPolicy,
    LinearThresholdPolicy,
    MixturePolicy,
    Policy,
    PolicyClass,
    SoftmaxPolicy,
    UniformRandomPolicy,
    sample_from_probabilities,
)
from repro.core.estimators import (
    ClippedIPSEstimator,
    ConfidenceInterval,
    DirectMethodEstimator,
    DoublyRobustEstimator,
    EstimatorResult,
    FallbackEstimator,
    IPSEstimator,
    PerDecisionISEstimator,
    SNIPSEstimator,
    TrajectoryISEstimator,
    ab_testing_error_bound,
    ab_testing_sample_size,
    ips_error_bound,
    ips_sample_size,
)
from repro.core.diagnostics import (
    DiagnosticThresholds,
    ReliabilityDiagnostics,
    diagnose,
    effective_sample_size,
)
from repro.core.validation import (
    Quarantine,
    RecordValidator,
    RejectedRecord,
    validated_interactions,
)
from repro.core.learners import (
    CBLearner,
    EpochGreedyLearner,
    EpsilonGreedyLearner,
    PolicyClassOptimizer,
    RidgeRegressor,
    SGDRegressor,
    SupervisedTrainer,
)
from repro.core.propensity import (
    DeclaredPropensityModel,
    EmpiricalPropensityModel,
    PropensityModel,
    RegressionPropensityModel,
)
from repro.core.harvest import (
    HarvestPipeline,
    LogScavenger,
    harvest_columns,
    harvest_dataset,
    harvest_rows,
)
from repro.core.ab_testing import ABTest, ABTestReport
from repro.core.comparison import (
    BoundedEstimate,
    PairedComparison,
    compare_policies,
    evaluate_with_bound,
    sufficient_log_size,
)
from repro.core.streaming import (
    StreamingEvaluationBoard,
    StreamingIPS,
    StreamingSnapshot,
    ValidatedInteractionStream,
)
from repro.core.design import (
    ExplorationPlan,
    epsilon_for_deadline,
    exploration_plan,
    wasted_potential,
)
from repro.core.reporting import (
    dataset_summary,
    diagnostics_table,
    estimator_table,
    offline_online_table,
    quarantine_table,
)
from repro.core.bootstrap import (
    bootstrap_interval_from_terms,
    bootstrap_ips_interval,
    bootstrap_snips_interval,
)

__all__ = [
    "ActionSpace",
    "ContextColumns",
    "Dataset",
    "DatasetColumns",
    "DecisionBatch",
    "Interaction",
    "RewardRange",
    "get_default_backend",
    "set_default_backend",
    "use_backend",
    "FeatureEncoder",
    "Featurizer",
    "Policy",
    "ConstantPolicy",
    "DeterministicFunctionPolicy",
    "UniformRandomPolicy",
    "EpsilonGreedyPolicy",
    "SoftmaxPolicy",
    "GreedyRegressorPolicy",
    "HashPolicy",
    "LinearThresholdPolicy",
    "MixturePolicy",
    "PolicyClass",
    "sample_from_probabilities",
    "IPSEstimator",
    "ClippedIPSEstimator",
    "SNIPSEstimator",
    "TrajectoryISEstimator",
    "PerDecisionISEstimator",
    "DirectMethodEstimator",
    "DoublyRobustEstimator",
    "EstimatorResult",
    "FallbackEstimator",
    "ReliabilityDiagnostics",
    "DiagnosticThresholds",
    "diagnose",
    "effective_sample_size",
    "Quarantine",
    "RecordValidator",
    "RejectedRecord",
    "validated_interactions",
    "ConfidenceInterval",
    "ips_error_bound",
    "ips_sample_size",
    "ab_testing_error_bound",
    "ab_testing_sample_size",
    "CBLearner",
    "EpsilonGreedyLearner",
    "EpochGreedyLearner",
    "PolicyClassOptimizer",
    "RidgeRegressor",
    "SGDRegressor",
    "SupervisedTrainer",
    "PropensityModel",
    "DeclaredPropensityModel",
    "EmpiricalPropensityModel",
    "RegressionPropensityModel",
    "HarvestPipeline",
    "LogScavenger",
    "harvest_columns",
    "harvest_dataset",
    "harvest_rows",
    "ABTest",
    "ABTestReport",
    "BoundedEstimate",
    "PairedComparison",
    "compare_policies",
    "evaluate_with_bound",
    "sufficient_log_size",
    "StreamingIPS",
    "StreamingEvaluationBoard",
    "StreamingSnapshot",
    "ValidatedInteractionStream",
    "ExplorationPlan",
    "exploration_plan",
    "epsilon_for_deadline",
    "wasted_potential",
    "dataset_summary",
    "diagnostics_table",
    "estimator_table",
    "offline_online_table",
    "quarantine_table",
    "bootstrap_interval_from_terms",
    "bootstrap_ips_interval",
    "bootstrap_snips_interval",
]
