"""Feature engineering for scavenged contexts.

Step 1 of the methodology scavenges raw contextual information from
system logs; "some amount of feature engineering is required to convert
[it] into usable features" (§3).  This module provides that layer:
encoders from raw log records (mixed str/number dicts) to the numeric
:data:`~repro.core.types.Context` mappings the learners consume, and a
:class:`Featurizer` that turns contexts into dense vectors for the
regression oracles.
"""

from __future__ import annotations

import zlib
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.types import Context

RawRecord = Mapping[str, Union[str, int, float, bool]]


class FeatureEncoder:
    """Encodes raw log records into numeric contexts.

    Categorical fields are one-hot encoded against a vocabulary learned
    with :meth:`fit` (unseen categories map to an ``<other>`` bucket);
    numeric fields pass through, optionally standardized.
    """

    def __init__(
        self,
        categorical: Sequence[str] = (),
        numeric: Sequence[str] = (),
        standardize: bool = False,
    ) -> None:
        overlap = set(categorical) & set(numeric)
        if overlap:
            raise ValueError(f"fields declared both kinds: {sorted(overlap)}")
        self.categorical = list(categorical)
        self.numeric = list(numeric)
        self.standardize = standardize
        self._vocab: dict[str, list[str]] = {}
        self._means: dict[str, float] = {}
        self._stds: dict[str, float] = {}
        self._fitted = False

    def fit(self, records: Sequence[RawRecord]) -> "FeatureEncoder":
        """Learn vocabularies and (optionally) scaling from records."""
        if not records:
            raise ValueError("cannot fit an encoder on zero records")
        for fieldname in self.categorical:
            seen: list[str] = []
            for record in records:
                value = str(record.get(fieldname, ""))
                if value not in seen:
                    seen.append(value)
            self._vocab[fieldname] = seen
        for fieldname in self.numeric:
            values = np.array(
                [float(record.get(fieldname, 0.0)) for record in records]
            )
            self._means[fieldname] = float(values.mean())
            std = float(values.std())
            self._stds[fieldname] = std if std > 0 else 1.0
        self._fitted = True
        return self

    def encode(self, record: RawRecord) -> Context:
        """Encode one raw record into a numeric context."""
        if not self._fitted:
            raise RuntimeError("encoder must be fitted before encoding")
        out: dict[str, float] = {}
        for fieldname in self.categorical:
            value = str(record.get(fieldname, ""))
            vocab = self._vocab[fieldname]
            bucket = value if value in vocab else "<other>"
            out[f"{fieldname}={bucket}"] = 1.0
        for fieldname in self.numeric:
            value = float(record.get(fieldname, 0.0))
            if self.standardize:
                value = (value - self._means[fieldname]) / self._stds[fieldname]
            out[fieldname] = value
        return out

    def encode_all(self, records: Sequence[RawRecord]) -> list[Context]:
        """Encode a batch of records."""
        return [self.encode(record) for record in records]


class Featurizer:
    """Maps named-feature contexts to fixed-width dense vectors.

    Uses the hashing trick: each feature name hashes to one of
    ``n_dims`` slots (with a sign hash to reduce collision bias), so the
    learners never need a global feature dictionary — important when
    scavenging heterogeneous logs.  A constant bias slot is always set.

    For per-action models the featurizer can also produce
    action-interacted vectors (block per action), which is how a single
    linear model expresses action-dependent predictions.
    """

    def __init__(self, n_dims: int = 64, bias: bool = True) -> None:
        if n_dims < 2:
            raise ValueError("need at least 2 dims (one is the bias)")
        self.n_dims = n_dims
        self.bias = bias

    def _slot(self, name: str) -> tuple[int, float]:
        digest = zlib.crc32(name.encode("utf-8"))
        usable = self.n_dims - 1 if self.bias else self.n_dims
        index = digest % usable
        sign = 1.0 if (digest >> 16) & 1 else -1.0
        return index, sign

    def vector(self, context: Context) -> np.ndarray:
        """Hash a context into a dense vector of length ``n_dims``."""
        out = np.zeros(self.n_dims)
        for name, value in context.items():
            index, sign = self._slot(name)
            out[index] += sign * float(value)
        if self.bias:
            out[-1] = 1.0
        return out

    def action_vector(self, context: Context, action: int, n_actions: int) -> np.ndarray:
        """Context vector placed in the block belonging to ``action``.

        The returned vector has length ``n_dims * n_actions``; a single
        linear weight vector over it yields one prediction per action.
        """
        if not 0 <= action < n_actions:
            raise ValueError(f"action {action} out of range [0, {n_actions})")
        base = self.vector(context)
        out = np.zeros(self.n_dims * n_actions)
        start = action * self.n_dims
        out[start : start + self.n_dims] = base
        return out

    def matrix(self, contexts: Sequence[Context]) -> np.ndarray:
        """Stack context vectors into an ``(n, n_dims)`` matrix."""
        return np.stack([self.vector(c) for c in contexts]) if contexts else np.zeros(
            (0, self.n_dims)
        )


def interaction_features(context: Context, pairs: Sequence[tuple[str, str]]) -> Context:
    """Augment a context with products of named feature pairs.

    Lets linear policy classes express simple non-linearities (e.g.
    ``load × request_size``) without a richer model family.
    Missing features are treated as 0, dropping the product term.
    """
    out = dict(context)
    for left, right in pairs:
        if left in context and right in context:
            out[f"{left}*{right}"] = float(context[left]) * float(context[right])
    return out
