"""Online policy serving: the paper's §5 loop as a live service.

Everything else in this repo is batch: harvest a log, evaluate it,
pick a policy.  :mod:`repro.serve` closes the loop — a long-running
asyncio service answers ``act()`` requests with the incumbent policy,
streams every decision through the audit path
(:class:`~repro.audit.streams.StreamRNG` +
:class:`~repro.audit.ledger.DecisionLedger`) into a log that
``Dataset.load_jsonl`` ingests unchanged, periodically re-evaluates
candidate policies offline against that log, and hot-swaps to a
winner with zero dropped requests.

Layering (each importable and testable without the one above it):

- :mod:`~repro.serve.registry` — versioned policies, the atomic swap;
- :mod:`~repro.serve.gate` — the DR + diagnostics promotion gate, run
  in a killable subprocess;
- :mod:`~repro.serve.service` — the synchronous decision core
  (act/log/shadow/canary/gate/swap);
- :mod:`~repro.serve.batcher` — asyncio request coalescing;
- :mod:`~repro.serve.server` — the JSON-lines TCP front end
  (``python -m repro serve``).

See ``docs/serving.md`` for the operator's guide and
``docs/adr-0003-online-serving.md`` for the swap-safety design.
"""

from repro.serve.batcher import RequestBatcher
from repro.serve.gate import GateConfig, GateDecision, GateRunner, evaluate_candidate
from repro.serve.registry import PolicyRegistry, PolicyVersion
from repro.serve.server import PolicyServer
from repro.serve.service import DecisionService, DecisionSlice, ShadowReport

__all__ = [
    "DecisionService",
    "DecisionSlice",
    "GateConfig",
    "GateDecision",
    "GateRunner",
    "PolicyRegistry",
    "PolicyServer",
    "PolicyVersion",
    "RequestBatcher",
    "ShadowReport",
    "evaluate_candidate",
]
