"""The OPE promotion gate: no candidate serves without passing it.

Promotion safety is the whole point of the serving loop (paper §5;
the rollout-safety concerns come from *Productization Challenges of
Contextual Multi-Armed Bandits*, PAPERS.md): a candidate policy is
promoted only when an **offline** evaluation over the service's own
decision log says it is better, and says so *reliably*:

1. both the candidate and the incumbent are estimated with the
   doubly-robust estimator through the chunked engine
   (:func:`repro.core.engine.evaluate_jsonl_chunked` — O(chunk)
   memory, so gating never competes with serving for RAM);
2. the candidate's reliability diagnostics
   (:mod:`repro.core.diagnostics`) must not be UNRELIABLE (WARN is
   accepted by default — tighten with ``require_ok``);
3. the candidate's DR estimate must beat the incumbent's by at least
   ``margin``.

:func:`evaluate_candidate` is the pure decision function.
:class:`GateRunner` executes it in a **separate process** so a gate
evaluation can never block, crash, or slow the serving loop — a
SIGKILLed evaluation subprocess simply yields a ``promote=False``
decision with the exit code in its reasons (pinned by the chaos
suite).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Optional

from repro.core.diagnostics import VERDICT_UNRELIABLE
from repro.core.engine import evaluate_jsonl_chunked
from repro.core.estimators.doubly_robust import DoublyRobustEstimator
from repro.core.policies import Policy

__all__ = ["GateConfig", "GateDecision", "GateRunner", "evaluate_candidate"]


@dataclass(frozen=True)
class GateConfig:
    """Knobs of the promotion gate.

    ``min_rows`` guards against promoting off a sliver of log;
    ``margin`` is the minimum DR improvement over the incumbent;
    ``require_ok`` rejects WARN verdicts too (default accepts them —
    WARN means "look", UNRELIABLE means "do not act");
    ``chunk_size`` tunes the chunked engine's fold size.
    """

    min_rows: int = 256
    margin: float = 0.0
    require_ok: bool = False
    chunk_size: Optional[int] = None


@dataclass(frozen=True)
class GateDecision:
    """The gate's verdict on one candidate.

    ``promote`` is the only field the swap controller acts on; the
    rest (estimates, diagnostics verdict, reasons) land in the
    manifest's ``serving.gates`` record so every promotion — and every
    refusal — is auditable after the fact.
    """

    candidate: str
    promote: bool
    reasons: tuple = ()
    candidate_value: Optional[float] = None
    incumbent_value: Optional[float] = None
    verdict: Optional[str] = None
    n: int = 0
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-able form (manifest ``serving.gates`` entries)."""
        return {
            "candidate": self.candidate,
            "promote": self.promote,
            "reasons": list(self.reasons),
            "candidate_value": self.candidate_value,
            "incumbent_value": self.incumbent_value,
            "verdict": self.verdict,
            "n": self.n,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GateDecision":
        """Inverse of :meth:`to_dict` (pipe transport)."""
        return cls(
            candidate=data["candidate"],
            promote=bool(data["promote"]),
            reasons=tuple(data.get("reasons", ())),
            candidate_value=data.get("candidate_value"),
            incumbent_value=data.get("incumbent_value"),
            verdict=data.get("verdict"),
            n=int(data.get("n", 0)),
            details=dict(data.get("details", {})),
        )


def evaluate_candidate(
    log_path: str,
    candidate_name: str,
    candidate: Policy,
    incumbent: Policy,
    config: GateConfig = GateConfig(),
) -> GateDecision:
    """Run the offline OPE gate over a flushed decision log.

    Pure and synchronous — callable inline (tests, examples) or inside
    the :class:`GateRunner` subprocess (the server).  Estimation errors
    (empty log, unreadable file, degenerate weights) become a
    ``promote=False`` decision rather than an exception: the serving
    loop must never die because an evaluation did.
    """
    try:
        evaluation = evaluate_jsonl_chunked(
            log_path,
            [candidate, incumbent],
            [DoublyRobustEstimator()],
            chunk_size=config.chunk_size,
            mode="strict",
        )
    except (OSError, ValueError) as error:
        return GateDecision(
            candidate=candidate_name,
            promote=False,
            reasons=(f"evaluation failed: {error}",),
        )
    cand_result = evaluation.results[0][0]
    inc_result = evaluation.results[1][0]
    verdict = (
        cand_result.diagnostics.verdict
        if cand_result.diagnostics is not None
        else None
    )
    reasons = []
    if evaluation.n < config.min_rows:
        reasons.append(
            f"only {evaluation.n} rows logged (gate needs "
            f">= {config.min_rows})"
        )
    if verdict == VERDICT_UNRELIABLE:
        diag_reasons = "; ".join(cand_result.diagnostics.reasons)
        reasons.append(f"diagnostics UNRELIABLE: {diag_reasons}")
    elif config.require_ok and verdict != "OK":
        reasons.append(f"diagnostics {verdict} (gate requires OK)")
    if cand_result.value < inc_result.value + config.margin:
        reasons.append(
            f"candidate DR {cand_result.value:.4f} does not beat "
            f"incumbent {inc_result.value:.4f} by margin "
            f"{config.margin:g}"
        )
    return GateDecision(
        candidate=candidate_name,
        promote=not reasons,
        reasons=tuple(reasons),
        candidate_value=cand_result.value,
        incumbent_value=inc_result.value,
        verdict=verdict,
        n=evaluation.n,
        details={
            "candidate_std_error": cand_result.std_error,
            "incumbent_std_error": inc_result.std_error,
            "estimator": cand_result.estimator,
        },
    )


def _gate_worker(conn, log_path, candidate_name, candidate, incumbent,
                 config) -> None:
    """Subprocess entry: evaluate, ship the decision dict, exit."""
    try:
        decision = evaluate_candidate(
            log_path, candidate_name, candidate, incumbent, config
        )
        conn.send(decision.to_dict())
    except BaseException as error:  # noqa: BLE001 - report, never hang
        conn.send(
            {
                "candidate": candidate_name,
                "promote": False,
                "reasons": [f"evaluation crashed: {error!r}"],
            }
        )
    finally:
        conn.close()


class GateRunner:
    """One gate evaluation in a child process, pollable from the loop.

    The serving loop calls :meth:`poll` between request batches (or an
    asyncio task awaits :meth:`wait`); the child evaluates the flushed
    log independently.  If the child is SIGKILLed, OOM-killed, or
    crashes before reporting, :meth:`poll` returns a ``promote=False``
    decision naming the exit code — serving itself never notices.
    """

    def __init__(
        self,
        log_path: str,
        candidate_name: str,
        candidate: Policy,
        incumbent: Policy,
        config: GateConfig = GateConfig(),
    ) -> None:
        ctx = multiprocessing.get_context()
        self._recv, child_conn = ctx.Pipe(duplex=False)
        self.candidate_name = candidate_name
        self.process = ctx.Process(
            target=_gate_worker,
            args=(
                child_conn, log_path, candidate_name, candidate,
                incumbent, config,
            ),
            daemon=True,
        )
        self.process.start()
        # The parent's copy of the child end must close so EOF (child
        # death) is observable on the read end.
        child_conn.close()
        self._decision: Optional[GateDecision] = None

    @property
    def pid(self) -> Optional[int]:
        """The evaluation subprocess PID (for the chaos suite)."""
        return self.process.pid

    def _finish(self, decision: GateDecision) -> GateDecision:
        self._decision = decision
        self._recv.close()
        self.process.join(timeout=5)
        return decision

    def poll(self) -> Optional[GateDecision]:
        """Non-blocking check; a decision once the child reported/died."""
        if self._decision is not None:
            return self._decision
        try:
            if self._recv.poll(0):
                payload = self._recv.recv()
                return self._finish(GateDecision.from_dict(payload))
        except (EOFError, OSError):
            pass  # child died with the pipe open: fall through
        if not self.process.is_alive():
            return self._finish(
                GateDecision(
                    candidate=self.candidate_name,
                    promote=False,
                    reasons=(
                        "evaluation subprocess died without reporting "
                        f"(exitcode {self.process.exitcode})",
                    ),
                )
            )
        return None

    def wait(self, timeout: Optional[float] = None) -> Optional[GateDecision]:
        """Block up to ``timeout`` seconds for the decision."""
        if self._decision is not None:
            return self._decision
        self.process.join(timeout=timeout)
        return self.poll()

    def terminate(self) -> None:
        """Abandon the evaluation (service shutdown)."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)
        self._recv.close()
