"""Request coalescing: many small ``act()`` asks, one vectorized decide.

The decision core (:class:`repro.serve.service.DecisionService`) is
fast *per batch* — one ``act_batch`` call samples thousands of rows —
but a network server receives asks of 1–64 decisions.  The batcher
closes that gap with the classic single-flusher pattern: asks land in
a FIFO with a future each, and one flusher coroutine repeatedly drains
the queue into a single :meth:`~repro.serve.service.DecisionService.decide`
call, then carves the resulting
:class:`~repro.serve.service.DecisionSlice` back to the waiting
futures with zero-copy views.

Two properties the chaos suite pins fall out of this shape:

- **Zero drops across hot-swaps.**  Every queued ask is answered by
  exactly one decide slice; a swap (a plain method call on the service,
  executed between flusher iterations on the same event loop) can land
  before or after any given flush but never *inside* one, so each
  response carries one coherent policy version.
- **FIFO ordinal assignment.**  Asks map to contiguous ledger
  ordinals in arrival order — the response a client gets names exactly
  the ledger rows its decisions occupy.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Optional

from repro.serve.service import DecisionService, DecisionSlice

__all__ = ["RequestBatcher"]

#: Default cap on decisions coalesced into one decide call.
DEFAULT_MAX_BATCH = 8192


class RequestBatcher:
    """Coalesce concurrent asks into single-service decide calls.

    Single-loop discipline: all methods must be called from the event
    loop the batcher was started on.  ``max_batch`` bounds how many
    decisions one flush may coalesce (one oversized ask is still
    served whole — the cap shapes batching, it does not reject).
    """

    def __init__(
        self, service: DecisionService, max_batch: int = DEFAULT_MAX_BATCH
    ) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        self.service = service
        self.max_batch = int(max_batch)
        self._queue: deque = deque()
        self._wakeup = asyncio.Event()
        self._flusher: Optional[asyncio.Task] = None
        #: Asks answered (futures resolved with a slice).
        self.answered = 0
        #: Asks that errored (futures got the decide exception).
        self.errored = 0

    async def start(self) -> None:
        """Spawn the flusher task (idempotent)."""
        if self._flusher is None:
            self._flusher = asyncio.get_running_loop().create_task(
                self._run()
            )

    async def stop(self) -> None:
        """Cancel the flusher after draining every queued ask."""
        if self._flusher is None:
            return
        while self._queue:
            await asyncio.sleep(0)
        self._flusher.cancel()
        try:
            await self._flusher
        except asyncio.CancelledError:
            pass
        self._flusher = None

    async def ask(self, n: int) -> DecisionSlice:
        """Request ``n`` decisions; resolves with a contiguous slice."""
        if n <= 0:
            raise ValueError(f"ask needs a positive count, got {n}")
        if self._flusher is None:
            raise RuntimeError("batcher is not started")
        future = asyncio.get_running_loop().create_future()
        self._queue.append((int(n), future))
        self._wakeup.set()
        return await future

    async def _run(self) -> None:
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            while self._queue:
                self._flush_once()
                # Yield so swap/flush ops interleave between batches
                # even under a saturating ask stream.
                await asyncio.sleep(0)

    def _flush_once(self) -> None:
        """Drain up to ``max_batch`` decisions into one decide call."""
        batch: list = []
        total = 0
        while self._queue and (total < self.max_batch or not batch):
            n, future = self._queue[0]
            if future.cancelled():
                self._queue.popleft()
                continue
            if batch and total + n > self.max_batch:
                break
            self._queue.popleft()
            batch.append((n, future))
            total += n
        if not batch:
            return
        try:
            decisions = self.service.decide(total)
        except Exception as error:  # noqa: BLE001 - fail the asks, not the loop
            self.service.errors += len(batch)
            self.errored += len(batch)
            for _, future in batch:
                if not future.cancelled():
                    future.set_exception(error)
            return
        offset = 0
        for n, future in batch:
            if not future.cancelled():
                future.set_result(decisions.view(offset, offset + n))
                self.answered += 1
            offset += n

    def __repr__(self) -> str:
        return (
            f"RequestBatcher(queued={len(self._queue)}, "
            f"answered={self.answered}, max_batch={self.max_batch})"
        )
