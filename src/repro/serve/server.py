"""The asyncio policy server: JSON-lines decisions over TCP.

One :class:`PolicyServer` wraps one
:class:`~repro.serve.service.DecisionService` behind a newline-delimited
JSON protocol.  Each connection sends one request object per line and
receives one response line; ``act`` asks flow through the
:class:`~repro.serve.batcher.RequestBatcher` so concurrent clients
coalesce into vectorized decide calls.  Everything runs on one event
loop — the single-writer discipline the hot-swap atomicity argument
rests on (``docs/adr-0003-online-serving.md``).

Protocol (request → response, both single JSON lines)::

    {"op": "act", "n": 8}            → {"ok": true, "decisions": [...]}
    {"op": "stats"}                  → {"ok": true, "stats": {...}}
    {"op": "register", "name": ..., "policy": "eps:0:0.1"}
    {"op": "shadow", "name": ...}    → start shadowing a candidate
    {"op": "shadow-stop", "name": ...}
    {"op": "canary", "name": ..., "fraction": 0.1}
    {"op": "canary-stop"}
    {"op": "promote", "name": ...}   → OPE gate, then swap iff it passes
    {"op": "swap", "name": ...}      → forced swap (no gate)
    {"op": "flush"}                  → seal + append the decision log
    {"op": "ping"} / {"op": "shutdown"}

Failures come back as ``{"ok": false, "error": ...}`` on the same
line; a malformed request never takes the connection (or the server)
down.  The ``promote`` handler launches the gate subprocess and polls
it with short sleeps, so *other* connections keep being served at
full speed while the offline evaluation runs — the gate can be
SIGKILLed and the handler still resolves with a refusal.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Callable, Optional

from repro.core.policies import Policy
from repro.obs.metrics import get_metrics
from repro.serve.batcher import DEFAULT_MAX_BATCH, RequestBatcher
from repro.serve.gate import GateConfig
from repro.serve.service import DecisionService

__all__ = ["PolicyServer"]

#: How often the promote handler polls the gate subprocess, seconds.
GATE_POLL_SECONDS = 0.02


class PolicyServer:
    """Serve a :class:`DecisionService` over newline-delimited JSON/TCP.

    ``policy_factory`` (a ``spec str → Policy`` callable, e.g. the
    CLI's ``parse_policy``) enables the ``register`` op; without it,
    candidates must be registered on the service directly before
    :meth:`start`.  ``eval_every`` > 0 runs the auto-gate loop: every
    that many seconds, one registered candidate is gated and promoted
    if it passes — the closed harvest → evaluate → deploy loop with no
    operator in it.
    """

    def __init__(
        self,
        service: DecisionService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = DEFAULT_MAX_BATCH,
        policy_factory: Optional[Callable[[str], Policy]] = None,
        gate_config: GateConfig = GateConfig(),
        eval_every: float = 0.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = int(port)
        self.batcher = RequestBatcher(service, max_batch=max_batch)
        self.policy_factory = policy_factory
        self.gate_config = gate_config
        self.eval_every = float(eval_every)
        self._server: Optional[asyncio.base_events.Server] = None
        self._auto_gate: Optional[asyncio.Task] = None
        self._shutdown = asyncio.Event()
        self._gate_lock = asyncio.Lock()
        self._metrics = get_metrics()

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind, start the batcher (+ auto-gate), return ``(host, port)``."""
        await self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.eval_every > 0:
            self._auto_gate = asyncio.get_running_loop().create_task(
                self._auto_gate_loop()
            )
        return self.host, self.port

    async def wait_closed(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`stop`) lands."""
        await self._shutdown.wait()

    async def stop(self) -> None:
        """Stop accepting, drain the batcher, release the service."""
        self._shutdown.set()
        if self._auto_gate is not None:
            self._auto_gate.cancel()
            try:
                await self._auto_gate
            except asyncio.CancelledError:
                pass
            self._auto_gate = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.stop()
        self.service.close()

    # -- connection handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch(line)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if response.get("op") == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, line: bytes) -> dict:
        began = time.perf_counter()
        op = "invalid"
        try:
            request = json.loads(line)
            op = str(request.get("op", "invalid"))
            handler = getattr(self, f"_op_{op.replace('-', '_')}", None)
            if handler is None:
                raise ValueError(f"unknown op {op!r}")
            response = await handler(request)
            response.setdefault("ok", True)
            response.setdefault("op", op)
            return response
        except Exception as error:  # noqa: BLE001 - protocol boundary
            self.service.errors += 1
            return {"ok": False, "op": op, "error": str(error)}
        finally:
            self._metrics.histogram(
                "serve.request_seconds", op=op
            ).observe(time.perf_counter() - began)

    # -- ops ------------------------------------------------------------------

    async def _op_ping(self, request: dict) -> dict:
        return {"served": self.service.served}

    async def _op_act(self, request: dict) -> dict:
        n = int(request.get("n", 1))
        decisions = await self.batcher.ask(n)
        return {
            "decisions": decisions.to_dicts(),
            "policy_version": decisions.version,
            "policy_name": decisions.policy_name,
        }

    async def _op_stats(self, request: dict) -> dict:
        return {"stats": self.service.stats()}

    async def _op_register(self, request: dict) -> dict:
        if self.policy_factory is None:
            raise RuntimeError(
                "server has no policy factory; register candidates on "
                "the service before starting"
            )
        name = str(request["name"])
        version = self.service.register_candidate(
            name, self.policy_factory(str(request["policy"]))
        )
        return {"candidate": version.summary()}

    async def _op_shadow(self, request: dict) -> dict:
        report = self.service.start_shadow(str(request["name"]))
        return {"shadow": report.summary()}

    async def _op_shadow_stop(self, request: dict) -> dict:
        return {"shadow": self.service.stop_shadow(str(request["name"]))}

    async def _op_canary(self, request: dict) -> dict:
        installed = self.service.start_canary(
            str(request["name"]), float(request.get("fraction", 0.1))
        )
        return {"canary": installed.summary()}

    async def _op_canary_stop(self, request: dict) -> dict:
        return {"canary": self.service.stop_canary()}

    async def _op_promote(self, request: dict) -> dict:
        decision = await self.run_gate(str(request["name"]))
        return {"decision": decision.to_dict()}

    async def _op_swap(self, request: dict) -> dict:
        promoted = self.service.policies.promote(
            str(request["name"]), reason="forced"
        )
        return {"incumbent": promoted.summary()}

    async def _op_flush(self, request: dict) -> dict:
        return {"flush": self.service.flush()}

    async def _op_shutdown(self, request: dict) -> dict:
        self._shutdown.set()
        return {"served": self.service.served}

    # -- gating ---------------------------------------------------------------

    async def run_gate(self, name: str):
        """Gate ``name`` offline; hot-swap on a pass; serving never stops.

        Serialized by a lock (the service allows one gate at a time);
        the poll loop yields between checks, so act traffic on other
        connections proceeds while the subprocess evaluates.
        """
        async with self._gate_lock:
            self.service.start_gate(name, self.gate_config)
            while True:
                decision = self.service.poll_gate()
                if decision is not None:
                    return decision
                await asyncio.sleep(GATE_POLL_SECONDS)

    async def _auto_gate_loop(self) -> None:
        """Periodically gate one registered candidate (closed loop)."""
        while not self._shutdown.is_set():
            await asyncio.sleep(self.eval_every)
            candidates = sorted(self.service.policies.candidates())
            if not candidates:
                continue
            try:
                await self.run_gate(candidates[0])
            except Exception:  # noqa: BLE001 - the loop must survive
                self.service.errors += 1

    def __repr__(self) -> str:
        return (
            f"PolicyServer({self.host}:{self.port}, "
            f"service={self.service!r})"
        )
