"""The synchronous decision core of the online policy service.

:class:`DecisionService` is everything the server does *between*
sockets: it owns the scenario inputs, the audit stream, the hash
chain, the policy registry, and the shadow/canary state, and exposes
one hot method — :meth:`DecisionService.decide` — that turns "give me
``k`` decisions" into sampled ``⟨x, a, r, p⟩`` tuples at harvest-engine
speed.  Keeping it synchronous and transport-free is what makes the
whole loop testable: the asyncio batcher and TCP server
(:mod:`repro.serve.batcher`, :mod:`repro.serve.server`) are thin
layers over this object, and the chaos suite drives it directly.

Serving reuses the batch-harvest machinery wholesale: contexts come
from a scenario-built pool (:func:`repro.core.coordinator.build_inputs`)
cycled by ledger ordinal, randomness from a shard-aligned
:class:`~repro.audit.streams.StreamRNG` (stream key
``<scenario>/serve/decisions``), actions from the incumbent's
vectorized ``act_batch``, rewards from the scenario's reward law at
decision time, and every decision lands in a
:class:`~repro.audit.ledger.DecisionLedger` in O(1) per batch.  The
consequence — deliberate, and pinned by tests — is that a service log
is *indistinguishable* from a batch-harvested log: same record bytes,
same chain discipline, same ``Dataset.load_jsonl`` ingestion.

Swap atomicity: :meth:`decide` snapshots the incumbent
:class:`~repro.serve.registry.PolicyVersion` exactly once at entry, so
every decision in a slice is attributable to one version even if a
hot-swap lands mid-call; the registry swap itself is a single
attribute assignment (see ``docs/adr-0003-online-serving.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.audit.ledger import DecisionLedger, StreamingLedgerWriter
from repro.audit.streams import StreamKey, StreamRegistry, StreamRNG
from repro.core.columns import DecisionBatch
from repro.core.coordinator import HarvestJob, build_inputs
from repro.core.harvest import DEFAULT_BATCH_SIZE, _resolve_eligibility
from repro.core.policies import MixturePolicy, Policy
from repro.core.types import Interaction
from repro.obs.metrics import get_metrics
from repro.obs.monitors import get_monitors
from repro.serve.gate import GateConfig, GateDecision, GateRunner
from repro.serve.registry import PolicyRegistry, PolicyVersion

__all__ = ["DecisionService", "DecisionSlice", "ShadowReport"]


@dataclass(frozen=True)
class DecisionSlice:
    """The decisions answering one :meth:`DecisionService.decide` call.

    Arrays are aligned: position ``i`` is ledger ordinal
    ``ordinals[i]``, served from pool row ``rows[i]`` by policy
    version ``version`` (the incumbent snapshot the whole slice was
    sampled under — the attribution the chaos suite checks against the
    ledger).
    """

    ordinals: np.ndarray
    rows: np.ndarray
    actions: np.ndarray
    propensities: np.ndarray
    rewards: np.ndarray
    version: int
    policy_name: str

    @property
    def n(self) -> int:
        """Decisions in the slice."""
        return len(self.actions)

    def view(self, start: int, stop: int) -> "DecisionSlice":
        """A zero-copy sub-slice (the batcher's per-request carve)."""
        return DecisionSlice(
            ordinals=self.ordinals[start:stop],
            rows=self.rows[start:stop],
            actions=self.actions[start:stop],
            propensities=self.propensities[start:stop],
            rewards=self.rewards[start:stop],
            version=self.version,
            policy_name=self.policy_name,
        )

    def to_dicts(self) -> list[dict]:
        """JSON-able per-decision records (the wire response form)."""
        return [
            {
                "ordinal": int(self.ordinals[i]),
                "action": int(self.actions[i]),
                "propensity": float(self.propensities[i]),
                "reward": float(self.rewards[i]),
                "policy_version": self.version,
                "policy_name": self.policy_name,
            }
            for i in range(self.n)
        ]


class ShadowReport:
    """Streaming would-have-done stats for one shadowed candidate.

    Shadow mode never perturbs the serving stream: the candidate
    samples from its *own* derived stream
    (``<scenario>/serve/shadow-<name>``) at the same pool rows the
    incumbent served, and only aggregates survive — decisions served
    to clients and the persisted log stay 100% incumbent.
    """

    def __init__(self, name: str, version: int, stream: StreamRNG) -> None:
        self.name = name
        self.version = version
        self.stream = stream
        #: The service ordinal shadowing began at (re-derivation anchor).
        self.start_ordinal = 0
        self.n = 0
        self.agreements = 0
        self.propensity_sum = 0.0

    def observe(
        self, candidate_actions: np.ndarray, candidate_props: np.ndarray,
        served_actions: np.ndarray,
    ) -> None:
        """Fold one slice of paired (candidate, incumbent) decisions."""
        self.n += len(candidate_actions)
        self.agreements += int(
            np.count_nonzero(candidate_actions == served_actions)
        )
        self.propensity_sum += float(candidate_props.sum())

    def summary(self) -> dict:
        """JSON-able snapshot for stats responses and the manifest."""
        return {
            "name": self.name,
            "version": self.version,
            "start_ordinal": self.start_ordinal,
            "n": self.n,
            "agreement_rate": (
                self.agreements / self.n if self.n else None
            ),
            "mean_propensity": (
                self.propensity_sum / self.n if self.n else None
            ),
        }


class DecisionService:
    """Scenario-backed decision core: act, log, shadow, gate, swap.

    One instance serves one scenario from one master seed.  The
    context *pool* (``pool_rows`` scenario-built contexts) is cycled
    by ledger ordinal — decision ``t`` serves pool row ``t mod n`` —
    so the service runs indefinitely with bounded memory while every
    decision stays re-derivable from ``(master_seed, stream key,
    ordinal)``.  All mutating entry points run on one thread (the
    asyncio loop in production, the test body in tests); nothing here
    locks.
    """

    def __init__(
        self,
        scenario: str,
        policy: Policy,
        *,
        policy_name: str = "incumbent",
        pool_rows: int = DEFAULT_BATCH_SIZE,
        seed: int = 0,
        shard_size: int = DEFAULT_BATCH_SIZE,
        log_path: Optional[str] = None,
        config: Optional[dict] = None,
    ) -> None:
        self.scenario = scenario
        self.seed = int(seed)
        self.shard_size = int(shard_size)
        self.job = HarvestJob(
            scenario=scenario,
            rows=int(pool_rows),
            master_seed=self.seed,
            policy=policy,
            shard_size=self.shard_size,
            config=dict(config or {}),
        )
        self.streams = StreamRegistry(self.seed)
        self.inputs = build_inputs(self.job, self.streams)
        if self.inputs.n <= 0:
            raise ValueError(
                f"scenario {scenario!r} built an empty context pool"
            )
        self._eligible, self._per_row, self._n_actions = _resolve_eligibility(
            self.inputs.contexts, self.inputs.eligible,
            self.inputs.action_space,
        )
        key = StreamKey(scenario, "serve", "decisions")
        self.stream = StreamRNG(self.streams, key, shard_size=self.shard_size)
        self.ledger = DecisionLedger(
            key,
            shard_size=self.shard_size,
            master_fingerprint=self.streams.master_fingerprint,
        )
        self.policies = PolicyRegistry(policy, policy_name)
        self.served = 0
        self.errors = 0
        self.dropped = 0
        self._writer = (
            StreamingLedgerWriter(self.ledger, log_path) if log_path else None
        )
        #: ``to_dict`` records decided but not yet flushed to the log.
        self._pending: list[dict] = []
        self._shadows: dict[str, ShadowReport] = {}
        self._canary: Optional[dict] = None
        self._gate: Optional[GateRunner] = None
        #: Completed gate decisions, oldest first (manifest material).
        self.gate_decisions: list[GateDecision] = []
        self._metrics = get_metrics()
        self._latency = self._metrics.histogram(
            "serve.decide_seconds", scenario=scenario
        )

    # -- the hot path ---------------------------------------------------------

    def _pool_slice(self, start_row: int, stop_row: int) -> tuple:
        """Pool contexts for consecutive pool rows (wrap handled)."""
        contexts = self.inputs.contexts
        if stop_row <= len(contexts):
            return contexts[start_row:stop_row]
        return tuple(
            contexts[row % len(contexts)]
            for row in range(start_row, stop_row)
        )

    def _eligible_for(self, rows: np.ndarray):
        """Eligibility spec for explicit pool ``rows``."""
        if not self._per_row:
            return self._eligible
        return [self._eligible[int(row)] for row in rows]

    def _sample(
        self, policy: Policy, stream: StreamRNG, start: int, stop: int,
        rows: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample ``[start, stop)`` of ``stream`` with ``policy``.

        Splits at shard boundaries exactly like the harvest engine
        (:func:`repro.core.harvest.batch_segments` semantics), so the
        served stream is bit-identical for any request batching.
        """
        n = stop - start
        actions = np.empty(n, dtype=np.int64)
        props = np.empty(n, dtype=np.float64)
        pool = self.inputs.n
        for seg_start, seg_stop, generator in stream.segments(start, stop):
            lo, hi = seg_start - start, seg_stop - start
            start_row = seg_start % pool
            batch = DecisionBatch(
                self._pool_slice(start_row, start_row + (hi - lo)),
                self._eligible_for(rows[lo:hi])
                if self._per_row
                else self._eligible,
                n_actions=self._n_actions,
            )
            sampled, sampled_props = policy.act_batch(batch, None, generator)
            actions[lo:hi] = sampled
            props[lo:hi] = sampled_props
        return actions, props

    def decide(self, k: int) -> DecisionSlice:
        """Serve the next ``k`` decisions under the current incumbent.

        The slice occupies ledger ordinals ``[served, served + k)``.
        The incumbent is snapshotted once at entry — the atomicity
        point a concurrent hot-swap pivots around.  Per-batch cost is
        the harvest engine's: one vectorized ``act_batch`` per stream
        segment, one vectorized reward lookup, O(1) ledger
        bookkeeping.
        """
        if k <= 0:
            raise ValueError(f"decide needs a positive count, got {k}")
        began = time.perf_counter()
        incumbent = self.policies.incumbent  # the atomic snapshot
        start, stop = self.served, self.served + k
        ordinals = np.arange(start, stop, dtype=np.int64)
        rows = ordinals % self.inputs.n
        actions, props = self._sample(
            incumbent.policy, self.stream, start, stop, rows
        )
        rewards = np.asarray(
            self.inputs.reward_fn(rows, actions), dtype=np.float64
        )
        contexts = self._pool_slice(start % self.inputs.n,
                                    start % self.inputs.n + k)
        self.ledger.extend_batch(contexts, actions, props)
        self.served = stop
        for shadow in self._shadows.values():
            cand_actions, cand_props = self._sample(
                self.policies.candidate(shadow.name).policy,
                shadow.stream, start, stop, rows,
            )
            shadow.observe(cand_actions, cand_props, actions)
        slice_ = DecisionSlice(
            ordinals=ordinals,
            rows=rows,
            actions=actions,
            propensities=props,
            rewards=rewards,
            version=incumbent.version,
            policy_name=incumbent.name,
        )
        if self._writer is not None:
            self._buffer_records(slice_, contexts)
        elapsed = time.perf_counter() - began
        self._latency.observe(elapsed)
        monitors = get_monitors()
        if monitors.enabled:
            monitors.observe_propensities(props)
            monitors.observe_serve(
                served=k, errors=0, dropped=0,
                latency_sum=elapsed, latency_max=elapsed,
            )
        return slice_

    def _buffer_records(self, slice_: DecisionSlice, contexts) -> None:
        """Queue ``to_dict`` records for the next :meth:`flush`."""
        append = self._pending.append
        for i in range(slice_.n):
            append(
                Interaction(
                    context=contexts[i],
                    action=int(slice_.actions[i]),
                    reward=float(slice_.rewards[i]),
                    propensity=float(slice_.propensities[i]),
                    timestamp=float(slice_.ordinals[i]),
                ).to_dict()
            )

    # -- persistence ----------------------------------------------------------

    @property
    def log_path(self) -> Optional[str]:
        """Where flushed decisions land (``None`` when not logging)."""
        return self._writer.path if self._writer is not None else None

    def flush(self) -> dict:
        """Seal and append every pending decision to the log.

        Returns ``{"written", "total", "head"}``.  After a flush the
        on-disk file is a verifiable chain prefix:
        ``verify_jsonl(path, expected_head=ledger.head)`` passes and
        ``Dataset.load_jsonl(path, verify_ledger="require")``
        round-trips the bytes.
        """
        if self._writer is None:
            raise RuntimeError("service has no log_path; nothing to flush")
        pending, self._pending = self._pending, []
        self._writer.flush(pending)
        return {
            "written": len(pending),
            "total": self._writer.written,
            "head": self.ledger.head,
        }

    def close(self) -> None:
        """Release the log handle and any in-flight gate process."""
        if self._gate is not None:
            self._gate.terminate()
            self._gate = None
        if self._writer is not None:
            self._writer.close()

    # -- candidate lifecycle --------------------------------------------------

    def register_candidate(self, name: str, policy: Policy) -> PolicyVersion:
        """Register a candidate (serves nothing until promoted)."""
        return self.policies.register(name, policy)

    def start_shadow(self, name: str) -> ShadowReport:
        """Shadow candidate ``name`` on every subsequent decision.

        The candidate draws from its own derived stream at the same
        pool rows, so shadowing is invisible to clients, to the
        incumbent's RNG stream, and to the persisted log.
        """
        version = self.policies.candidate(name)
        if name in self._shadows:
            raise ValueError(f"candidate {name!r} is already shadowed")
        # Anchored at ordinal 0 but consumed from the current ordinal
        # forward: re-deriving the shadow draws needs (master seed,
        # stream key, start ordinal), so the start lands in the report.
        stream = StreamRNG(
            self.streams,
            StreamKey(self.scenario, "serve", f"shadow-{name}"),
            shard_size=self.shard_size,
        )
        report = ShadowReport(name, version.version, stream)
        report.start_ordinal = self.served
        self._shadows[name] = report
        return report

    def stop_shadow(self, name: str) -> dict:
        """Stop shadowing ``name``; returns the final summary."""
        report = self._shadows.pop(name, None)
        if report is None:
            raise KeyError(f"candidate {name!r} is not shadowed")
        return report.summary()

    def shadow_summaries(self) -> list[dict]:
        """Current shadow snapshots (stats responses, manifest)."""
        return [report.summary() for report in self._shadows.values()]

    def start_canary(self, name: str, fraction: float) -> PolicyVersion:
        """Serve a propensity-tracked mixture slice for ``name``.

        Installs ``MixturePolicy([incumbent, candidate], [1-f, f])`` as
        the incumbent: each request routes to the candidate with
        probability ``fraction``, and — because the mixture's declared
        propensity is the true marginal — the resulting log slice is
        *correctly weighted* for every off-policy estimator.  That is
        the paper's §5 point: a canary is just more exploration data.
        """
        if self._canary is not None:
            raise RuntimeError(
                f"canary {self._canary['name']!r} is already running"
            )
        if not 0.0 < fraction < 1.0:
            raise ValueError(
                f"canary fraction must be in (0, 1), got {fraction}"
            )
        base = self.policies.incumbent
        candidate = self.policies.candidate(name)
        mixture = MixturePolicy(
            [base.policy, candidate.policy],
            [1.0 - fraction, fraction],
            name=f"canary-{name}",
        )
        installed = self.policies.install(
            f"canary-{name}", mixture, reason="canary"
        )
        self._canary = {
            "name": name,
            "fraction": float(fraction),
            "base": base,
            "version": installed.version,
            "start_ordinal": self.served,
        }
        return installed

    def stop_canary(self) -> dict:
        """End the canary; reinstate the pre-canary incumbent."""
        if self._canary is None:
            raise RuntimeError("no canary is running")
        canary, self._canary = self._canary, None
        base = canary["base"]
        self.policies.install(base.name, base.policy, reason="canary-stop")
        return {
            "name": canary["name"],
            "fraction": canary["fraction"],
            "version": canary["version"],
            "ordinals": [canary["start_ordinal"], self.served],
        }

    # -- the OPE gate ---------------------------------------------------------

    def start_gate(
        self, name: str, config: GateConfig = GateConfig()
    ) -> GateRunner:
        """Flush the log and launch the offline gate for ``name``.

        The evaluation runs in a subprocess (see
        :class:`repro.serve.gate.GateRunner`); serving continues at
        full speed while it reads the flushed log.  Poll with
        :meth:`poll_gate`.
        """
        if self._gate is not None:
            raise RuntimeError(
                f"gate for {self._gate.candidate_name!r} is already running"
            )
        if self._writer is None:
            raise RuntimeError("the OPE gate needs a log_path to evaluate")
        candidate = self.policies.candidate(name)
        self.flush()
        self._gate = GateRunner(
            self._writer.path,
            name,
            candidate.policy,
            self.policies.incumbent.policy,
            config,
        )
        return self._gate

    @property
    def gate(self) -> Optional[GateRunner]:
        """The in-flight gate evaluation, if any."""
        return self._gate

    def poll_gate(self) -> Optional[GateDecision]:
        """Check the gate; on a passing verdict, promote atomically.

        Returns ``None`` while the evaluation is still running.  A
        decision — pass, fail, or subprocess death — clears the gate
        and is appended to :attr:`gate_decisions`; on ``promote`` the
        candidate hot-swaps in (shadow state for it is dropped — it is
        the incumbent now).
        """
        if self._gate is None:
            return None
        decision = self._gate.poll()
        if decision is None:
            return None
        self._gate = None
        self.gate_decisions.append(decision)
        if decision.promote:
            name = decision.candidate
            if name in self._shadows:
                del self._shadows[name]
            self.policies.promote(name, reason="gate")
        return decision

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        """JSON-able service state (the server's ``stats`` op)."""
        incumbent = self.policies.incumbent
        return {
            "scenario": self.scenario,
            "served": self.served,
            "errors": self.errors,
            "dropped": self.dropped,
            "pool_rows": self.inputs.n,
            "incumbent": incumbent.summary(),
            "candidates": sorted(self.policies.candidates()),
            "shadows": self.shadow_summaries(),
            "canary": (
                {
                    "name": self._canary["name"],
                    "fraction": self._canary["fraction"],
                }
                if self._canary is not None
                else None
            ),
            "gate": (
                {
                    "candidate": self._gate.candidate_name,
                    "pid": self._gate.pid,
                }
                if self._gate is not None
                else None
            ),
            "gates_decided": [d.to_dict() for d in self.gate_decisions],
            "ledger": {"n": len(self.ledger), "head": self.ledger.head},
            "history": list(self.policies.history),
        }

    def manifest_serving_section(self) -> dict:
        """The manifest's ``serving`` section for this service."""
        return {
            "scenario": self.scenario,
            "served": self.served,
            "pool_rows": self.inputs.n,
            "shard_size": self.shard_size,
            "log_path": self.log_path,
            "incumbent": self.policies.incumbent.summary(),
            "history": list(self.policies.history),
            "shadows": self.shadow_summaries(),
            "gates": [d.to_dict() for d in self.gate_decisions],
        }

    def __repr__(self) -> str:
        return (
            f"DecisionService(scenario={self.scenario!r}, "
            f"served={self.served}, "
            f"incumbent=v{self.policies.incumbent.version})"
        )
