"""Versioned policy registry for the online decision service.

The registry is the single source of truth for *which policy answers
requests right now*.  Every policy that ever serves (or shadows) gets a
monotonically increasing **version number**, so each logged decision
can record exactly which policy produced it — the property the
swap-under-load chaos suite pins: a response's propensity must match
the policy version its ledger entry was sealed under.

Lifecycle: the constructor installs version 1 as the **incumbent**;
:meth:`register` adds named **candidates** (served nowhere until
promoted); :meth:`promote` atomically makes a candidate the incumbent
(a single attribute assignment — no lock, no window where requests see
a half-installed policy); :meth:`install` supports the canary case
where a synthetic mixture policy serves temporarily without going
through candidate registration.  Promotions are recorded in
:attr:`history` for the manifest's ``serving`` section.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.core.policies import Policy

__all__ = ["PolicyVersion", "PolicyRegistry"]

#: Candidate names become stream-key segments (``serve/shadow-<name>``)
#: and manifest keys, so they share the key grammar of
#: :class:`repro.audit.streams.StreamKey`.
_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")


@dataclass(frozen=True)
class PolicyVersion:
    """One immutable (version, name, policy) record.

    ``version`` is unique within a registry and never reused — even a
    re-promotion of an old candidate mints a fresh version, so a
    version number in a decision log pins one specific installation.
    """

    version: int
    name: str
    policy: Policy

    def summary(self) -> dict:
        """JSON-able identity (no policy object) for logs/manifests."""
        return {"version": self.version, "name": self.name}


class PolicyRegistry:
    """Tracks the incumbent, the candidates, and every promotion.

    All mutation happens in plain Python attribute assignments on the
    caller's thread (the service runs single-threaded on the asyncio
    loop), so a reader either sees the old incumbent or the new one —
    never a mixture.  That single-assignment swap is the entire
    hot-swap mechanism; see ``docs/adr-0003-online-serving.md``.
    """

    def __init__(self, policy: Policy, name: str = "incumbent") -> None:
        self._check_name(name)
        self._next_version = 1
        self._incumbent = self._mint(name, policy)
        self._candidates: dict[str, PolicyVersion] = {}
        #: Promotion/installation events, oldest first; each entry is a
        #: JSON-able dict (``version``, ``name``, ``reason``).
        self.history: list[dict] = [
            {**self._incumbent.summary(), "reason": "boot"}
        ]

    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"policy name {name!r} must match {_NAME_RE.pattern} "
                "(it becomes a stream-key segment)"
            )

    def _mint(self, name: str, policy: Policy) -> PolicyVersion:
        version = PolicyVersion(self._next_version, name, policy)
        self._next_version += 1
        return version

    @property
    def incumbent(self) -> PolicyVersion:
        """The policy version currently answering requests."""
        return self._incumbent

    def register(self, name: str, policy: Policy) -> PolicyVersion:
        """Add (or replace) a named candidate; serves nothing yet."""
        self._check_name(name)
        if name == self._incumbent.name:
            raise ValueError(
                f"candidate name {name!r} collides with the incumbent"
            )
        version = self._mint(name, policy)
        self._candidates[name] = version
        return version

    def unregister(self, name: str) -> None:
        """Drop a candidate (no-op if unknown)."""
        self._candidates.pop(name, None)

    def candidate(self, name: str) -> PolicyVersion:
        """Look up a registered candidate by name."""
        try:
            return self._candidates[name]
        except KeyError:
            raise KeyError(
                f"no candidate {name!r} (registered: "
                f"{sorted(self._candidates)})"
            ) from None

    def candidates(self) -> dict[str, PolicyVersion]:
        """Snapshot of the registered candidates by name."""
        return dict(self._candidates)

    def promote(self, name: str, reason: str = "gate") -> PolicyVersion:
        """Atomically make candidate ``name`` the incumbent.

        The candidate is re-minted under a fresh version (promotion is
        an installation event, not a rename) and removed from the
        candidate set.  The swap itself is one attribute assignment.
        """
        candidate = self.candidate(name)
        promoted = self._mint(candidate.name, candidate.policy)
        self._incumbent = promoted  # the atomic hot-swap
        del self._candidates[name]
        self.history.append({**promoted.summary(), "reason": reason})
        return promoted

    def install(
        self, name: str, policy: Policy, reason: str = "install"
    ) -> PolicyVersion:
        """Install ``policy`` as the incumbent directly (canary path).

        Used for synthetic serving policies that never sat in the
        candidate set — e.g. the canary's propensity-tracked mixture.
        """
        self._check_name(name)
        installed = self._mint(name, policy)
        self._incumbent = installed  # the atomic hot-swap
        self.history.append({**installed.summary(), "reason": reason})
        return installed

    def __repr__(self) -> str:
        return (
            f"PolicyRegistry(incumbent=v{self._incumbent.version}:"
            f"{self._incumbent.name}, candidates={sorted(self._candidates)})"
        )
