"""Metric recorders used by the simulated systems.

Rewards in the paper are system metrics: request latency (load
balancing), hit rate (caching), downtime (machine health).  These
helpers collect them during simulation runs with enough fidelity to
report the quantities the paper's tables use — means, percentiles
(e.g. p99 latency), and rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


class Counter:
    """A monotonically increasing named counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def increment(self, by: int = 1) -> None:
        """Add ``by`` (must be non-negative) to the counter."""
        if by < 0:
            raise ValueError("counters only increase")
        self._value += by

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class PercentileTracker:
    """Collects scalar observations and reports summary statistics.

    Stores raw observations (simulations here are small enough that an
    exact tracker beats a sketch in both simplicity and accuracy).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return len(self._values)

    @property
    def values(self) -> list[float]:
        """A copy of the raw observations."""
        return list(self._values)

    def mean(self) -> float:
        """Arithmetic mean; 0.0 when empty."""
        if not self._values:
            return 0.0
        return float(np.mean(self._values))

    def std(self) -> float:
        """Population standard deviation; 0.0 when empty."""
        if not self._values:
            return 0.0
        return float(np.std(self._values))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100); 0.0 when empty."""
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._values:
            return 0.0
        return float(np.percentile(self._values, q))

    def p99(self) -> float:
        """99th percentile — the paper's load-balancing reward metric."""
        return self.percentile(99.0)

    def summary(self) -> dict[str, float]:
        """Mean/std/p50/p95/p99/count in one dict (for reports)."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "std": self.std(),
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.p99(),
        }


@dataclass
class TimeSeries:
    """A named sequence of ``(time, value)`` samples."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        """Append one sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError("time series samples must be in time order")
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, time: float) -> Optional[float]:
        """Most recent sample at or before ``time`` (step interpolation)."""
        if not self.times or time < self.times[0]:
            return None
        index = int(np.searchsorted(self.times, time, side="right")) - 1
        return self.values[index]

    def time_average(self) -> float:
        """Time-weighted average of the step function; 0.0 if <2 samples."""
        if len(self.times) < 2:
            return self.values[0] if self.values else 0.0
        times = np.asarray(self.times)
        values = np.asarray(self.values)
        widths = np.diff(times)
        return float(np.sum(values[:-1] * widths) / np.sum(widths))


class WindowedRate:
    """Event rate over a sliding window of virtual time (e.g. hit rate)."""

    def __init__(self, name: str, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.name = name
        self.window = window
        self._events: list[tuple[float, float]] = []

    def record(self, time: float, value: float = 1.0) -> None:
        """Record an event of the given weight at virtual ``time``."""
        self._events.append((time, value))

    def rate(self, now: float) -> float:
        """Sum of event weights in ``[now - window, now]`` per unit time."""
        lo = now - self.window
        total = sum(v for t, v in self._events if lo <= t <= now)
        return total / self.window


class MetricRegistry:
    """A namespace of metric objects, one per simulated component."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._trackers: dict[str, PercentileTracker] = {}
        self._series: dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter with this name."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def tracker(self, name: str) -> PercentileTracker:
        """Get or create the percentile tracker with this name."""
        if name not in self._trackers:
            self._trackers[name] = PercentileTracker(name)
        return self._trackers[name]

    def series(self, name: str) -> TimeSeries:
        """Get or create the time series with this name."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def snapshot(self) -> dict[str, float]:
        """Flatten all metrics into a ``name -> value`` dict."""
        out: dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = float(counter.value)
        for name, tracker in self._trackers.items():
            for stat, value in tracker.summary().items():
                out[f"{name}.{stat}"] = value
        return out
