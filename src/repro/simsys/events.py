"""Event queue and simulation loop.

The simulators in :mod:`repro.loadbalance` and :mod:`repro.cache` are
built on a classic discrete-event core: a priority queue of timestamped
events, a virtual clock that jumps from event to event, and handler
callbacks.  Virtual time means a multi-hour "deployment" of a load
balancing policy finishes in milliseconds of wall-clock time, which is
what makes the paper's online-vs-offline comparisons cheap to rerun.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A timestamped event.

    Events compare by ``(time, seq)``; ``seq`` is a monotonically
    increasing tie-breaker so simultaneous events fire in insertion
    order and comparison never falls through to the (uncomparable)
    payload.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A min-heap of :class:`Event` objects keyed by fire time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, action: Callable[[], None], name: str = "") -> Event:
        """Schedule ``action`` to run at virtual ``time`` and return the event."""
        event = Event(time=time, seq=next(self._counter), action=action, name=name)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the fire time of the earliest pending event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None


class Simulator:
    """Discrete-event simulation loop with a virtual clock.

    Usage::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second in"))
        sim.run(until=10.0)

    Handlers may schedule further events; the loop runs until the queue
    drains, a time horizon is reached, or an event budget is exhausted.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._queue = EventQueue()
        self._now = start_time
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def schedule(
        self, delay: float, action: Callable[[], None], name: str = ""
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: delay={delay}")
        return self._queue.push(self._now + delay, action, name)

    def schedule_at(
        self, time: float, action: Callable[[], None], name: str = ""
    ) -> Event:
        """Schedule ``action`` to run at absolute virtual ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: time={time} < now={self._now}")
        return self._queue.push(time, action, name)

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Run the loop; return the number of events processed this call.

        ``until`` is an inclusive virtual-time horizon; ``max_events``
        caps how many events this call may execute.
        """
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                break
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            event = self._queue.pop()
            assert event is not None
            self._now = event.time
            event.action()
            processed += 1
            self._events_processed += 1
        return processed

    def step(self) -> bool:
        """Execute exactly one event; return False if the queue was empty."""
        return self.run(max_events=1) == 1
