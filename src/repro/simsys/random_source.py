"""Named, seeded randomness streams.

The whole point of the paper is that randomness is a *resource*: every
randomized decision a system makes is a datapoint for off-policy
evaluation.  For reproducible experiments we therefore need each
consumer of randomness (workload arrivals, policy decisions, fault
injection, ...) to draw from its *own* deterministic stream, so that
e.g. changing the logging policy does not perturb the workload.

:class:`RandomSource` derives independent child generators from a root
seed using stable string names.
"""

from __future__ import annotations

import zlib
from typing import Iterator, Optional, Sequence, TypeVar

import numpy as np

from repro.audit.streams import derive_child_seed

T = TypeVar("T")

#: Child-seed derivation schemes: ``"hkdf"`` (HKDF-SHA256, collision
#: resistant — the default) and ``"legacy"`` (the pre-audit CRC32 mix,
#: kept only to regenerate logs harvested before the migration; see
#: ``docs/adr-0001-rng-streams.md``).
DERIVATIONS = ("hkdf", "legacy")


class RandomSource:
    """A tree of named, independently seeded NumPy generators."""

    def __init__(
        self, seed: int = 0, _name: str = "root", derivation: str = "hkdf"
    ) -> None:
        if derivation not in DERIVATIONS:
            raise ValueError(
                f"unknown derivation {derivation!r}; expected one of {DERIVATIONS}"
            )
        self._seed = int(seed)
        self._name = _name
        self._derivation = derivation
        self._rng = np.random.default_rng(self._seed)

    @property
    def seed(self) -> int:
        """Root seed of this source."""
        return self._seed

    @property
    def name(self) -> str:
        """Dotted path of this source within the seed tree."""
        return self._name

    @property
    def generator(self) -> np.random.Generator:
        """The underlying NumPy generator."""
        return self._rng

    @property
    def derivation(self) -> str:
        """Child-seed derivation scheme (``"hkdf"`` or ``"legacy"``)."""
        return self._derivation

    def child(self, name: str) -> "RandomSource":
        """Derive an independent, deterministic child stream.

        The same name always yields the same stream.  Under the default
        ``"hkdf"`` derivation the child seed is HKDF-SHA256 of the
        parent seed keyed by the (length-prefixed) child name, so
        distinct names — sibling or nested — never collide.  The
        ``"legacy"`` derivation reproduces the pre-audit CRC32 mix,
        whose collisions (e.g. CRC32("plumless") == CRC32("buckeroo"))
        could silently alias sibling streams; use it only to regenerate
        logs harvested before the migration.
        """
        if self._derivation == "legacy":
            mixed = (
                self._seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))
            ) % (2**63)
        else:
            mixed = derive_child_seed(self._seed, name)
        return RandomSource(
            mixed, _name=f"{self._name}.{name}", derivation=self._derivation
        )

    # -- convenience draws -------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform float in ``[low, high)``."""
        return float(self._rng.uniform(low, high))

    def exponential(self, mean: float) -> float:
        """One exponential draw with the given mean (inter-arrival times)."""
        return float(self._rng.exponential(mean))

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        """One Gaussian draw."""
        return float(self._rng.normal(loc, scale))

    def randint(self, low: int, high: int) -> int:
        """One integer in ``[low, high)``."""
        return int(self._rng.integers(low, high))

    def choice(self, items: Sequence[T], p: Optional[Sequence[float]] = None) -> T:
        """Choose one item, optionally with probabilities ``p``."""
        index = int(self._rng.choice(len(items), p=p))
        return items[index]

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct items uniformly without replacement."""
        if k > len(items):
            raise ValueError(f"cannot sample {k} from {len(items)} items")
        indices = self._rng.choice(len(items), size=k, replace=False)
        return [items[int(i)] for i in indices]

    def shuffle(self, items: Sequence[T]) -> list[T]:
        """Return a shuffled copy of ``items``."""
        out = list(items)
        self._rng.shuffle(out)  # type: ignore[arg-type]
        return out

    def bernoulli(self, p: float) -> bool:
        """One coin flip with success probability ``p``."""
        return bool(self._rng.random() < p)

    def zipf_index(self, n: int, alpha: float) -> int:
        """Draw an index in ``[0, n)`` with Zipf(alpha) popularity."""
        if n <= 0:
            raise ValueError("n must be positive")
        weights = 1.0 / np.power(np.arange(1, n + 1), alpha)
        weights /= weights.sum()
        return int(self._rng.choice(n, p=weights))

    def poisson_process(self, rate: float, horizon: float) -> Iterator[float]:
        """Yield arrival times of a Poisson process on ``[0, horizon)``."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        t = 0.0
        while True:
            t += self.exponential(1.0 / rate)
            if t >= horizon:
                return
            yield t
