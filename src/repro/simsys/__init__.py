"""Discrete-event simulation kernel.

This package is the substrate on which the load-balancing (Nginx-like)
and caching (Redis-like) prototypes are built.  It provides:

- :class:`~repro.simsys.events.EventQueue` and
  :class:`~repro.simsys.events.Simulator`: a priority-queue driven
  event loop with a virtual clock.
- :class:`~repro.simsys.random_source.RandomSource`: named, seeded RNG
  streams so that every source of randomness in an experiment is
  independently reproducible.
- :mod:`~repro.simsys.metrics`: counters, time series and streaming
  percentile trackers used to compute rewards (e.g. request latency
  percentiles).
"""

from repro.simsys.events import Event, EventQueue, Simulator
from repro.simsys.metrics import (
    Counter,
    MetricRegistry,
    PercentileTracker,
    TimeSeries,
    WindowedRate,
)
from repro.simsys.random_source import RandomSource

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Counter",
    "MetricRegistry",
    "PercentileTracker",
    "TimeSeries",
    "WindowedRate",
    "RandomSource",
]
