"""Audit-grade RNG streams: HKDF-SHA256 derivation from one master seed.

The old scheme (``RandomSource.child``) mixed the parent seed with a
CRC32 of the child name — fast, but CRC32 is a 32-bit linear code with
*findable* collisions (``crc32(b"plumless") == crc32(b"buckeroo")``),
so two differently-named streams could silently share a seed and the
"independent draws" assumption behind every propensity would be wrong
with no way to notice.  This module replaces it with the scheme from
Adventorator's ADR-0008:

- one **master seed** per run (any int; 128 bits of key material);
- per-stream seeds derived with **HKDF-SHA256** (RFC 5869) over a
  length-prefixed info string ``(protocol, scenario, component,
  stream) + ordinal`` — collision resistance inherited from SHA-256,
  and unambiguous: no concatenation of segment names can alias
  another (``("a.b",)`` ≠ ``("a", "b")``);
- the **ordinal** ties a derivation to a position in the decision
  ledger: rows ``[k·S, (k+1)·S)`` of a harvest draw from the
  generator derived at ordinal ``k·S`` (*S* = shard size), so any
  shard regenerates bit-identically in isolation from
  ``(master seed, stream key, start ordinal)`` — fork equivalence,
  with no coordinated RNG state between distributed harvesters.

:class:`StreamRegistry` is the façade: it owns the master seed, hands
out derived generators, and records every derivation so a run manifest
can prove provenance end to end.  :class:`StreamRNG` adapts a stream
to the batch harvest engine (:func:`repro.core.harvest.harvest_columns`),
splitting batches at shard boundaries so the harvested log is
bit-identical for any batch size *and* re-derivable per shard.
"""

from __future__ import annotations

import hashlib
import hmac
import re
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "PROTOCOL",
    "ShardedNormal",
    "StreamKey",
    "StreamRegistry",
    "StreamRNG",
    "derive_generator",
    "derive_key_bytes",
    "derive_seed",
    "encode_segments",
    "hkdf_sha256",
    "master_key_bytes",
]

#: Protocol tag folded into every derivation (bump on scheme changes).
PROTOCOL = "REPRO1"

#: Default rows per derivation shard in :class:`StreamRNG`.
DEFAULT_SHARD_SIZE = 8192

#: Domain-separation salt for stream derivations.
_STREAM_SALT = b"repro.audit.streams"

_HASH_LEN = hashlib.sha256().digest_size

#: Legal characters for a stream-key segment — keeps the canonical
#: ``scenario/component/stream#ordinal`` form parseable and the ledger
#: message format (``|``-joined) unambiguous.
_SEGMENT_RE = re.compile(r"^[A-Za-z0-9._-]+$")


def hkdf_sha256(
    key_material: bytes,
    info: bytes,
    salt: bytes = b"",
    length: int = 32,
) -> bytes:
    """RFC 5869 HKDF-SHA256 (extract-then-expand), stdlib only.

    ``key_material`` is the input keying material (here: the master
    seed), ``info`` the context string that separates streams, and
    ``salt`` an optional domain separator.  Returns ``length`` bytes of
    output keying material.
    """
    if not 0 < length <= 255 * _HASH_LEN:
        raise ValueError(f"length must be in [1, {255 * _HASH_LEN}], got {length}")
    pseudo_random_key = hmac.new(
        salt or b"\x00" * _HASH_LEN, key_material, hashlib.sha256
    ).digest()
    output = b""
    block = b""
    counter = 1
    while len(output) < length:
        block = hmac.new(
            pseudo_random_key, block + info + bytes([counter]), hashlib.sha256
        ).digest()
        output += block
        counter += 1
    return output[:length]


def encode_segments(segments: Iterable[str]) -> bytes:
    """Length-prefixed UTF-8 encoding of name segments.

    The prefix makes concatenation injective: ``("a.b",)`` and
    ``("a", "b")`` encode to different byte strings, so no pair of
    distinct key paths can alias the same derivation info.
    """
    out = bytearray()
    for segment in segments:
        raw = str(segment).encode("utf-8")
        out += len(raw).to_bytes(4, "big")
        out += raw
    return bytes(out)


def master_key_bytes(master_seed: int) -> bytes:
    """The 128-bit key material a master seed contributes to HKDF."""
    return (int(master_seed) % (1 << 128)).to_bytes(16, "big")


@dataclass(frozen=True)
class StreamKey:
    """Identity of one randomness stream: who draws, and where.

    ``scenario`` names the workload (``machinehealth`` …),
    ``component`` the subsystem (``harvest``, ``workload``, ``chaos``),
    ``stream`` the purpose (``decisions``, ``latency-noise``), and
    ``ordinal`` the position in the decision ledger the derivation is
    anchored at (0 for whole-stream derivations; a shard's start row
    for sharded harvests).
    """

    scenario: str
    component: str
    stream: str
    ordinal: int = 0

    def __post_init__(self) -> None:
        for label, segment in (
            ("scenario", self.scenario),
            ("component", self.component),
            ("stream", self.stream),
        ):
            if not _SEGMENT_RE.match(segment):
                raise ValueError(
                    f"stream-key {label} {segment!r} must match "
                    f"{_SEGMENT_RE.pattern}"
                )
        if self.ordinal < 0:
            raise ValueError(f"ordinal must be non-negative, got {self.ordinal}")

    @property
    def segments(self) -> Tuple[str, str, str]:
        """The three name segments, without the ordinal."""
        return (self.scenario, self.component, self.stream)

    def info(self) -> bytes:
        """The HKDF info string: length-prefixed segments + ordinal."""
        return encode_segments((PROTOCOL,) + self.segments) + int(
            self.ordinal
        ).to_bytes(8, "big")

    def canonical(self) -> str:
        """``scenario/component/stream#ordinal`` — the ledgered form."""
        return f"{self.scenario}/{self.component}/{self.stream}#{self.ordinal}"

    @property
    def name(self) -> str:
        """``scenario/component/stream`` — the stream identity, no ordinal."""
        return f"{self.scenario}/{self.component}/{self.stream}"

    @classmethod
    def parse(cls, text: str) -> "StreamKey":
        """Inverse of :meth:`canonical` (ordinal defaults to 0)."""
        body, _, ordinal = text.partition("#")
        parts = body.split("/")
        if len(parts) != 3:
            raise ValueError(
                f"stream key {text!r} is not scenario/component/stream[#ordinal]"
            )
        return cls(parts[0], parts[1], parts[2], int(ordinal) if ordinal else 0)

    def with_ordinal(self, ordinal: int) -> "StreamKey":
        """The same stream anchored at a different ledger ordinal."""
        return replace(self, ordinal=int(ordinal))


def derive_key_bytes(
    master_seed: int, key: StreamKey, length: int = 32
) -> bytes:
    """``length`` bytes of keying material for one stream derivation."""
    return hkdf_sha256(
        master_key_bytes(master_seed),
        info=key.info(),
        salt=_STREAM_SALT,
        length=length,
    )


def derive_seed(master_seed: int, key: StreamKey) -> int:
    """The 256-bit integer seed of one stream derivation."""
    return int.from_bytes(derive_key_bytes(master_seed, key), "big")


def derive_generator(master_seed: int, key: StreamKey) -> np.random.Generator:
    """A fresh, independent generator for ``key`` under ``master_seed``."""
    return np.random.default_rng(
        np.random.SeedSequence(derive_seed(master_seed, key))
    )


def derive_child_seed(parent_seed: int, name: str) -> int:
    """63-bit child seed for :meth:`repro.simsys.random_source.RandomSource.child`.

    HKDF over the parent seed with the (length-prefixed) child name as
    info — the drop-in replacement for the CRC32 mix, collision-
    resistant across sibling and nested names.  63 bits keeps the
    legacy integer-seed API intact.  The parent seed is reduced to 128
    bits exactly like :func:`master_key_bytes` (two's-complement
    compatible, so negative seeds keep their original encoding), which
    accepts arbitrarily large ints just as the legacy CRC32 mix did.
    """
    material = hkdf_sha256(
        master_key_bytes(parent_seed),
        info=encode_segments((PROTOCOL, "random-source", name)),
        salt=b"repro.simsys.random_source",
        length=8,
    )
    return int.from_bytes(material, "big") % (1 << 63)


def _fingerprint(data: bytes) -> str:
    """Short (64-bit hex) identification digest for manifests."""
    return hashlib.sha256(data).hexdigest()[:16]


class StreamRegistry:
    """One master seed, every derived stream, and the derivation log.

    The registry is the provenance authority of a run: everything
    random derives from its master seed through :meth:`generator` /
    :meth:`derive`, and every derivation is recorded (stream key,
    derived-seed fingerprint) so the run manifest can list exactly
    which streams were consumed.  The master seed itself never appears
    in the log — only its fingerprint — so a published manifest does
    not hand out the ability to forge the run's randomness.
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._derivations: list[dict] = []
        self._seen: set[str] = set()

    @property
    def master_fingerprint(self) -> str:
        """64-bit hex fingerprint of the master key material."""
        return _fingerprint(master_key_bytes(self.master_seed))

    def generator(self, key: StreamKey) -> np.random.Generator:
        """Derive (and record) the generator for ``key``."""
        canonical = key.canonical()
        if canonical not in self._seen:
            self._seen.add(canonical)
            self._derivations.append(
                {
                    "key": canonical,
                    "seed_fingerprint": _fingerprint(
                        derive_key_bytes(self.master_seed, key)
                    ),
                }
            )
        return derive_generator(self.master_seed, key)

    def derive(
        self, scenario: str, component: str, stream: str, ordinal: int = 0
    ) -> np.random.Generator:
        """Convenience: :meth:`generator` from bare key parts."""
        return self.generator(StreamKey(scenario, component, stream, ordinal))

    def stream(
        self,
        scenario: str,
        component: str,
        stream: str,
        shard_size: int = DEFAULT_SHARD_SIZE,
        start_ordinal: int = 0,
    ) -> "StreamRNG":
        """A sharded harvest stream (see :class:`StreamRNG`)."""
        return StreamRNG(
            self,
            StreamKey(scenario, component, stream),
            shard_size=shard_size,
            start_ordinal=start_ordinal,
        )

    def derivations(self) -> list[dict]:
        """The derivation log (one entry per distinct stream key)."""
        return [dict(entry) for entry in self._derivations]

    def absorb(self, derivations: Iterable[dict]) -> None:
        """Merge derivation-log entries reported by another registry.

        Distributed harvest workers derive streams in their own
        registries (same master seed); the coordinator absorbs their
        logs so the run manifest still lists every stream the run
        consumed.  Entries already recorded here are skipped, so
        absorbing overlapping worker logs is idempotent.
        """
        for entry in derivations:
            canonical = entry.get("key")
            if not canonical or canonical in self._seen:
                continue
            self._seen.add(canonical)
            self._derivations.append(dict(entry))

    def manifest_entry(self) -> dict:
        """Manifest section: master fingerprint + derivation log."""
        return {
            "protocol": PROTOCOL,
            "master_fingerprint": self.master_fingerprint,
            "derivations": self.derivations(),
        }

    def __repr__(self) -> str:
        return (
            f"StreamRegistry(master_fingerprint={self.master_fingerprint!r}, "
            f"derivations={len(self._derivations)})"
        )


class StreamRNG:
    """Shard-deterministic generator supply for the harvest engine.

    Row ``i`` of a harvest draws from the generator derived at ordinal
    ``(i // shard_size) * shard_size`` — one derivation per
    ``shard_size`` rows, consumed strictly in row order within the
    shard.  :meth:`segments` splits a batch ``[start, stop)`` at shard
    boundaries, so :func:`repro.core.harvest.harvest_columns` keeps its
    determinism contract (bit-identical output for any batch size)
    *and* any shard regenerates in isolation: derive the same stream at
    the shard's start ordinal and replay its rows.

    ``start_ordinal`` offsets local row indices into ledger ordinals —
    that is exactly the fork-equivalence hook: to regenerate rows
    ``[k·S, (k+1)·S)`` of a log, harvest the same contexts slice with
    ``StreamRNG(registry, key, shard_size=S, start_ordinal=k·S)``.
    Must be shard-aligned, because a generator's state mid-shard is not
    derivable without replaying the shard prefix.
    """

    def __init__(
        self,
        registry: StreamRegistry,
        key: StreamKey,
        shard_size: int = DEFAULT_SHARD_SIZE,
        start_ordinal: int = 0,
    ) -> None:
        if shard_size <= 0:
            raise ValueError(f"shard_size must be positive, got {shard_size}")
        if start_ordinal % shard_size != 0:
            raise ValueError(
                f"start_ordinal {start_ordinal} is not aligned to "
                f"shard_size {shard_size}"
            )
        self.registry = registry
        self.key = key.with_ordinal(0)
        self.shard_size = int(shard_size)
        self.start_ordinal = int(start_ordinal)
        self._current_shard: Optional[int] = None
        self._current_generator: Optional[np.random.Generator] = None

    def generator_for_row(self, row: int) -> np.random.Generator:
        """The (cached) generator of the shard containing local ``row``.

        Rows must be visited in non-decreasing order: moving backwards
        would need a fresh derivation mid-stream and silently fork the
        draw sequence, so it raises instead.
        """
        ordinal = self.start_ordinal + int(row)
        shard = ordinal // self.shard_size
        if self._current_shard is not None and shard < self._current_shard:
            raise ValueError(
                f"stream rows must be consumed in order: row {row} is in "
                f"shard {shard}, already past shard {self._current_shard}"
            )
        if shard != self._current_shard:
            self._current_shard = shard
            self._current_generator = self.registry.generator(
                self.key.with_ordinal(shard * self.shard_size)
            )
        assert self._current_generator is not None
        return self._current_generator

    def segments(
        self, start: int, stop: int
    ) -> Iterator[Tuple[int, int, np.random.Generator]]:
        """Split local rows ``[start, stop)`` at shard boundaries.

        Yields ``(seg_start, seg_stop, generator)`` with each segment
        fully inside one shard; consecutive segments of the same shard
        share the same generator instance (state carries over).
        """
        if start < 0 or stop < start:
            raise ValueError(f"bad segment range [{start}, {stop})")
        while start < stop:
            ordinal = self.start_ordinal + start
            shard_end = (ordinal // self.shard_size + 1) * self.shard_size
            seg_stop = min(stop, start + (shard_end - ordinal))
            yield start, seg_stop, self.generator_for_row(start)
            start = seg_stop

    def manifest_entry(self) -> dict:
        """Manifest section describing this stream's derivation scheme."""
        return {
            "key": self.key.name,
            "shard_size": self.shard_size,
            "start_ordinal": self.start_ordinal,
            "master_fingerprint": self.registry.master_fingerprint,
        }

    def __repr__(self) -> str:
        return (
            f"StreamRNG(key={self.key.name!r}, shard_size={self.shard_size}, "
            f"start_ordinal={self.start_ordinal})"
        )


class ShardedNormal:
    """Random-access Gaussian noise keyed by global row, derived per shard.

    :class:`StreamRNG` is forward-only — the right shape for decision
    sampling, which consumes draws strictly in row order.  Auxiliary
    noise (e.g. the loadbalance latency jitter) needs the opposite
    access pattern: *value of row i*, addressable from any shard
    without replaying a prefix.  ``ShardedNormal`` gives each global
    row a fixed value: shard ``k`` (rows ``[k·S, (k+1)·S)``) is one
    ``normal(loc, scale, size=S)`` draw from the generator derived at
    ordinal ``k·S``, memoized on first touch.  Row values therefore
    depend only on ``(master seed, stream key, shard_size)`` — not on
    batch grid, access order, or which process asks — so a serial
    harvest and any sharded re-derivation see bit-identical noise,
    and a worker touching rows ``[k·S, (k+1)·S)`` derives exactly its
    own shard.
    """

    def __init__(
        self,
        registry: StreamRegistry,
        key: StreamKey,
        shard_size: int = DEFAULT_SHARD_SIZE,
        loc: float = 0.0,
        scale: float = 1.0,
    ) -> None:
        if shard_size <= 0:
            raise ValueError(f"shard_size must be positive, got {shard_size}")
        if scale < 0:
            raise ValueError(f"scale must be non-negative, got {scale}")
        self.registry = registry
        self.key = key.with_ordinal(0)
        self.shard_size = int(shard_size)
        self.loc = float(loc)
        self.scale = float(scale)
        self._shards: dict[int, np.ndarray] = {}

    def _shard_values(self, shard: int) -> np.ndarray:
        cached = self._shards.get(shard)
        if cached is None:
            generator = self.registry.generator(
                self.key.with_ordinal(shard * self.shard_size)
            )
            cached = generator.normal(self.loc, self.scale, size=self.shard_size)
            self._shards[shard] = cached
        return cached

    def values(self, rows) -> np.ndarray:
        """The noise values of ``rows`` (global row indices, any order)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and int(rows.min()) < 0:
            raise ValueError("row indices must be non-negative")
        out = np.empty(rows.shape, dtype=np.float64)
        shards = rows // self.shard_size
        for shard in np.unique(shards):
            mask = shards == shard
            out[mask] = self._shard_values(int(shard))[
                rows[mask] - int(shard) * self.shard_size
            ]
        return out

    def manifest_entry(self) -> dict:
        """Manifest section describing this noise stream's derivation."""
        return {
            "key": self.key.name,
            "shard_size": self.shard_size,
            "loc": self.loc,
            "scale": self.scale,
            "master_fingerprint": self.registry.master_fingerprint,
        }

    def __repr__(self) -> str:
        return (
            f"ShardedNormal(key={self.key.name!r}, shard_size={self.shard_size}, "
            f"loc={self.loc}, scale={self.scale})"
        )
