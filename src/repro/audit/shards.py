"""Shard planning and splice verification for distributed harvests.

The distributed harvest story rests on two PR-7 primitives: any shard
of a stream re-derives in isolation from ``(master seed, stream key,
start ordinal)`` (:class:`repro.audit.streams.StreamRNG`), and a
ledger shard anchored at its predecessor's head reproduces the full
log's hashes (:class:`repro.audit.ledger.DecisionLedger` with
``genesis``/``start_ordinal``).  This module supplies the remaining
bookkeeping:

- :class:`ShardPlan` partitions ``(rows, shard_size)`` into
  stream-keyed :class:`ShardSpec` entries — each spec *is* the full
  worker bootstrap descriptor (together with the master fingerprint
  and stream key), no RNG state needs to travel;
- :func:`chain_digests` re-chains a shard's worker-computed digests,
  which doubles as the payload-integrity check (a worker's
  genesis-anchored provisional head must recompute from the shipped
  columns) and as the splice primitive;
- :func:`splice_payloads` seals ordered shard payloads into ONE
  ledger whose entries and head are bit-identical to a serial
  harvest, recording the per-shard ``prev``/``head`` boundary hashes
  (the shard map published in the run manifest);
- :func:`verify_sharded_jsonl` walks a sharded log the way
  ``repro verify-ledger --manifest`` needs to: each shard verified in
  isolation against its recorded ``prev``/``head``/``n`` (so
  ``count_mismatch`` pins to a shard), then the splice anchoring,
  then the whole chain end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

from repro.audit.ledger import (
    GENESIS,
    ChainVerification,
    DecisionLedger,
    entry_hash,
    verify_records,
)
from repro.audit.ledger import _jsonl_records
from repro.audit.streams import StreamKey

__all__ = [
    "ShardPlan",
    "ShardSpec",
    "ShardedVerification",
    "SpliceError",
    "chain_digests",
    "splice_payloads",
    "verify_sharded_jsonl",
    "verify_sharded_records",
]


class SpliceError(ValueError):
    """A shard payload set cannot be spliced into one coherent chain."""


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a harvest: rows ``[start, stop)`` of the plan.

    ``start`` is simultaneously the ledger ordinal of the shard's
    first decision and the stream-derivation ordinal a worker anchors
    its :class:`~repro.audit.streams.StreamRNG` at — the whole worker
    bootstrap is ``(master fingerprint, stream key, start, n rows)``.
    """

    index: int
    start: int
    stop: int

    @property
    def n(self) -> int:
        """Rows in this shard."""
        return self.stop - self.start

    def to_dict(self) -> dict:
        """JSON-serializable form (manifest shard-map skeleton)."""
        return {"index": self.index, "start": self.start, "n": self.n}


@dataclass(frozen=True)
class ShardPlan:
    """Partition of ``n_rows`` harvest rows into aligned shards.

    Shard ``k`` covers rows ``[k·S, min(n, (k+1)·S))`` — the same grid
    :class:`~repro.audit.streams.StreamRNG` derives generators on, so
    every shard's stream is derivable at exactly its own start ordinal
    and a parallel harvest touches no derivation outside its shards.
    """

    n_rows: int
    shard_size: int
    shards: Tuple[ShardSpec, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_rows < 0:
            raise ValueError(f"n_rows must be >= 0, got {self.n_rows}")
        if self.shard_size <= 0:
            raise ValueError(f"shard_size must be positive, got {self.shard_size}")
        specs = tuple(
            ShardSpec(
                index=index,
                start=start,
                stop=min(self.n_rows, start + self.shard_size),
            )
            for index, start in enumerate(range(0, self.n_rows, self.shard_size))
        )
        object.__setattr__(self, "shards", specs)

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[ShardSpec]:
        return iter(self.shards)

    def __getitem__(self, index: int) -> ShardSpec:
        return self.shards[index]

    def to_dict(self) -> dict:
        """JSON-serializable description of the partition."""
        return {
            "n_rows": self.n_rows,
            "shard_size": self.shard_size,
            "n_shards": len(self.shards),
        }


def chain_digests(
    stream: Union[StreamKey, str],
    context_shas: Sequence[str],
    actions: Sequence[int],
    propensities: Sequence[float],
    genesis: str = GENESIS,
    start_ordinal: int = 0,
) -> str:
    """The chain head over pre-digested decisions, without a ledger.

    Exactly the hashes :class:`~repro.audit.ledger.DecisionLedger`
    would seal — used to validate a shard payload in transit: a worker
    returns its provisional (genesis-anchored) head, and the
    coordinator recomputes it from the shipped columns; any flipped
    action, rescaled propensity, or swapped digest changes the head.
    """
    name = stream.name if isinstance(stream, StreamKey) else str(stream)
    n = len(context_shas)
    if len(actions) != n or len(propensities) != n:
        raise ValueError(
            f"length mismatch: {n} digests, {len(actions)} actions, "
            f"{len(propensities)} propensities"
        )
    head = str(genesis)
    for row in range(n):
        head = entry_hash(
            head,
            name,
            start_ordinal + row,
            str(context_shas[row]),
            int(actions[row]),
            float(propensities[row]),
        )
    return head


def splice_payloads(
    stream: Union[StreamKey, str],
    payloads: Sequence[Mapping],
    *,
    shard_size: Optional[int] = None,
    master_fingerprint: Optional[str] = None,
    genesis: str = GENESIS,
) -> Tuple[DecisionLedger, list]:
    """Seal ordered shard payloads into one serial-equivalent ledger.

    Each payload carries ``start``, ``context_shas``, ``actions``,
    ``propensities`` (and optionally ``retries``) for one shard; they
    must arrive sorted by ``start`` and contiguous from row 0.  The
    splice re-chains every entry against the true predecessor head
    (workers sealed against a provisional genesis anchor — only the
    ``prev`` linkage changes, the digests are reused), so the result
    is bit-identical to a serially-harvested ledger.  A payload that
    still carries its sealed ``entries`` AND whose ``genesis`` already
    equals the true predecessor head — an in-process shard harvested
    in ordinal order, never a shipped one (workers strip entries) — is
    adopted outright: its chain is the final chain, nothing to redo.
    Returns the ledger plus the shard map: per shard ``{index, start,
    n, prev, head, retries}`` — the boundary hashes that let
    ``verify-ledger`` check each shard in isolation later.
    """
    ledger = DecisionLedger(
        stream,
        shard_size=shard_size,
        genesis=genesis,
        master_fingerprint=master_fingerprint,
    )
    shard_map: list[dict] = []
    expected_start = 0
    for index, payload in enumerate(payloads):
        start = int(payload["start"])
        if start != expected_start:
            raise SpliceError(
                f"shard {index} starts at row {start}, expected "
                f"{expected_start} — payloads must be contiguous from row 0"
            )
        context_shas = payload["context_shas"]
        prev = ledger.head
        entries = payload.get("entries")
        if entries is not None and payload.get("genesis") == prev:
            ledger.adopt_entries(entries)
        else:
            ledger.extend_digests(
                context_shas, payload["actions"], payload["propensities"]
            )
        shard_map.append(
            {
                "index": index,
                "start": start,
                "n": len(context_shas),
                "prev": prev,
                "head": ledger.head,
                "retries": int(payload.get("retries", 0)),
            }
        )
        expected_start = start + len(context_shas)
    return ledger, shard_map


@dataclass
class ShardedVerification:
    """Outcome of verifying a sharded log: per shard, splice, overall.

    ``shards`` pairs each manifest shard-map entry with the
    :class:`~repro.audit.ledger.ChainVerification` of exactly that
    shard's records, anchored at the shard's recorded ``prev`` and
    pinned to its recorded ``head`` and ``n`` — a missing or extra
    record therefore shows up as that shard's ``count_mismatch``, not
    as a diffuse whole-log failure.  ``splice_issues`` cover the
    shard-map geometry itself (anchoring, contiguity, head linkage);
    ``overall`` is the plain end-to-end walk of the full chain.
    """

    overall: ChainVerification
    shards: list = field(default_factory=list)
    splice_issues: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff every shard, the splice, and the full chain verify."""
        return (
            self.overall.ok
            and not self.splice_issues
            and all(entry["verification"].ok for entry in self.shards)
        )

    def report(self) -> dict:
        """JSON-serializable summary (nests per-shard reports)."""
        return {
            "ok": self.ok,
            "overall": self.overall.report(),
            "splice_issues": list(self.splice_issues),
            "shards": [
                {
                    "index": entry["index"],
                    "start": entry["start"],
                    "n": entry["n"],
                    "prev": entry["prev"],
                    "head": entry["head"],
                    "ok": entry["verification"].ok,
                    "count_mismatch": entry["verification"].count_mismatch,
                    "report": entry["verification"].report(),
                }
                for entry in self.shards
            ],
        }

    def summary_text(self) -> str:
        """Human-readable verification report for terminals."""
        status = "OK" if self.ok else "BROKEN"
        lines = [
            f"sharded ledger: {status} — {len(self.shards)} shard(s)",
        ]
        for entry in self.shards:
            verification = entry["verification"]
            shard_status = "OK" if verification.ok else "BROKEN"
            detail = ""
            if verification.count_mismatch:
                detail = (
                    f" (count mismatch: expected {verification.expected_n}, "
                    f"got {verification.n_ledgered})"
                )
            elif not verification.ok and verification.first_bad is not None:
                detail = f" (first bad line {verification.first_bad})"
            lines.append(
                f"  shard {entry['index']} rows [{entry['start']}, "
                f"{entry['start'] + entry['n']}): {shard_status}{detail}"
            )
        for issue in self.splice_issues:
            lines.append(f"  splice   {issue}")
        lines.append("overall " + self.overall.summary_text())
        return "\n".join(lines)


def _splice_geometry_issues(
    shards: Sequence[Mapping], genesis: str, expected_head: Optional[str]
) -> list:
    issues: list[str] = []
    expected_start = 0
    prev_head = str(genesis)
    for position, shard in enumerate(shards):
        index = shard.get("index", position)
        start = int(shard["start"])
        if start != expected_start:
            issues.append(
                f"shard {index} starts at row {start}, expected {expected_start}"
            )
        if str(shard["prev"]) != prev_head:
            issues.append(
                f"shard {index} prev {str(shard['prev'])[:12]}… does not "
                f"match the preceding head {prev_head[:12]}…"
            )
        prev_head = str(shard["head"])
        expected_start = start + int(shard["n"])
    if expected_head is not None and shards and prev_head != str(expected_head):
        issues.append(
            f"final shard head {prev_head[:12]}… does not match the "
            f"recorded spliced head {str(expected_head)[:12]}…"
        )
    return issues


def verify_sharded_records(
    records: Iterable[Tuple[int, Mapping]],
    shards: Sequence[Mapping],
    expected_head: Optional[str] = None,
    expected_n: Optional[int] = None,
    genesis: str = GENESIS,
) -> ShardedVerification:
    """Verify a sharded log: shard map entries, splice, full chain.

    ``shards`` is the manifest's shard map (``{index, start, n, prev,
    head}`` per shard, as written by :func:`splice_payloads`).
    Records are routed to shards by their ledgered ordinal, each shard
    is verified in isolation (anchored at its recorded ``prev``,
    pinned to its ``head`` and ``n`` so ``count_mismatch`` localizes),
    the shard-map geometry is checked (anchoring at ``genesis``,
    contiguity, head-to-prev linkage, final head vs the spliced
    head), and the whole chain is walked end to end.

    Materializes the record list (O(file) memory) — the per-shard
    pass needs routed groups; sharded logs verified here are run
    artifacts, not out-of-core datasets.
    """
    from repro.audit.ledger import ChainFollower

    records = list(records)
    ordered = sorted(shards, key=lambda shard: int(shard["start"]))
    overall = verify_records(
        iter(records),
        expected_head=expected_head,
        genesis=genesis,
        expected_n=expected_n,
    )
    splice_issues = _splice_geometry_issues(ordered, genesis, expected_head)

    grouped: dict[int, list] = {position: [] for position in range(len(ordered))}
    starts = [int(shard["start"]) for shard in ordered]
    stops = [int(shard["start"]) + int(shard["n"]) for shard in ordered]
    for line_number, record in records:
        meta = ChainFollower.metadata_of(record)
        if meta is None or "ordinal" not in meta:
            continue
        try:
            ordinal = int(meta["ordinal"])
        except (TypeError, ValueError):
            continue
        for position, (start, stop) in enumerate(zip(starts, stops)):
            if start <= ordinal < stop:
                grouped[position].append((line_number, record))
                break
        else:
            splice_issues.append(
                f"line {line_number}: ledgered ordinal {ordinal} falls "
                f"outside every manifest shard"
            )

    result = ShardedVerification(overall=overall, splice_issues=splice_issues)
    for position, shard in enumerate(ordered):
        verification = verify_records(
            iter(grouped[position]),
            expected_head=str(shard["head"]),
            genesis=str(shard["prev"]),
            expected_n=int(shard["n"]),
        )
        result.shards.append(
            {
                "index": int(shard.get("index", position)),
                "start": int(shard["start"]),
                "n": int(shard["n"]),
                "prev": str(shard["prev"]),
                "head": str(shard["head"]),
                "verification": verification,
            }
        )
    return result


def verify_sharded_jsonl(
    path: str,
    shards: Sequence[Mapping],
    expected_head: Optional[str] = None,
    expected_n: Optional[int] = None,
    genesis: str = GENESIS,
) -> ShardedVerification:
    """:func:`verify_sharded_records` over a JSONL exploration log."""
    return verify_sharded_records(
        _jsonl_records(path),
        shards,
        expected_head=expected_head,
        expected_n=expected_n,
        genesis=genesis,
    )
