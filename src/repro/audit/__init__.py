"""``repro.audit`` — audit-grade randomness and verifiable decision logs.

The paper's premise is that harvested randomness is only as valuable
as its provenance: an off-policy estimate is unbiased only when every
logged propensity can be traced to the exact random draw that produced
it.  This package is the provenance layer:

- :mod:`repro.audit.streams` — HKDF-SHA256 stream derivation from one
  master seed, keyed ``(scenario, component, stream, ordinal)``.  Any
  shard of a harvested log re-derives its generator in isolation (fork
  equivalence), so distributed harvesters need no coordinated RNG
  state.
- :mod:`repro.audit.ledger` — a hash-chained decision ledger: every
  harvested decision records ``(prev_hash, stream key, ordinal,
  context digest, action, propensity)``, so corrupted, reordered, or
  truncated log segments are detected — and localized — by chain
  verification.
- :mod:`repro.audit.shards` — shard planning and splice verification
  for distributed harvests: partition ``(rows, shard_size)`` into
  stream-keyed shard specs, splice worker-sealed shard payloads into
  one serial-equivalent chain, and verify sharded manifests shard by
  shard.
- :mod:`repro.audit.lint` — static analysis that finds *ambient* RNG
  (module-level ``random.*`` / ``np.random.*`` calls, argless
  ``default_rng()``) so no hot path can draw randomness that escapes
  the provenance record.

The design follows the production pattern of Adventorator's ADR-0008
(single master seed, HKDF per-stream derivation, rolls tied to ledger
ordering, no ambient RNG in the executor path); see
``docs/adr-0001-rng-streams.md`` for the migration story from the old
CRC32 seed mix.
"""

from repro.audit.ledger import (
    GENESIS,
    LEDGER_SCHEMA_VERSION,
    ChainFollower,
    ChainIssue,
    ChainVerification,
    DecisionLedger,
    LedgerEntry,
    context_digest,
    entry_hash,
    rechain,
    verify_jsonl,
    verify_records,
)
from repro.audit.lint import (
    LintFinding,
    scan_file,
    scan_package,
    scan_source,
)
from repro.audit.shards import (
    ShardPlan,
    ShardSpec,
    ShardedVerification,
    SpliceError,
    chain_digests,
    splice_payloads,
    verify_sharded_jsonl,
    verify_sharded_records,
)
from repro.audit.streams import (
    ShardedNormal,
    StreamKey,
    StreamRegistry,
    StreamRNG,
    derive_generator,
    derive_key_bytes,
    derive_seed,
    hkdf_sha256,
)

__all__ = [
    # streams
    "ShardedNormal",
    "StreamKey",
    "StreamRegistry",
    "StreamRNG",
    "derive_generator",
    "derive_key_bytes",
    "derive_seed",
    "hkdf_sha256",
    # shards
    "ShardPlan",
    "ShardSpec",
    "ShardedVerification",
    "SpliceError",
    "chain_digests",
    "splice_payloads",
    "verify_sharded_jsonl",
    "verify_sharded_records",
    # ledger
    "GENESIS",
    "LEDGER_SCHEMA_VERSION",
    "ChainFollower",
    "ChainIssue",
    "ChainVerification",
    "DecisionLedger",
    "LedgerEntry",
    "context_digest",
    "entry_hash",
    "rechain",
    "verify_jsonl",
    "verify_records",
    # lint
    "LintFinding",
    "scan_file",
    "scan_package",
    "scan_source",
]
