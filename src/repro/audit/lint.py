"""Static analysis against *ambient* randomness in ``src/repro``.

Ambient RNG — the module-level ``random.random()`` / ``np.random.*``
state, or an argless ``np.random.default_rng()`` — is randomness with
no provenance: it cannot be tied to a master seed, a stream key, or a
ledger ordinal, so any decision it influences is unauditable and any
log it touches loses fork equivalence.  This module walks Python ASTs
and reports every such call site, and a tier-1 test
(``tests/audit/test_rng_lint.py``) fails the build on findings outside
an explicit allowlist.

What is flagged:

- calls through the ``random`` module's ambient state
  (``random.random()``, ``random.randint(...)``, ``random.seed`` …);
- calls through NumPy's legacy global state (``np.random.rand()``,
  ``numpy.random.shuffle`` …);
- ``default_rng()`` / ``np.random.default_rng()`` with *no seed
  argument* (an argless construction is OS-entropy seeded — fine for
  a CLI default, poison inside library code);
- bare ``seed(...)`` / ambient calls via ``from random import ...`` or
  ``from numpy.random import ...`` aliases (import tracking).

What is not flagged: ``random.Random(x)`` / ``default_rng(seed)``
instances (explicitly seeded, traceable), ``np.random.Generator`` /
``SeedSequence`` type references, and attribute access without a call.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

__all__ = ["LintFinding", "scan_source", "scan_file", "scan_package"]

#: ``random``-module functions that consume or mutate the ambient state.
#: (Classes like ``random.Random`` and ``random.SystemRandom`` are fine.)
_RANDOM_AMBIENT = frozenset(
    {
        "betavariate", "binomialvariate", "choice", "choices",
        "expovariate", "gammavariate", "gauss", "getrandbits",
        "getstate", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "setstate", "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    }
)

#: ``numpy.random`` attributes that are safe to reference: explicit
#: constructors and types, not the legacy global state.
_NP_RANDOM_SAFE = frozenset(
    {"Generator", "SeedSequence", "BitGenerator", "PCG64", "PCG64DXSM",
     "Philox", "SFC64", "MT19937", "RandomState", "default_rng"}
)


@dataclass(frozen=True)
class LintFinding:
    """One ambient-RNG call site."""

    path: str  #: Source path (or the label given to :func:`scan_source`).
    line: int  #: 1-based line number.
    col: int  #: 0-based column offset.
    call: str  #: The offending call as written, e.g. ``np.random.rand``.
    reason: str  #: Why it is ambient.

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.call} — {self.reason}"


class _AmbientRNGVisitor(ast.NodeVisitor):
    """Track RNG-relevant imports, then flag ambient call sites."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[LintFinding] = []
        # Local alias -> canonical module ("random" / "numpy.random" / "numpy").
        self.module_aliases: dict[str, str] = {}
        # Local name -> ("random"|"numpy.random", original function name)
        # for `from random import shuffle as mix`-style imports.
        self.from_imports: dict[str, tuple[str, str]] = {}

    # -- import tracking -----------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in ("random", "numpy", "numpy.random"):
                local = alias.asname or alias.name.split(".")[0]
                canonical = "numpy" if alias.name == "numpy.random" else alias.name
                if alias.asname and alias.name == "numpy.random":
                    canonical = "numpy.random"
                self.module_aliases[local] = canonical
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = (
                    "random", alias.name
                )
        elif node.module in ("numpy.random", "numpy.random.mtrand"):
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = (
                    "numpy.random", alias.name
                )
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.module_aliases[alias.asname or "random"] = "numpy.random"
        self.generic_visit(node)

    # -- call-site resolution ------------------------------------------------

    def _resolve(self, func: ast.expr) -> Optional[tuple[str, str, str]]:
        """Resolve a call target to ``(module, attr, as_written)``.

        ``module`` is ``"random"`` or ``"numpy.random"``; returns None
        for calls that cannot reach either module's ambient state.
        """
        if isinstance(func, ast.Name):
            origin = self.from_imports.get(func.id)
            if origin is not None:
                return origin[0], origin[1], func.id
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        value = func.value
        # random.<attr>(...) or nprand.<attr>(...)
        if isinstance(value, ast.Name):
            module = self.module_aliases.get(value.id)
            if module == "random":
                return "random", attr, f"{value.id}.{attr}"
            if module == "numpy.random":
                return "numpy.random", attr, f"{value.id}.{attr}"
            return None
        # np.random.<attr>(...)
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and self.module_aliases.get(value.value.id) == "numpy"
        ):
            return "numpy.random", attr, f"{value.value.id}.random.{attr}"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve(node.func)
        if resolved is not None:
            module, attr, written = resolved
            if module == "random" and attr in _RANDOM_AMBIENT:
                self.findings.append(
                    LintFinding(
                        self.path, node.lineno, node.col_offset, written,
                        "call through the random module's ambient global state",
                    )
                )
            elif module == "numpy.random":
                if attr == "default_rng" and not node.args and not node.keywords:
                    self.findings.append(
                        LintFinding(
                            self.path, node.lineno, node.col_offset, written,
                            "argless default_rng() is OS-entropy seeded — "
                            "pass a seed or derive via repro.audit.streams",
                        )
                    )
                elif attr not in _NP_RANDOM_SAFE:
                    self.findings.append(
                        LintFinding(
                            self.path, node.lineno, node.col_offset, written,
                            "call through numpy's legacy ambient global state",
                        )
                    )
        self.generic_visit(node)


def scan_source(source: str, path: str = "<string>") -> list[LintFinding]:
    """Scan Python source text for ambient-RNG call sites."""
    tree = ast.parse(source, filename=path)
    visitor = _AmbientRNGVisitor(path)
    visitor.visit(tree)
    return visitor.findings


def scan_file(path: Union[str, Path]) -> list[LintFinding]:
    """Scan one Python file for ambient-RNG call sites."""
    path = Path(path)
    return scan_source(path.read_text(encoding="utf-8"), str(path))


def scan_package(
    root: Union[str, Path],
    allowlist: Sequence[str] = (),
) -> list[LintFinding]:
    """Scan every ``*.py`` under ``root``, skipping allowlisted files.

    ``allowlist`` entries are path suffixes relative to ``root`` (POSIX
    separators), e.g. ``"simsys/legacy.py"``.  Findings are returned
    sorted by path and position; an empty list means the package draws
    no untraceable randomness.
    """
    root = Path(root)
    findings: list[LintFinding] = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if any(relative == entry or relative.endswith("/" + entry)
               for entry in allowlist):
            continue
        findings.extend(scan_file(path))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col))
