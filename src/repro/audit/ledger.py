"""The hash-chained decision ledger: tamper-evident exploration logs.

Off-policy evaluation trusts a log's every row: a flipped action, a
rescaled propensity, a dropped segment — all silently bias the
estimate while remaining perfectly *valid-looking* data, invisible to
value-level validation.  The ledger closes that gap.  Every harvested
decision event carries a chained record::

    hash_i = SHA256(prev=hash_{i-1} | stream | ordinal_i |
                    context_sha_i | action_i | propensity_i)

so that

- **tampering** with any field (context, action, propensity, or the
  ledger metadata itself) breaks that record's hash binding;
- **deletion, insertion, or reordering** breaks the ``prev`` linkage
  of the surrounding records — verification localizes the damage to a
  segment instead of merely failing;
- **truncation** is caught by comparing the final head against the
  head recorded in the run manifest
  (:meth:`repro.obs.manifest.RunManifest.build`'s ``ledger`` section);
- together with :mod:`repro.audit.streams`, any shard of the log
  regenerates bit-identically in isolation (fork equivalence): derive
  the stream at the shard's start ordinal, replay the rows, and anchor
  the chain at the shard's recorded ``prev``.

Hot-path cost discipline: hashing a record costs ~1 µs, which is the
*entire* per-row budget of the batched harvest engine.
:meth:`DecisionLedger.extend_batch` therefore only keeps references to
the batch arrays (O(1) per batch) and the chain is **sealed lazily** —
computed when the entries, the head, or the annotated dataset are
first needed, i.e. at serialization time, before the log ever leaves
the process.  The at-rest artifact is always covered; the sampling
loop pays nothing.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.audit.streams import StreamKey

__all__ = [
    "GENESIS",
    "LEDGER_SCHEMA_VERSION",
    "ChainFollower",
    "ChainIssue",
    "ChainVerification",
    "DecisionLedger",
    "LedgerEntry",
    "StreamingLedgerWriter",
    "context_digest",
    "entry_hash",
    "rechain",
    "verify_jsonl",
    "verify_records",
]

#: Bump when the ledger record layout changes incompatibly.
LEDGER_SCHEMA_VERSION = 1

#: The chain anchor before any record: 64 hex zeros.
GENESIS = "0" * 64

#: Validation reason code for ledger rejections (mirrored into
#: :mod:`repro.core.validation`'s reason vocabulary).
LEDGER = "ledger"

_PACK_DOUBLE = struct.Struct("<d").pack


def context_digest(context: Mapping) -> str:
    """128-bit hex digest of a context, canonical across round trips.

    Features are folded in sorted key order with length-prefixed keys
    and exact little-endian float64 values, so the digest is invariant
    under dict ordering and JSON serialization (which round-trips
    float64 exactly) but changes for any altered feature name or value.
    """
    digest = hashlib.sha256()
    for key in sorted(context):
        raw = str(key).encode("utf-8")
        digest.update(len(raw).to_bytes(4, "big"))
        digest.update(raw)
        digest.update(_PACK_DOUBLE(float(context[key])))
    return digest.hexdigest()[:32]


def entry_hash(
    prev: str,
    stream: str,
    ordinal: int,
    context_sha: str,
    action: int,
    propensity: float,
) -> str:
    """The chained hash of one decision event.

    The message is an unambiguous ``|``-joined canonical form (stream
    names exclude ``|`` by construction, floats use ``float.hex()``
    for bit-exactness), prefixed by the previous record's hash — so
    every hash commits to the entire log prefix.
    """
    message = "|".join(
        (
            prev,
            stream,
            str(int(ordinal)),
            context_sha,
            str(int(action)),
            float(propensity).hex(),
        )
    )
    return hashlib.sha256(message.encode("ascii")).hexdigest()


@dataclass(frozen=True)
class LedgerEntry:
    """One sealed ledger record for one harvested decision."""

    stream: str
    ordinal: int
    prev: str
    context_sha: str
    action: int
    propensity: float
    hash: str

    def to_metadata(self) -> dict:
        """The dict embedded at ``interaction.metadata["ledger"]``."""
        return {
            "v": LEDGER_SCHEMA_VERSION,
            "stream": self.stream,
            "ordinal": self.ordinal,
            "prev": self.prev,
            "context_sha": self.context_sha,
            "hash": self.hash,
        }


class DecisionLedger:
    """Build the hash chain over a stream of harvested decisions.

    ``stream`` names the decision stream (a
    :class:`~repro.audit.streams.StreamKey` or its ``name`` form);
    ``shard_size`` records the derivation shard of the paired
    :class:`~repro.audit.streams.StreamRNG` so verification tooling can
    re-derive shards; ``genesis`` anchors the chain (override it with a
    predecessor's head to extend a log, or with a shard's recorded
    ``prev`` to rebuild that shard in isolation); ``start_ordinal``
    offsets the entry ordinals for the same shard-rebuild case, so an
    isolated rebuild reproduces the full log's records bit-identically.

    Two append paths share one chain:

    - :meth:`append` — seal one decision immediately (per-row /
      online use);
    - :meth:`extend_batch` — O(1) per batch: stash references to the
      batch's contexts/actions/propensities and defer hashing until
      the chain is observed (:attr:`head`, :meth:`entries`,
      :meth:`annotate`).  This is what the batched harvest engine
      calls, keeping ledger overhead off the sampling hot path.
    """

    def __init__(
        self,
        stream: Union[StreamKey, str],
        *,
        shard_size: Optional[int] = None,
        genesis: str = GENESIS,
        start_ordinal: int = 0,
        master_fingerprint: Optional[str] = None,
    ) -> None:
        if start_ordinal < 0:
            raise ValueError(f"start_ordinal must be >= 0, got {start_ordinal}")
        self.stream = stream.name if isinstance(stream, StreamKey) else str(stream)
        self.genesis = str(genesis)
        self.start_ordinal = int(start_ordinal)
        self.shard_size = shard_size
        self.master_fingerprint = master_fingerprint
        self._head = self.genesis
        self._entries: list[LedgerEntry] = []
        self._pending: list[tuple[Sequence[Mapping], np.ndarray, np.ndarray]] = []
        self._pending_rows = 0

    # -- appending -----------------------------------------------------------

    def append(self, context: Mapping, action: int, propensity: float) -> LedgerEntry:
        """Seal one decision onto the chain and return its entry."""
        self._drain()
        return self._seal_one(context, int(action), float(propensity))

    def extend_batch(
        self,
        contexts: Sequence[Mapping],
        actions: np.ndarray,
        propensities: np.ndarray,
    ) -> None:
        """Queue one harvested batch; hashing is deferred until sealed.

        The arrays are kept by reference — callers hand over slices the
        harvest engine has finished writing (each output position is
        written exactly once, so the views are stable).
        """
        n = len(contexts)
        if len(actions) != n or len(propensities) != n:
            raise ValueError(
                f"batch length mismatch: {n} contexts, {len(actions)} "
                f"actions, {len(propensities)} propensities"
            )
        if n:
            self._pending.append((contexts, actions, propensities))
            self._pending_rows += n

    def extend_digests(
        self,
        context_shas: Sequence[str],
        actions: Sequence[int],
        propensities: Sequence[float],
    ) -> None:
        """Seal decisions whose context digests are already computed.

        The splice path of a sharded harvest: workers digest their
        shard's contexts (the expensive half of sealing) and ship the
        digests home, and the coordinator re-chains them here against
        the true predecessor head — every entry hash still commits to
        the full log prefix, but no context is hashed twice.  Seals
        immediately (there is nothing left to defer).
        """
        n = len(context_shas)
        if len(actions) != n or len(propensities) != n:
            raise ValueError(
                f"batch length mismatch: {n} digests, {len(actions)} "
                f"actions, {len(propensities)} propensities"
            )
        self._drain()
        for row in range(n):
            self._seal_digest(
                str(context_shas[row]), int(actions[row]), float(propensities[row])
            )

    def adopt_entries(self, entries: Sequence["LedgerEntry"]) -> None:
        """Append entries already sealed against this ledger's head.

        The trusted half of the sharded splice: an in-process shard
        harvested in ordinal order is anchored at the true predecessor
        head, so its sealed entries are *exactly* the entries this
        ledger would seal — adopting them skips the second chain-hash
        pass that :meth:`extend_digests` pays for untrusted payloads.
        The anchor, ordinal, and stream of the first entry are checked;
        the interior linkage is the producing ledger's own invariant.
        Never call this with entries that crossed a process boundary —
        re-chain those from their digests instead.
        """
        entries = list(entries)
        if not entries:
            return
        self._drain()
        first = entries[0]
        if first.prev != self._head:
            raise ValueError(
                f"cannot adopt entries anchored at {first.prev[:12]}…: "
                f"the chain head is {self._head[:12]}…"
            )
        if first.ordinal != self.start_ordinal + len(self._entries):
            raise ValueError(
                f"cannot adopt entries starting at ordinal {first.ordinal}: "
                f"expected {self.start_ordinal + len(self._entries)}"
            )
        if first.stream != self.stream:
            raise ValueError(
                f"cannot adopt entries of stream {first.stream!r} into "
                f"{self.stream!r}"
            )
        self._entries.extend(entries)
        self._head = entries[-1].hash

    def _seal_digest(
        self, context_sha: str, action: int, propensity: float
    ) -> LedgerEntry:
        ordinal = self.start_ordinal + len(self._entries)
        digest = entry_hash(
            self._head, self.stream, ordinal, context_sha, action, propensity
        )
        entry = LedgerEntry(
            stream=self.stream,
            ordinal=ordinal,
            prev=self._head,
            context_sha=context_sha,
            action=action,
            propensity=propensity,
            hash=digest,
        )
        self._entries.append(entry)
        self._head = digest
        return entry

    def _seal_one(
        self, context: Mapping, action: int, propensity: float
    ) -> LedgerEntry:
        return self._seal_digest(context_digest(context), action, propensity)

    def _drain(self) -> None:
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        self._pending_rows = 0
        for contexts, actions, propensities in pending:
            for row in range(len(contexts)):
                self._seal_one(
                    contexts[row], int(actions[row]), float(propensities[row])
                )

    # -- observation ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries) + self._pending_rows

    @property
    def n(self) -> int:
        """Decisions recorded so far (sealed + pending)."""
        return len(self)

    @property
    def head(self) -> str:
        """The chain head — seals any pending batches first."""
        self._drain()
        return self._head

    def entries(self) -> list[LedgerEntry]:
        """All sealed entries, in ordinal order (seals pending batches)."""
        self._drain()
        return list(self._entries)

    def annotate(self, interactions: Iterable) -> None:
        """Attach each entry to the matching interaction's metadata.

        ``interactions`` must align one-to-one with the ledger (same
        count, same order) — exactly what a harvest that fed both
        produces.  Mutates ``interaction.metadata["ledger"]`` in place.
        """
        entries = self.entries()
        interactions = list(interactions)
        if len(interactions) != len(entries):
            raise ValueError(
                f"ledger has {len(entries)} entries for "
                f"{len(interactions)} interactions"
            )
        for interaction, entry in zip(interactions, entries):
            interaction.metadata["ledger"] = entry.to_metadata()

    def manifest_entry(self) -> dict:
        """Manifest section proving this ledger's provenance."""
        out = {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "stream": self.stream,
            "n": len(self),
            "genesis": self.genesis,
            "head": self.head,
        }
        if self.shard_size is not None:
            out["shard_size"] = self.shard_size
        if self.master_fingerprint is not None:
            out["master_fingerprint"] = self.master_fingerprint
        return out

    def __repr__(self) -> str:
        return f"DecisionLedger(stream={self.stream!r}, n={len(self)})"


class StreamingLedgerWriter:
    """Incrementally persist a growing ledgered decision stream as JSONL.

    The batch pipeline seals its whole chain once, at serialization
    time.  A *long-running* producer (the online decision service of
    :mod:`repro.serve`) instead flushes periodically: each
    :meth:`flush` seals exactly the decisions recorded since the last
    flush, stamps each record's ``metadata["ledger"]`` from its sealed
    entry, and appends the records to ``path`` in the exact byte
    format of :meth:`repro.core.types.Dataset.save_jsonl` — so the
    at-rest log is always a verifiable chain prefix, and
    ``Dataset.load_jsonl(path, verify_ledger="require")`` ingests it
    unchanged at any point in the service's lifetime.

    The caller owns the pairing discipline: the records passed to
    :meth:`flush` must align one-to-one, in order, with the ledger
    decisions recorded since the previous flush (the service guarantees
    this by feeding both from the same decide loop).
    """

    def __init__(self, ledger: DecisionLedger, path: str) -> None:
        self.ledger = ledger
        self.path = str(path)
        self._file = open(self.path, "a", encoding="utf-8")
        self._written = 0

    @property
    def written(self) -> int:
        """Records persisted to :attr:`path` so far."""
        return self._written

    def flush(self, records: Sequence[Mapping]) -> list[LedgerEntry]:
        """Seal, stamp, and append ``records``; return their entries.

        ``records`` are plain :meth:`Interaction.to_dict
        <repro.core.types.Interaction.to_dict>` dicts (without ledger
        metadata — it is stamped here).  Raises ``ValueError`` if the
        count does not match the unsealed tail of the ledger, which
        would mean the caller's record buffer and the ledger have
        diverged — better to fail loudly than to persist a misaligned
        chain.
        """
        entries = self.ledger.entries()
        fresh = entries[self._written :]
        if len(records) != len(fresh):
            raise ValueError(
                f"flush got {len(records)} records for {len(fresh)} "
                "unwritten ledger entries"
            )
        lines = []
        for record, entry in zip(records, fresh):
            record = dict(record)
            metadata = dict(record.get("metadata", {}))
            metadata["ledger"] = entry.to_metadata()
            record["metadata"] = metadata
            lines.append(json.dumps(record) + "\n")
        self._file.writelines(lines)
        self._file.flush()
        self._written += len(fresh)
        return list(fresh)

    def close(self) -> None:
        """Close the underlying file handle (flush first)."""
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "StreamingLedgerWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"StreamingLedgerWriter(path={self.path!r}, "
            f"written={self._written})"
        )


def rechain(
    interactions: Iterable,
    stream: Union[StreamKey, str, None] = None,
    **ledger_kwargs,
) -> DecisionLedger:
    """Rebuild a fresh chain over surviving interactions (the repair).

    After quarantine drops corrupted records the old chain necessarily
    shows gaps at every removal; ``rechain`` seals a new chain over
    what survived (re-annotating each interaction's ledger metadata)
    so the repaired log verifies clean end to end.  ``stream`` defaults
    to the stream named by the first interaction's existing metadata.
    """
    interactions = list(interactions)
    if stream is None:
        for interaction in interactions:
            meta = interaction.metadata.get("ledger") if interaction.metadata else None
            if meta and meta.get("stream"):
                stream = meta["stream"]
                break
        else:
            raise ValueError("no ledger metadata to take the stream name from")
    ledger = DecisionLedger(stream, **ledger_kwargs)
    for interaction in interactions:
        ledger.append(
            interaction.context, interaction.action, interaction.propensity
        )
    ledger.annotate(interactions)
    return ledger


# -- verification ------------------------------------------------------------


@dataclass(frozen=True)
class ChainIssue:
    """One verification defect, localized to a record."""

    line: int  #: 1-based line/record number in the source.
    reason: str  #: ``"ledger"`` (binding broken) or ``"ledger-gap"``.
    detail: str

    def __str__(self) -> str:
        return f"line {self.line}: {self.reason}: {self.detail}"


@dataclass
class ChainVerification:
    """The outcome of walking a log's chain end to end.

    ``segments`` are the maximal runs of internally-consistent,
    correctly-linked records — corruption *localizes*: the first bad
    record is named, and an intact suffix shows up as its own verified
    segment rather than poisoning everything after the break.
    """

    n: int  #: Records examined (blank lines excluded).
    n_ledgered: int  #: Records carrying ledger metadata.
    head: Optional[str]  #: Final stored head (None when nothing ledgered).
    issues: list[ChainIssue] = field(default_factory=list)
    gaps: list[ChainIssue] = field(default_factory=list)
    segments: list[dict] = field(default_factory=list)
    expected_head: Optional[str] = None
    expected_n: Optional[int] = None

    @property
    def ok(self) -> bool:
        """True iff the chain is unbroken and matches the expectations."""
        if self.issues or self.gaps:
            return False
        if self.expected_head is not None and self.head != self.expected_head:
            return False
        if self.count_mismatch:
            return False
        return self.n_ledgered > 0

    @property
    def first_bad(self) -> Optional[int]:
        """1-based line of the first defect (binding break or gap)."""
        lines = [issue.line for issue in self.issues + self.gaps]
        return min(lines) if lines else None

    @property
    def truncated(self) -> bool:
        """Whether the final head differs from the expected head."""
        return (
            self.expected_head is not None and self.head != self.expected_head
        )

    @property
    def count_mismatch(self) -> bool:
        """Whether fewer/more records are chained than the manifest says."""
        return self.expected_n is not None and self.n_ledgered != self.expected_n

    def report(self) -> dict:
        """JSON-serializable summary."""
        return {
            "ok": self.ok,
            "n": self.n,
            "n_ledgered": self.n_ledgered,
            "expected_n": self.expected_n,
            "count_mismatch": self.count_mismatch,
            "head": self.head,
            "expected_head": self.expected_head,
            "truncated": self.truncated,
            "first_bad": self.first_bad,
            "issues": [str(issue) for issue in self.issues],
            "gaps": [str(issue) for issue in self.gaps],
            "segments": list(self.segments),
        }

    def summary_text(self) -> str:
        """Human-readable verification report for terminals."""
        status = "OK" if self.ok else "BROKEN"
        lines = [
            f"ledger: {status} — {self.n_ledgered}/{self.n} record(s) "
            f"chained, {len(self.segments)} verified segment(s)"
        ]
        if self.head is not None:
            lines.append(f"  head {self.head}")
        if self.truncated:
            lines.append(
                f"  TRUNCATED/MODIFIED: expected head {self.expected_head}"
            )
        if self.count_mismatch:
            lines.append(
                f"  COUNT MISMATCH: manifest records {self.expected_n} "
                f"ledgered decision(s), log carries {self.n_ledgered}"
            )
        for issue in self.issues[:5]:
            lines.append(f"  corrupt  {issue}")
        for gap in self.gaps[:5]:
            lines.append(f"  gap      {gap}")
        for segment in self.segments:
            lines.append(
                f"  segment  lines {segment['start_line']}–"
                f"{segment['stop_line']} ({segment['n']} records) verified"
            )
        return "\n".join(lines)


class ChainFollower:
    """Stateful verifier: feed parsed records in file order.

    Separation of duties mirrors
    :class:`repro.core.validation.RecordValidator`: :meth:`check` is
    pure (returns the record's binding defects), :meth:`observe`
    advances the chain head.  The head always advances to the record's
    *stored* hash — chain verification judges log integrity as
    written, independently of whether value-level validation accepts
    the record — so a quarantined-but-authentic record does not open a
    spurious gap at its successor.

    ``strict_links`` makes linkage breaks (gaps) show up as issues
    from :meth:`check` (strict loading); otherwise gaps are tolerated
    and only tallied (quarantine/repair loading, where a gap is the
    expected shadow of an already-rejected predecessor).
    """

    REQUIRED_FIELDS = ("stream", "ordinal", "prev", "context_sha", "hash")

    def __init__(self, genesis: str = GENESIS, strict_links: bool = False) -> None:
        self.genesis = genesis
        self.strict_links = strict_links
        self.head: str = genesis
        self.engaged = False  #: Set once the first ledgered record is seen.
        self.n_ledgered = 0
        self.n_gaps = 0

    @staticmethod
    def metadata_of(record: Mapping) -> Optional[Mapping]:
        """The record's ledger metadata block, if any."""
        metadata = record.get("metadata")
        if not isinstance(metadata, Mapping):
            return None
        ledger = metadata.get("ledger")
        return ledger if isinstance(ledger, Mapping) else None

    def check(self, record: Mapping) -> list[Tuple[str, str]]:
        """Binding defects of one record (empty = authentic).

        Verifies (1) the ledger metadata is complete, (2) the recorded
        context digest matches the record's context, and (3) the
        recorded hash recomputes from the record's own fields — so any
        tampering with context, action, propensity, or the metadata
        itself is caught.  Linkage to the previous record is reported
        only under ``strict_links``; otherwise gaps are :meth:`observe`
        bookkeeping.
        """
        meta = self.metadata_of(record)
        if meta is None:
            if self.engaged:
                return [(LEDGER, "record carries no ledger metadata mid-chain")]
            return []
        missing = [f for f in self.REQUIRED_FIELDS if f not in meta]
        if missing:
            return [(LEDGER, f"ledger metadata missing field(s) {missing}")]
        issues: list[Tuple[str, str]] = []
        context = record.get("context")
        if not isinstance(context, Mapping):
            # The ledger committed to a context digest; a record whose
            # context is gone (or no longer a mapping) cannot honour
            # that commitment — deleting the field is tampering too.
            issues.append(
                (LEDGER, "ledgered record's context is missing or not a mapping")
            )
        else:
            try:
                recomputed_sha = context_digest(context)
            except (TypeError, ValueError):
                recomputed_sha = None
            if recomputed_sha != meta["context_sha"]:
                issues.append(
                    (LEDGER, "context digest mismatch (context tampered)")
                )
        try:
            recomputed = entry_hash(
                str(meta["prev"]),
                str(meta["stream"]),
                int(meta["ordinal"]),
                str(meta["context_sha"]),
                int(record["action"]),
                float(record["propensity"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            return issues + [(LEDGER, f"record hash not recomputable: {error}")]
        if recomputed != meta["hash"]:
            issues.append(
                (
                    LEDGER,
                    f"record hash mismatch at ordinal {meta['ordinal']} "
                    "(action/propensity/metadata tampered)",
                )
            )
        if self.strict_links and meta["prev"] != self.head:
            issues.append(
                (
                    LEDGER,
                    f"chain break at ordinal {meta['ordinal']}: prev "
                    f"{str(meta['prev'])[:12]}… does not match head "
                    f"{self.head[:12]}…",
                )
            )
        return issues

    def observe(self, record: Mapping) -> bool:
        """Advance the head past ``record``; True if it opened a gap.

        The head starts at ``genesis``, so the *first* ledgered record
        opens a gap too when its ``prev`` is not the genesis anchor —
        that is how deleting a log's leading records (front truncation)
        is detected.  To verify a shard in isolation, anchor the
        follower at the shard's recorded ``prev`` via ``genesis``.
        """
        meta = self.metadata_of(record)
        if meta is None or "hash" not in meta:
            return False
        self.engaged = True
        self.n_ledgered += 1
        gap = meta.get("prev") != self.head
        if gap:
            self.n_gaps += 1
        self.head = str(meta["hash"])
        return gap


def verify_records(
    records: Iterable[Tuple[int, Mapping]],
    expected_head: Optional[str] = None,
    genesis: str = GENESIS,
    expected_n: Optional[int] = None,
) -> ChainVerification:
    """Walk ``(line_number, record)`` pairs and verify the full chain.

    The driver behind :func:`verify_jsonl` — also usable over parsed
    in-memory records.  Builds the verified-segment map: a segment
    closes at every binding failure or linkage gap, and a new one opens
    at the next record whose own binding verifies (anchored at its
    stored ``prev``), which is exactly how an intact suffix re-verifies
    after the corrupted stretch is repaired or excised.

    The chain is anchored at ``genesis``: a first ledgered record whose
    ``prev`` differs opens a gap, so deleting a log's leading records
    (front truncation) fails verification just like any interior
    deletion.  Pass a shard's recorded ``prev`` as ``genesis`` to
    verify that shard in isolation.  ``expected_n`` (e.g. the
    manifest's ``ledger.n``) additionally pins the ledgered record
    count.
    """
    follower = ChainFollower(genesis=genesis)
    result = ChainVerification(
        n=0,
        n_ledgered=0,
        head=None,
        expected_head=expected_head,
        expected_n=expected_n,
    )
    segment_start: Optional[int] = None
    segment_n = 0
    last_line = 0

    def close_segment(stop_line: int) -> None:
        nonlocal segment_start, segment_n
        if segment_start is not None and segment_n > 0:
            result.segments.append(
                {
                    "start_line": segment_start,
                    "stop_line": stop_line,
                    "n": segment_n,
                    "head": follower.head,
                }
            )
        segment_start = None
        segment_n = 0

    for line_number, record in records:
        result.n += 1
        last_line = line_number
        issues = follower.check(record)
        meta = follower.metadata_of(record)
        if meta is None and not issues:
            continue
        gap = follower.observe(record) if meta is not None else False
        if meta is not None:
            result.n_ledgered += 1
        binding_broken = bool(issues)
        if binding_broken:
            for reason, detail in issues:
                result.issues.append(ChainIssue(line_number, reason, detail))
            close_segment(line_number - 1)
            continue
        if gap:
            detail = (
                f"prev does not match the genesis anchor — leading "
                f"record(s) deleted? (ordinal {meta['ordinal']})"
                if follower.n_ledgered == 1
                else f"prev does not match the previous record's hash "
                f"(ordinal {meta['ordinal']})"
            )
            result.gaps.append(
                ChainIssue(line_number, "ledger-gap", detail)
            )
            close_segment(line_number - 1)
        if segment_start is None:
            segment_start = line_number
        segment_n += 1
    close_segment(last_line)
    result.head = follower.head if follower.engaged else None
    result.n_ledgered = follower.n_ledgered
    return result


def _jsonl_records(path: str) -> Iterator[Tuple[int, Mapping]]:
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            raw = line.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                # Unparseable bytes cannot carry a verifiable chain link;
                # surface them as a binding failure at this line.
                yield line_number, {"metadata": {"ledger": {}}}
                continue
            if isinstance(record, Mapping):
                yield line_number, record


def verify_jsonl(
    path: str,
    expected_head: Optional[str] = None,
    genesis: str = GENESIS,
    expected_n: Optional[int] = None,
) -> ChainVerification:
    """Verify the ledger chain of a JSONL exploration log.

    Walks the file once in O(line) memory.  ``expected_head`` (e.g.
    from the harvest manifest's ``ledger.head``) additionally proves
    the log was not truncated or extended, and ``expected_n`` (the
    manifest's ``ledger.n``) pins the ledgered record count.
    Unparseable lines count as binding failures at their line number.
    """
    return verify_records(
        _jsonl_records(path),
        expected_head=expected_head,
        genesis=genesis,
        expected_n=expected_n,
    )
