"""``python -m repro`` — orientation and offline evaluation for the CLI.

With no arguments, prints the package version, the experiment catalog,
and how to run things (the benchmarks themselves run under pytest; this
entry point just tells you where they are).

``python -m repro evaluate LOG.jsonl`` runs off-policy estimators over
a harvested JSONL exploration log from the shell::

    python -m repro evaluate exploration.jsonl \
        --policy uniform --policy constant:1 --policy eps:0:0.1 \
        --estimator ips --estimator snips \
        --backend vectorized

``--backend`` selects the evaluation engine (see
:mod:`repro.core.engine`): ``vectorized`` (default) runs through the
columnar batch path; ``scalar`` walks the log row by row.  Policies
without a batch implementation fall back to the row loop with a
one-time warning per policy type.
"""

from __future__ import annotations

import argparse
import sys

import repro
from repro.core.engine import BACKENDS, set_default_backend
from repro.core.estimators.direct import DirectMethodEstimator
from repro.core.estimators.doubly_robust import DoublyRobustEstimator
from repro.core.estimators.fallback import FallbackEstimator
from repro.core.estimators.ips import (
    ClippedIPSEstimator,
    IPSEstimator,
    SNIPSEstimator,
)
from repro.core.estimators.switch import SwitchEstimator
from repro.core.validation import MODES
from repro.core.policies import (
    ConstantPolicy,
    EpsilonGreedyPolicy,
    Policy,
    UniformRandomPolicy,
)
from repro.core.types import Dataset

EXPERIMENTS = [
    ("fig1", "benchmarks/test_fig1_ab_vs_cb.py", "A/B vs CB data needs"),
    ("fig2", "benchmarks/test_fig2_theoretical_accuracy.py", "Eq. 1 curves"),
    ("fig3", "benchmarks/test_fig3_ope_error.py", "IPS error vs N"),
    ("fig4", "benchmarks/test_fig4_cb_convergence.py", "CB vs ceiling"),
    ("table2", "benchmarks/test_table2_loadbalance.py",
     "LB offline vs online"),
    ("table3", "benchmarks/test_table3_caching.py", "eviction hit rates"),
    ("fig6", "benchmarks/test_fig6_hierarchy.py", "Front Door hierarchy"),
    ("abl-*", "benchmarks/test_ablation_*.py", "design-choice ablations"),
    ("ext-*", "benchmarks/test_ext_*.py", "extensions beyond the paper"),
]

EXAMPLES = [
    "quickstart", "machine_health", "load_balancing", "caching",
    "frontdoor_hierarchy", "chaos_exploration", "log_interop",
    "experiment_planning",
]

ESTIMATOR_NAMES = ("ips", "snips", "clipped-ips", "dm", "dr", "switch", "auto")


def print_catalog() -> None:
    print(f"repro {repro.__version__} — Harvesting Randomness to Optimize "
          f"Distributed Systems (HotNets 2017), reproduced\n")
    print("experiments (run with `pytest <file> -s` to see the rows):")
    for exp_id, path, blurb in EXPERIMENTS:
        print(f"  {exp_id:<8s} {path:<46s} {blurb}")
    print("\nexamples (run with `python examples/<name>.py`):")
    print("  " + ", ".join(EXAMPLES))
    print("\nevaluate a log offline:")
    print("  python -m repro evaluate LOG.jsonl --policy constant:1 "
          "--estimator ips")
    print("\nsuites:")
    print("  pytest tests/                      # unit/integration/property")
    print("  pytest benchmarks/ -s              # every table & figure")
    print("  pytest benchmarks/ --benchmark-only  # timing kernels")
    print("\ndocs: README.md, DESIGN.md, EXPERIMENTS.md, docs/methodology.md")


def parse_policy(spec: str) -> Policy:
    """Build a policy from a CLI spec.

    Specs: ``uniform``; ``constant:<action>``; ``eps:<action>:<epsilon>``
    (ε-greedy around a constant action).
    """
    parts = spec.split(":")
    kind = parts[0]
    try:
        if kind == "uniform" and len(parts) == 1:
            return UniformRandomPolicy()
        if kind == "constant" and len(parts) == 2:
            return ConstantPolicy(int(parts[1]))
        if kind == "eps" and len(parts) == 3:
            return EpsilonGreedyPolicy(
                ConstantPolicy(int(parts[1])), float(parts[2])
            )
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"bad policy spec {spec!r}: {error}"
        ) from error
    raise argparse.ArgumentTypeError(
        f"unknown policy spec {spec!r}; expected 'uniform', "
        "'constant:<action>', or 'eps:<action>:<epsilon>'"
    )


def make_estimator(name: str):
    if name == "ips":
        return IPSEstimator()
    if name == "snips":
        return SNIPSEstimator()
    if name == "clipped-ips":
        return ClippedIPSEstimator()
    if name == "dm":
        return DirectMethodEstimator()
    if name == "dr":
        return DoublyRobustEstimator()
    if name == "switch":
        return SwitchEstimator()
    if name == "auto":
        return FallbackEstimator()
    raise ValueError(f"unknown estimator {name!r}")


def run_evaluate(args: argparse.Namespace) -> int:
    # The flag sets the process-wide default, so everything downstream —
    # estimators, bootstrap, model fitting — follows it uniformly.
    set_default_backend(args.backend)
    try:
        dataset = Dataset.load_jsonl(args.log, mode=args.mode)
    except OSError as error:
        print(f"error: cannot read {args.log}: {error}", file=sys.stderr)
        return 1
    except ValueError as error:
        # Strict-mode validation failure: the message already names the
        # file and 1-based line number.
        print(f"error: {error}", file=sys.stderr)
        return 1
    if dataset.quarantine:
        print(dataset.quarantine.summary_text(), file=sys.stderr)
    if len(dataset) == 0:
        print(f"error: no usable interactions in {args.log}", file=sys.stderr)
        return 1
    try:
        policies = [parse_policy(spec) for spec in args.policy] or [
            UniformRandomPolicy()
        ]
    except argparse.ArgumentTypeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    estimators = [make_estimator(name) for name in args.estimator] or [
        IPSEstimator()
    ]
    print(f"log: {args.log} ({len(dataset)} interactions)  "
          f"backend: {args.backend}")
    header = f"{'policy':<28s}" + "".join(
        f"{e.name:>22s}" for e in estimators
    )
    print(header)
    print("-" * len(header))
    flagged: list[tuple[str, str, tuple[str, ...]]] = []
    for policy in policies:
        cells = []
        for estimator in estimators:
            try:
                result = estimator.estimate(policy, dataset)
            except ValueError as error:
                print(f"error: {policy.name} × {estimator.name}: {error}",
                      file=sys.stderr)
                return 1
            marker = ""
            if not result.reliable:
                marker = "!"
                flagged.append(
                    (policy.name, result.estimator,
                     result.diagnostics.reasons)
                )
            cells.append(
                f"{result.value:>12.4f} ±{result.std_error:<6.4f}{marker:<1s}"
            )
        print(f"{policy.name:<28s}" + "".join(f"{c:>22s}" for c in cells))
    for policy_name, estimator_name, reasons in flagged:
        print(
            f"UNRELIABLE: {policy_name} × {estimator_name}: "
            + ("; ".join(reasons) or "diagnostics tripped"),
            file=sys.stderr,
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Harvesting-randomness reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command")
    evaluate = subparsers.add_parser(
        "evaluate", help="off-policy evaluation of a JSONL exploration log"
    )
    evaluate.add_argument("log", help="path to a JSONL exploration log")
    evaluate.add_argument(
        "--policy",
        action="append",
        default=[],
        metavar="SPEC",
        help="candidate policy: uniform | constant:<a> | eps:<a>:<epsilon> "
        "(repeatable; default: uniform)",
    )
    evaluate.add_argument(
        "--estimator",
        action="append",
        default=[],
        choices=ESTIMATOR_NAMES,
        help="estimator to run (repeatable; default: ips)",
    )
    evaluate.add_argument(
        "--backend",
        choices=BACKENDS,
        default="vectorized",
        help="evaluation engine: columnar batch path (vectorized, default) "
        "or per-row reference loop (scalar)",
    )
    evaluate.add_argument(
        "--mode",
        choices=MODES,
        default="strict",
        help="log validation mode: strict (default) raises on the first "
        "bad record; quarantine sets bad records aside with a per-reason "
        "report; repair clamps fixable defects",
    )
    return parser


def main(argv: list[str]) -> int:
    if not argv:
        print_catalog()
        return 0
    args = build_parser().parse_args(argv)
    if args.command == "evaluate":
        return run_evaluate(args)
    print_catalog()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
