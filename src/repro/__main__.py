"""``python -m repro`` — orientation for the command line.

Prints the package version, the experiment catalog, and how to run
things.  The benchmarks themselves run under pytest (each one asserts
its paper artifact's shape); this entry point just tells you where
they are.
"""

from __future__ import annotations

import sys

import repro

EXPERIMENTS = [
    ("fig1", "benchmarks/test_fig1_ab_vs_cb.py", "A/B vs CB data needs"),
    ("fig2", "benchmarks/test_fig2_theoretical_accuracy.py", "Eq. 1 curves"),
    ("fig3", "benchmarks/test_fig3_ope_error.py", "IPS error vs N"),
    ("fig4", "benchmarks/test_fig4_cb_convergence.py", "CB vs ceiling"),
    ("table2", "benchmarks/test_table2_loadbalance.py",
     "LB offline vs online"),
    ("table3", "benchmarks/test_table3_caching.py", "eviction hit rates"),
    ("fig6", "benchmarks/test_fig6_hierarchy.py", "Front Door hierarchy"),
    ("abl-*", "benchmarks/test_ablation_*.py", "design-choice ablations"),
    ("ext-*", "benchmarks/test_ext_*.py", "extensions beyond the paper"),
]

EXAMPLES = [
    "quickstart", "machine_health", "load_balancing", "caching",
    "frontdoor_hierarchy", "chaos_exploration", "log_interop",
    "experiment_planning",
]


def main(argv: list[str]) -> int:
    print(f"repro {repro.__version__} — Harvesting Randomness to Optimize "
          f"Distributed Systems (HotNets 2017), reproduced\n")
    print("experiments (run with `pytest <file> -s` to see the rows):")
    for exp_id, path, blurb in EXPERIMENTS:
        print(f"  {exp_id:<8s} {path:<46s} {blurb}")
    print("\nexamples (run with `python examples/<name>.py`):")
    print("  " + ", ".join(EXAMPLES))
    print("\nsuites:")
    print("  pytest tests/                      # unit/integration/property")
    print("  pytest benchmarks/ -s              # every table & figure")
    print("  pytest benchmarks/ --benchmark-only  # timing kernels")
    print("\ndocs: README.md, DESIGN.md, EXPERIMENTS.md, docs/methodology.md")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
