"""Fault injection for exploration coverage (§5).

"Reliability testing in distributed systems can trigger uneven traffic
and extreme conditions that lead to broader exploration.  As an
example, we could leverage Netflix's open-source Chaos Monkey ...
Such randomized failures, and the systems' responses, would generate
valuable exploration data."

:class:`~repro.chaos.monkey.ChaosMonkey` injects latency spikes and
(effective) crashes into the load-balancer simulation; the
`abl-chaos` benchmark measures how much the injected faults broaden
the context coverage of harvested logs.
:class:`~repro.chaos.corruption.LogCorruptor` extends the chaos idea
to the *data path*: it injects truncated lines, dropped fields, and
broken propensities into JSONL exploration logs so the validation and
quarantine layer (:mod:`repro.core.validation`) can be tested end to
end against realistic damage.
"""

from repro.chaos.corruption import LogCorruptor
from repro.chaos.drift import ChainedHooks, EnvironmentDrift
from repro.chaos.monkey import ChaosMonkey, FaultSpec, InjectedFault

__all__ = [
    "ChainedHooks",
    "ChaosMonkey",
    "EnvironmentDrift",
    "FaultSpec",
    "InjectedFault",
    "LogCorruptor",
]
