"""A Chaos-Monkey-style fault injector for the simulated backends.

Faults start at random times (Poisson), target a random server, and
last a random duration.  Two kinds are modeled:

- ``latency-spike`` — the server serves at a multiple of its normal
  latency (degraded NIC, noisy neighbor, GC storm);
- ``crash`` — the server is effectively unusable (very large
  multiplier; the balancer can still route to it and will observe the
  damage — that observation *is* the exploration value).

The injector is deliberately decoupled from the event loop: the proxy
calls :meth:`ChaosMonkey.tick` before each decision, and the monkey
starts/expires faults against the current virtual time.  That keeps it
reusable by any simulator with a notion of "now" and a server list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.simsys.random_source import RandomSource


@dataclass(frozen=True)
class FaultSpec:
    """Parameters of one fault kind."""

    kind: str
    rate: float  # expected faults per unit virtual time (whole fleet)
    mean_duration: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("fault rate must be non-negative")
        if self.mean_duration <= 0:
            raise ValueError("mean duration must be positive")
        if self.multiplier <= 1.0:
            raise ValueError("a fault must slow the server (multiplier > 1)")


#: Default fault mix: occasional latency spikes, rare crashes.
DEFAULT_FAULTS = (
    FaultSpec(kind="latency-spike", rate=0.02, mean_duration=30.0, multiplier=4.0),
    FaultSpec(kind="crash", rate=0.005, mean_duration=60.0, multiplier=40.0),
)


@dataclass
class InjectedFault:
    """A live fault on one server."""

    kind: str
    server_index: int
    start: float
    end: float
    multiplier: float


class ChaosMonkey:
    """Randomly degrade servers while a simulation runs."""

    def __init__(
        self,
        faults: Sequence[FaultSpec] = DEFAULT_FAULTS,
        seed: int = 0,
    ) -> None:
        if not faults:
            raise ValueError("need at least one fault spec")
        self.faults = list(faults)
        self._randomness = RandomSource(seed, _name="chaos")
        self._schedule_rng = self._randomness.child("schedule")
        self._target_rng = self._randomness.child("targets")
        self._next_fault_time: dict[str, float] = {}
        self.active: list[InjectedFault] = []
        self.history: list[InjectedFault] = []

    def _arm(self, spec: FaultSpec, now: float) -> None:
        if spec.rate == 0:
            self._next_fault_time[spec.kind] = float("inf")
        else:
            self._next_fault_time[spec.kind] = now + self._schedule_rng.exponential(
                1.0 / spec.rate
            )

    def tick(self, now: float, servers: Sequence) -> None:
        """Advance the injector to virtual time ``now``.

        Expires finished faults, fires due ones, and applies the
        resulting multiplier (product of live faults) to each server.
        """
        if not self._next_fault_time:
            for spec in self.faults:
                self._arm(spec, now)
        # Expire.
        still_active = [fault for fault in self.active if fault.end > now]
        expired = len(still_active) != len(self.active)
        self.active = still_active
        # Fire due faults.
        fired = False
        for spec in self.faults:
            while self._next_fault_time[spec.kind] <= now:
                start = self._next_fault_time[spec.kind]
                fault = InjectedFault(
                    kind=spec.kind,
                    server_index=self._target_rng.randint(0, len(servers)),
                    start=start,
                    end=start + self._schedule_rng.exponential(spec.mean_duration),
                    multiplier=spec.multiplier,
                )
                self.active.append(fault)
                self.history.append(fault)
                self._arm(spec, start)
                fired = True
        if expired or fired:
            self._apply(servers)

    def _apply(self, servers: Sequence) -> None:
        multipliers = [1.0] * len(servers)
        for fault in self.active:
            if fault.server_index < len(servers):
                multipliers[fault.server_index] *= fault.multiplier
        for server, multiplier in zip(servers, multipliers):
            server.fault_multiplier = multiplier

    def total_fault_time(self) -> float:
        """Sum of fault durations injected so far (for reporting)."""
        return sum(fault.end - fault.start for fault in self.history)
