"""Environment drift: the A2 violation made concrete.

§5 "Violations of independence": assumption A2 (i.i.d. rewards given
context and action) "is violated, for example, when the workload or
environment changes.  Like prior work, we can address this by using
incremental learning algorithms that continuously update the policy."

:class:`EnvironmentDrift` applies a *permanent* performance change to
chosen servers at a fixed virtual time — a rollout that regresses a
backend, a hardware swap — via the same ``tick`` interface the chaos
monkey uses.  The `abl-drift` benchmark deploys a frozen CB policy and
an incrementally-updated one through the drift and compares.
"""

from __future__ import annotations

from typing import Mapping, Sequence


class EnvironmentDrift:
    """Permanently change server speeds at ``at_time``.

    ``multipliers`` maps server index → latency multiplier applied from
    ``at_time`` on (values > 1 slow the server down).  Compatible with
    the :class:`~repro.loadbalance.proxy.LoadBalancerSim` ``chaos``
    hook.
    """

    def __init__(self, at_time: float, multipliers: Mapping[int, float]) -> None:
        if at_time < 0:
            raise ValueError("drift time must be non-negative")
        if not multipliers:
            raise ValueError("drift must change at least one server")
        for index, multiplier in multipliers.items():
            if multiplier <= 0:
                raise ValueError(
                    f"multiplier for server {index} must be positive"
                )
        self.at_time = at_time
        self.multipliers = dict(multipliers)
        self.applied = False

    def tick(self, now: float, servers: Sequence) -> None:
        """Apply the drift once its time has come.

        Writes the dedicated ``drift_multiplier`` channel, so transient
        chaos faults (which own ``fault_multiplier``) cannot clobber a
        permanent drift when both hooks are chained.
        """
        if self.applied or now < self.at_time:
            return
        for index, multiplier in self.multipliers.items():
            if 0 <= index < len(servers):
                servers[index].drift_multiplier *= multiplier
        self.applied = True


class ChainedHooks:
    """Compose several ``tick``-style hooks (e.g. drift + chaos)."""

    def __init__(self, *hooks) -> None:
        if not hooks:
            raise ValueError("need at least one hook")
        self.hooks = hooks

    def tick(self, now: float, servers: Sequence) -> None:
        """Run every chained hook in order."""
        for hook in self.hooks:
            hook.tick(now, servers)
