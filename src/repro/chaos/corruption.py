"""Chaos for the *data path*: corrupt JSONL exploration logs on purpose.

The chaos monkey (:mod:`repro.chaos.monkey`) perturbs the simulated
*systems*; this module perturbs the *logs they emit*.  Real harvesting
pipelines meet truncated writes, half-flushed lines, schema drift, and
propensity bugs long before they meet clean data — the validation layer
(:mod:`repro.core.validation`) exists because of them, and
:class:`LogCorruptor` generates exactly those defects, reproducibly, so
the integration suite can prove the corrupted-log → quarantine-report →
flagged-but-finite-estimates path end to end.

Corruption kinds:

- ``truncate``       — cut the line mid-JSON (a crashed writer);
- ``drop_field``     — remove a required field (schema drift);
- ``zero_propensity`` — set ``propensity`` to 0.0 (the classic logging
  bug that silently breaks IPS);
- ``garble_propensity`` — set ``propensity`` to garbage (> 1, negative,
  or the string ``"NaN"``);
- ``duplicate``      — emit the line twice (at-least-once delivery).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

#: The supported corruption kinds, in default rotation order.
KINDS = (
    "truncate",
    "drop_field",
    "zero_propensity",
    "garble_propensity",
    "duplicate",
)

_GARBLE_VALUES = (1.7, -0.25, "NaN")


class LogCorruptor:
    """Inject a controlled rate of defects into a JSONL line stream.

    ``rate`` is the per-line corruption probability; each corrupted
    line draws one kind from ``kinds`` uniformly.  Seeded, so a test
    can assert exact per-kind counts.  Lines that fail to parse as
    JSON pass through untouched (they are already corrupt).

    ``counts`` records how many corruptions of each kind were applied
    in the most recent :meth:`corrupt_lines` / :meth:`corrupt_file`
    run; ``n_corrupted`` totals them.
    """

    def __init__(
        self,
        rate: float = 0.1,
        kinds: Sequence[str] = KINDS,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        unknown = [k for k in kinds if k not in KINDS]
        if unknown:
            raise ValueError(f"unknown corruption kind(s) {unknown}; "
                             f"expected a subset of {KINDS}")
        if not kinds:
            raise ValueError("need at least one corruption kind")
        self.rate = rate
        self.kinds = tuple(kinds)
        self.seed = seed
        self.counts: Counter = Counter()

    @property
    def n_corrupted(self) -> int:
        """Total corruptions applied in the most recent run."""
        return sum(self.counts.values())

    def corrupt_lines(self, lines: Iterable[str]) -> Iterator[str]:
        """Yield ``lines`` with defects injected at ``self.rate``."""
        rng = np.random.default_rng(self.seed)
        self.counts = Counter()
        for line in lines:
            stripped = line.rstrip("\n")
            if not stripped.strip() or rng.random() >= self.rate:
                yield stripped
                continue
            kind = self.kinds[int(rng.integers(len(self.kinds)))]
            for out in self._apply(kind, stripped, rng):
                yield out

    def corrupt_file(self, src_path: str, dst_path: str) -> Counter:
        """Corrupt ``src_path`` into ``dst_path``; return per-kind counts."""
        with open(src_path, "r", encoding="utf-8") as src:
            corrupted = list(self.corrupt_lines(src))
        with open(dst_path, "w", encoding="utf-8") as dst:
            for line in corrupted:
                dst.write(line + "\n")
        return Counter(self.counts)

    # -- the individual defects ----------------------------------------------

    def _apply(
        self, kind: str, line: str, rng: np.random.Generator
    ) -> list[str]:
        record = self._parse(line)
        if kind == "truncate":
            # Cut inside the JSON body, never at a clean boundary.
            cut = int(rng.integers(1, max(2, len(line) - 1)))
            self.counts[kind] += 1
            return [line[:cut]]
        if kind == "duplicate":
            self.counts[kind] += 1
            return [line, line]
        if record is None:
            # Field-level defects need a parseable record to mutate.
            return [line]
        if kind == "drop_field":
            present = [
                f for f in ("context", "action", "reward", "propensity")
                if f in record
            ]
            if not present:
                return [line]
            field = present[int(rng.integers(len(present)))]
            del record[field]
        elif kind == "zero_propensity":
            record["propensity"] = 0.0
        elif kind == "garble_propensity":
            record["propensity"] = _GARBLE_VALUES[
                int(rng.integers(len(_GARBLE_VALUES)))
            ]
        self.counts[kind] += 1
        return [json.dumps(record)]

    @staticmethod
    def _parse(line: str) -> Optional[dict]:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None
        return record if isinstance(record, dict) else None

    def __repr__(self) -> str:
        return (
            f"LogCorruptor(rate={self.rate}, kinds={list(self.kinds)}, "
            f"seed={self.seed})"
        )
