"""Sampling profiler that attributes self-time to the active span.

Span trees (PR 4) say *which stage* is slow; this module says *which
code inside the stage*.  :class:`SpanProfiler` arms a periodic
``SIGALRM`` via ``signal.setitimer`` and, on every tick, records the
currently executing code site under the innermost open span of the
active tracer (:meth:`Tracer.active_span_name`).  The result is a
per-span *flame table* — ``{span: {code site: samples}}`` — cheap
enough to leave on for whole runs (one dict update per tick, nothing
in the hot path itself).

Everything is stdlib: no C extensions, no third-party profilers.  On
platforms or threads where ``setitimer`` is unavailable the profiler
degrades to manual :meth:`~SpanProfiler.sample` calls (the tests use
these for determinism) and reports ``supported=False``.

**Merged like span trees.**  Worker processes run their own profiler
when the parent asks (the coordinator/bootstrap payload carries a
``profiled`` flag), ship :meth:`~SpanProfiler.to_dict` home in the
result payload, and the parent :meth:`~SpanProfiler.absorb`\\ s the
tables — one flame table per run, regardless of process count.

**Off by default.**  The process-wide default is
:data:`NULL_PROFILER`; install a real profiler per run with
:func:`use_profiler` (the CLI's ``--profile`` flag does).  Sampling
never touches any RNG stream, so harvests and evaluations are
bit-identical with the profiler on or off.
"""

from __future__ import annotations

import os
import signal
from contextlib import contextmanager
from typing import Iterator, Mapping, Optional, Union

from repro.obs.tracing import get_tracer

__all__ = [
    "SpanProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "get_profiler",
    "set_profiler",
    "use_profiler",
]

#: Default sampling period, seconds.  200 Hz is coarse enough to stay
#: invisible in wall time yet resolves batches that take milliseconds.
DEFAULT_INTERVAL = 0.005

#: Bucket for samples that land outside every span.
UNSPANNED = "<no-span>"


def _code_site(frame) -> str:
    """``file.py:function:firstlineno`` for a frame (stable across runs)."""
    code = frame.f_code
    return (
        f"{os.path.basename(code.co_filename)}:"
        f"{code.co_name}:{code.co_firstlineno}"
    )


class SpanProfiler:
    """Signal-sampling profiler keyed by the active span.

    Use :meth:`start`/:meth:`stop` (or :func:`use_profiler`, which
    does both) around the run; ``tables`` accumulates
    ``{span name: {code site: sample count}}``.
    """

    enabled = True

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = float(interval)
        self.tables: dict[str, dict[str, int]] = {}
        self.samples = 0
        self.supported = hasattr(signal, "setitimer")
        self._armed = False
        self._previous_handler = None

    # -- sampling ----------------------------------------------------------

    def sample(self, frame=None, span: Optional[str] = None) -> None:
        """Record one sample (the signal handler calls this per tick).

        ``frame``/``span`` default to the interrupted frame's site and
        the active tracer's innermost span; tests pass them explicitly
        for determinism.
        """
        if span is None:
            span = get_tracer().active_span_name() or UNSPANNED
        site = _code_site(frame) if frame is not None else "<manual>"
        table = self.tables.setdefault(span, {})
        table[site] = table.get(site, 0) + 1
        self.samples += 1

    def _handler(self, signum, frame) -> None:
        self.sample(frame)

    def start(self) -> bool:
        """Arm the sampling timer; ``False`` if sampling is unavailable.

        Only the main thread of a process may arm ``SIGALRM``; worker
        processes run tasks on their main thread, so the pool path
        profiles too.
        """
        if self._armed or not self.supported:
            return self._armed
        try:
            self._previous_handler = signal.signal(
                signal.SIGALRM, self._handler
            )
            signal.setitimer(signal.ITIMER_REAL, self.interval, self.interval)
        except ValueError:  # not the main thread
            self.supported = False
            return False
        self._armed = True
        return True

    def stop(self) -> None:
        """Disarm the timer and restore the previous SIGALRM handler."""
        if not self._armed:
            return
        signal.setitimer(signal.ITIMER_REAL, 0.0, 0.0)
        if self._previous_handler is not None:
            signal.signal(signal.SIGALRM, self._previous_handler)
            self._previous_handler = None
        self._armed = False

    # -- merge and export --------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form (shipped home by pool workers)."""
        return {
            "interval_s": self.interval,
            "samples": self.samples,
            "supported": self.supported,
            "spans": {
                span: dict(table) for span, table in self.tables.items()
            },
        }

    def absorb(self, profile: Optional[Mapping]) -> None:
        """Merge a worker profiler's :meth:`to_dict` into this one."""
        if not profile:
            return
        for span, table in profile.get("spans", {}).items():
            mine = self.tables.setdefault(span, {})
            for site, count in table.items():
                mine[site] = mine.get(site, 0) + int(count)
        self.samples += int(profile.get("samples", 0))

    def flame_table(self, top: Optional[int] = None) -> list[dict]:
        """Flat rows sorted by sample count (heaviest first).

        Each row carries ``span``, ``site``, ``samples``, and
        ``seconds`` (samples x interval — approximate self-time).
        """
        rows = [
            {
                "span": span,
                "site": site,
                "samples": count,
                "seconds": count * self.interval,
            }
            for span, table in self.tables.items()
            for site, count in table.items()
        ]
        rows.sort(key=lambda row: (-row["samples"], row["span"], row["site"]))
        return rows[:top] if top is not None else rows

    def __repr__(self) -> str:
        return (
            f"SpanProfiler(interval={self.interval}, "
            f"samples={self.samples}, spans={len(self.tables)})"
        )


class NullProfiler:
    """The default profiler: accepts every call, records nothing."""

    enabled = False
    supported = False
    samples = 0
    interval = 0.0

    def sample(self, frame=None, span: Optional[str] = None) -> None:
        """No-op (profiling is off)."""

    def start(self) -> bool:
        """Always ``False`` — nothing is armed."""
        return False

    def stop(self) -> None:
        """No-op (profiling is off)."""

    def to_dict(self) -> dict:
        """Always empty — nothing accumulates."""
        return {}

    def absorb(self, profile: Optional[Mapping]) -> None:
        """Discard ``profile`` — there is no table to merge into."""

    def flame_table(self, top: Optional[int] = None) -> list[dict]:
        """Always empty — nothing was recorded."""
        return []

    def __repr__(self) -> str:
        return "NullProfiler()"


NULL_PROFILER = NullProfiler()

_profiler: Union[SpanProfiler, NullProfiler] = NULL_PROFILER


def get_profiler() -> Union[SpanProfiler, NullProfiler]:
    """The process-wide active profiler (the no-op one by default)."""
    return _profiler


def set_profiler(
    profiler: Optional[Union[SpanProfiler, NullProfiler]],
) -> None:
    """Install a profiler process-wide; ``None`` restores the no-op."""
    global _profiler
    _profiler = profiler if profiler is not None else NULL_PROFILER


@contextmanager
def use_profiler(
    profiler: Optional[SpanProfiler] = None,
    arm: bool = True,
) -> Iterator[Union[SpanProfiler, NullProfiler]]:
    """Scope a profiler to a ``with`` block (armed unless ``arm=False``).

    A fresh :class:`SpanProfiler` is installed when ``profiler`` is
    omitted; the timer is disarmed and the previous profiler restored
    on exit.
    """
    global _profiler
    previous = _profiler
    active = profiler if profiler is not None else SpanProfiler()
    _profiler = active
    if arm:
        active.start()
    try:
        yield active
    finally:
        active.stop()
        _profiler = previous
