"""Span-based run tracing for the harvesting pipeline.

Off-policy evaluation is a pipeline — harvest, validate, fold chunks,
resample bootstrap shards, report — and when a production run is slow
or wrong the first question is *which stage*.  This module answers it
with nested spans::

    with trace.span("evaluate.chunk", index=3, rows=8192):
        fold(...)

Each :class:`Span` records wall time (``time.perf_counter``), CPU time
(``time.process_time``), arbitrary attributes, and its children; the
whole run renders as a tree.  Spans are exception-safe: a span closed
by an unwinding exception still records its duration and tags itself
with the error, so a crashed run's trace shows exactly how far it got.

Worker processes get their own :class:`Tracer`; their finished spans
serialize with :meth:`Span.to_dict` and graft onto the parent process's
tree with :meth:`Tracer.attach` — the process-pool chunk folds and
bootstrap shards use exactly this to produce one tree per run no
matter how many processes computed it.

**Zero overhead when off.**  The process-wide default tracer is
:data:`NULL_TRACER`, whose ``span()`` returns one shared no-op context
manager — no allocation, no clock reads, no stack bookkeeping.  The
instrumented code paths therefore stay hot until someone installs a
real tracer (:func:`use_tracer`, or the CLI's ``--trace`` /
``--manifest`` flags).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Mapping, Optional, Sequence, Union

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


class Span:
    """One timed pipeline stage, with attributes and child spans.

    Used as a context manager by :meth:`Tracer.span`; ``wall_s`` and
    ``cpu_s`` are populated on exit (and are ``None`` while the span is
    still open).  ``set(key=value, ...)`` adds attributes mid-span.
    """

    __slots__ = (
        "name", "attributes", "children", "wall_s", "cpu_s", "error",
        "_tracer", "_wall0", "_cpu0",
    )

    def __init__(self, name: str, tracer: Optional["Tracer"] = None,
                 **attributes) -> None:
        self.name = name
        self.attributes = dict(attributes)
        self.children: list[Span] = []
        self.wall_s: Optional[float] = None
        self.cpu_s: Optional[float] = None
        self.error: Optional[str] = None
        self._tracer = tracer
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def set(self, **attributes) -> None:
        """Attach attributes to the span while it is open (or after)."""
        self.attributes.update(attributes)

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0
        if exc is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        if self._tracer is not None:
            self._tracer._pop(self)
        return False  # never swallow the exception

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form (the manifest's span-tree node)."""
        node: dict = {
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }
        if self.attributes:
            node["attributes"] = dict(self.attributes)
        if self.error is not None:
            node["error"] = self.error
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    @classmethod
    def from_dict(cls, node: Mapping) -> "Span":
        """Rebuild a span (tree) from its :meth:`to_dict` form."""
        span = cls(str(node["name"]), **dict(node.get("attributes", {})))
        span.wall_s = node.get("wall_s")
        span.cpu_s = node.get("cpu_s")
        span.error = node.get("error")
        span.children = [
            cls.from_dict(child) for child in node.get("children", ())
        ]
        return span

    def __repr__(self) -> str:
        timing = f"{self.wall_s:.4f}s" if self.wall_s is not None else "open"
        return f"Span({self.name!r}, {timing}, children={len(self.children)})"


class Tracer:
    """Collects a tree of :class:`Span` objects for one run.

    ``span(name, **attrs)`` opens a child of the innermost open span
    (or a new root); nesting follows ``with`` blocks.  The tracer is
    process-local; cross-process spans arrive via :meth:`attach`.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attributes) -> Span:
        """Open a new span as a context manager."""
        return Span(name, tracer=self, **attributes)

    def attach(self, node: Union[Mapping, Sequence, Span]) -> None:
        """Graft a finished span (tree) under the current open span.

        Accepts a :class:`Span`, a :meth:`Span.to_dict` mapping, or a
        sequence of either — the shape worker processes ship home.
        """
        if node is None:
            return
        if isinstance(node, Span):
            spans = [node]
        elif isinstance(node, Mapping):
            spans = [Span.from_dict(node)]
        else:
            for item in node:
                self.attach(item)
            return
        parent = self._stack[-1].children if self._stack else self.roots
        parent.extend(spans)

    def span_tree(self) -> list[dict]:
        """Every finished root span as a JSON-serializable tree."""
        return [span.to_dict() for span in self.roots]

    def active_span_name(self) -> Optional[str]:
        """Name of the innermost open span, or ``None`` outside any.

        Safe to call from a signal handler: it is a single list read,
        and the sampling profiler uses it to attribute self-time.
        """
        stack = self._stack
        return stack[-1].name if stack else None

    # -- stack bookkeeping (driven by Span.__enter__/__exit__) ---------------

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (generators collected late): pop
        # back to the span if present instead of corrupting the stack.
        if span in self._stack:
            while self._stack and self._stack.pop() is not span:
                pass

    def __repr__(self) -> str:
        return f"Tracer(roots={len(self.roots)}, open={len(self._stack)})"


class _NullSpan:
    """Shared do-nothing span: the cost of tracing when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: accepts every call, records nothing."""

    enabled = False

    def span(self, name: str, **attributes) -> _NullSpan:
        """The shared no-op span (nothing is timed)."""
        return _NULL_SPAN

    def attach(self, node) -> None:
        """Discard ``node`` — there is no tree to graft onto."""
        pass

    def span_tree(self) -> list[dict]:
        """Always empty — nothing was recorded."""
        return []

    def active_span_name(self) -> Optional[str]:
        """Always ``None`` — no spans are tracked."""
        return None

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()

_tracer: Union[Tracer, NullTracer] = NULL_TRACER


def get_tracer() -> Union[Tracer, NullTracer]:
    """The process-wide active tracer (the no-op tracer by default)."""
    return _tracer


def set_tracer(tracer: Optional[Union[Tracer, NullTracer]]) -> None:
    """Install a tracer process-wide; ``None`` restores the no-op."""
    global _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(
    tracer: Optional[Tracer] = None,
) -> Iterator[Union[Tracer, NullTracer]]:
    """Scope a tracer to a ``with`` block.

    A fresh :class:`Tracer` is installed when ``tracer`` is omitted;
    the previous tracer is restored on exit.
    """
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else Tracer()
    try:
        yield _tracer
    finally:
        _tracer = previous
