"""Self-contained static HTML dashboard for a run manifest + history.

``python -m repro dashboard run_manifest.json --history
benchmarks/history -o dashboard.html`` renders one HTML file with **no
external assets** — inline CSS, inline SVG sparklines — so the file
can be archived as a CI artifact and opened anywhere, including
air-gapped machines, years later.

Sections (each skipped when its manifest section is absent):

- run header (command, environment, input digest, config),
- health verdicts (overall badge, per-monitor table, event log) from
  the :mod:`~repro.obs.monitors` snapshot,
- per-(policy x estimator) results with reliability verdicts,
- span waterfall (depth-indented bars scaled to total wall time),
- profiler flame table (:mod:`~repro.obs.profiler`),
- metric tables (counters/gauges and histogram summaries),
- cross-run bench-trend sparklines and recent-run lane from
  :mod:`~repro.obs.history` records.

Rendering is pure formatting over plain dicts: the module never
imports ``repro.core`` and works on any schema-1 manifest.
"""

from __future__ import annotations

import html
import json
from datetime import datetime, timezone
from typing import Iterable, Mapping, Optional, Sequence

__all__ = ["render_dashboard"]

_esc = html.escape

#: Badge colors per health level (WCAG-friendly on white).
_LEVEL_COLORS = {
    "OK": "#15803d",
    "WARN": "#b45309",
    "CRITICAL": "#b91c1c",
}

#: Verdict colors reuse the health palette.
_VERDICT_LEVELS = {"OK": "OK", "WARN": "WARN", "UNRELIABLE": "CRITICAL"}

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 0; color: #1f2937;
       background: #f8fafc; }
main { max-width: 1100px; margin: 0 auto; padding: 24px; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; border-bottom: 1px solid #e2e8f0;
     padding-bottom: 4px; }
table { border-collapse: collapse; width: 100%; background: #fff; }
th, td { text-align: left; padding: 4px 10px; border-bottom:
         1px solid #e2e8f0; vertical-align: top; }
th { background: #f1f5f9; font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
code, td.mono { font-family: ui-monospace, monospace; font-size: 12px; }
.meta { color: #64748b; font-size: 12px; margin-bottom: 16px; }
.badge { display: inline-block; padding: 1px 8px; border-radius: 9px;
         color: #fff; font-size: 12px; font-weight: 600; }
.bar-row { display: flex; align-items: center; gap: 8px;
           font-size: 12px; padding: 1px 0; }
.bar-label { flex: 0 0 340px; white-space: nowrap; overflow: hidden;
             text-overflow: ellipsis; font-family: ui-monospace, monospace; }
.bar-track { flex: 1; background: #e2e8f0; border-radius: 2px; height: 14px;
             position: relative; }
.bar-fill { background: #3b82f6; height: 100%; border-radius: 2px;
            min-width: 1px; }
.bar-fill.err { background: #b91c1c; }
.bar-time { flex: 0 0 150px; text-align: right; color: #475569;
            font-variant-numeric: tabular-nums; }
.spark { vertical-align: middle; }
.delta-up { color: #15803d; }
.delta-down { color: #b91c1c; }
.events { font-size: 12px; }
footer { color: #94a3b8; font-size: 11px; margin-top: 32px; }
"""


def _fmt_num(value, digits: int = 4) -> str:
    if value is None:
        return "—"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    try:
        return f"{float(value):.{digits}g}"
    except (TypeError, ValueError):
        return _esc(str(value))


def _fmt_time(unix) -> str:
    if not unix:
        return "—"
    stamp = datetime.fromtimestamp(float(unix), tz=timezone.utc)
    return stamp.strftime("%Y-%m-%d %H:%M:%S UTC")


def _badge(level: Optional[str]) -> str:
    level = level or "—"
    color = _LEVEL_COLORS.get(level, "#64748b")
    return (
        f'<span class="badge" style="background:{color}">'
        f"{_esc(level)}</span>"
    )


def _section(title: str, body: str) -> str:
    return f"<h2>{_esc(title)}</h2>\n{body}\n"


def _table(headers: Sequence[tuple], rows: Iterable[Sequence[str]]) -> str:
    """``headers`` are ``(label, css_class)`` pairs; cells are raw HTML."""
    head = "".join(
        f'<th class="{cls}">{_esc(label)}</th>' if cls else
        f"<th>{_esc(label)}</th>"
        for label, cls in headers
    )
    body = []
    for row in rows:
        cells = "".join(
            f'<td class="{cls}">{cell}</td>' if cls else f"<td>{cell}</td>"
            for cell, (_, cls) in zip(row, headers)
        )
        body.append(f"<tr>{cells}</tr>")
    if not body:
        return "<p class='meta'>none</p>"
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body)}</tbody></table>"
    )


# -- header ----------------------------------------------------------------


def _header(manifest: Mapping, title: Optional[str]) -> str:
    command = manifest.get("command", "run")
    env = manifest.get("environment", {})
    bits = [
        f"created {_esc(_fmt_time(manifest.get('created_unix')))}",
        f"repro {_esc(str(env.get('repro_version', '?')))}",
        f"python {_esc(str(env.get('python', '?')))}",
    ]
    input_section = manifest.get("input")
    if input_section:
        digest = str(input_section.get("sha256", ""))[:16]
        bits.append(
            f"input <code>{_esc(str(input_section.get('path', '?')))}</code>"
            + (f" (sha256 {_esc(digest)}…)" if digest else "")
        )
    config = manifest.get("config") or {}
    config_line = ""
    if config:
        pairs = ", ".join(
            f"{_esc(str(k))}={_esc(str(v))}" for k, v in sorted(config.items())
        )
        config_line = f"<div class='meta'>config: {pairs}</div>"
    return (
        f"<h1>{_esc(title or f'repro run — {command}')}</h1>"
        f"<div class='meta'>{' · '.join(bits)}</div>{config_line}"
    )


# -- health ----------------------------------------------------------------


def _health_section(manifest: Mapping) -> str:
    health = manifest.get("health")
    if not health:
        return ""
    rows = []
    for name, entry in sorted(health.get("monitors", {}).items()):
        rows.append(
            (
                f"<code>{_esc(name)}</code>",
                _badge(entry.get("level")),
                _fmt_num(entry.get("value")),
                _fmt_num(entry.get("threshold")),
                _esc(str(entry.get("message", ""))),
            )
        )
    body = (
        f"<p>overall: {_badge(health.get('overall'))} "
        f"<span class='meta'>({_fmt_num(health.get('rows'))} rows "
        f"observed)</span></p>"
    )
    body += _table(
        [("monitor", ""), ("level", ""), ("value", "num"),
         ("threshold", "num"), ("message", "")],
        rows,
    )
    events = health.get("events") or []
    if events:
        items = "".join(
            f"<li>{_badge(e.get('level'))} <code>{_esc(str(e.get('monitor')))}"
            f"</code> at row {_fmt_num(e.get('rows'))}: "
            f"{_esc(str(e.get('message', '')))}</li>"
            for e in events
        )
        body += f"<ul class='events'>{items}</ul>"
    return _section("Health", body)


# -- results ---------------------------------------------------------------


def _results_section(manifest: Mapping) -> str:
    results = manifest.get("results") or []
    if not results:
        return ""
    rows = []
    for entry in results:
        verdict = entry.get("verdict")
        level = _VERDICT_LEVELS.get(verdict or "", None)
        rows.append(
            (
                _esc(str(entry.get("policy", "?"))),
                _esc(str(entry.get("estimator", "?"))),
                _fmt_num(entry.get("value"), 6),
                _fmt_num(entry.get("std_error")),
                _fmt_num(entry.get("n")),
                _fmt_num(entry.get("effective_n")),
                _badge(level) if level else "—",
            )
        )
    return _section(
        "Results",
        _table(
            [("policy", ""), ("estimator", ""), ("value", "num"),
             ("std err", "num"), ("n", "num"), ("effective n", "num"),
             ("verdict", "")],
            rows,
        ),
    )


# -- span waterfall --------------------------------------------------------


def _span_rows(span: Mapping, depth: int, total: float, out: list) -> None:
    wall = span.get("wall_s") or 0.0
    cpu = span.get("cpu_s")
    width = 100.0 * wall / total if total > 0 else 0.0
    error = span.get("error")
    label = _esc(str(span.get("name", "?")))
    if error:
        label += f" ⚠ {_esc(str(error))}"
    time_text = f"{wall:.4f}s"
    if cpu is not None:
        time_text += f" / {cpu:.4f}s cpu"
    out.append(
        "<div class='bar-row'>"
        f"<div class='bar-label' style='padding-left:{depth * 14}px'>"
        f"{label}</div>"
        "<div class='bar-track'>"
        f"<div class='bar-fill{' err' if error else ''}' "
        f"style='width:{max(width, 0.4):.2f}%'></div></div>"
        f"<div class='bar-time'>{time_text}</div>"
        "</div>"
    )
    for child in span.get("children", ()):
        _span_rows(child, depth + 1, total, out)


def _spans_section(manifest: Mapping, max_rows: int = 400) -> str:
    spans = manifest.get("spans") or []
    if not spans:
        return ""
    total = sum(s.get("wall_s") or 0.0 for s in spans)
    rows: list = []
    for span in spans:
        _span_rows(span, 0, total, rows)
    clipped = ""
    if len(rows) > max_rows:
        clipped = (
            f"<p class='meta'>…{len(rows) - max_rows} more spans "
            f"omitted</p>"
        )
        rows = rows[:max_rows]
    return _section(
        f"Span waterfall ({total:.3f}s total)", "".join(rows) + clipped
    )


# -- profiler --------------------------------------------------------------


def _profile_section(manifest: Mapping, top: int = 20) -> str:
    profile = manifest.get("profile")
    if not profile or not profile.get("spans"):
        return ""
    interval = float(profile.get("interval_s") or 0.0)
    flat = [
        (span, site, int(count))
        for span, table in profile["spans"].items()
        for site, count in table.items()
    ]
    flat.sort(key=lambda row: (-row[2], row[0], row[1]))
    total = sum(count for _, _, count in flat) or 1
    rows = [
        (
            f"<code>{_esc(span)}</code>",
            f"<code>{_esc(site)}</code>",
            _fmt_num(count),
            f"{100.0 * count / total:.1f}%",
            _fmt_num(count * interval) if interval else "—",
        )
        for span, site, count in flat[:top]
    ]
    body = (
        f"<p class='meta'>{_fmt_num(profile.get('samples'))} samples at "
        f"{interval * 1000:.1f} ms — top {min(top, len(flat))} of "
        f"{len(flat)} sites</p>"
    )
    body += _table(
        [("span", ""), ("code site", ""), ("samples", "num"),
         ("share", "num"), ("≈ self-time s", "num")],
        rows,
    )
    return _section("Profiler flame table", body)


# -- metrics ---------------------------------------------------------------


def _labels_text(labels: Mapping) -> str:
    if not labels:
        return ""
    return ", ".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _metrics_section(manifest: Mapping) -> str:
    metrics = manifest.get("metrics") or {}
    if not metrics:
        return ""
    scalar_rows = []
    histogram_rows = []
    for name in sorted(metrics):
        entry = metrics[name]
        kind = entry.get("kind")
        for series in entry.get("series", ()):
            labels = _esc(_labels_text(series.get("labels", {})))
            if kind == "histogram":
                hist = series.get("histogram", {})
                histogram_rows.append(
                    (
                        f"<code>{_esc(name)}</code>", labels,
                        _fmt_num(hist.get("count")),
                        _fmt_num(hist.get("sum")),
                        _fmt_num(hist.get("min")),
                        _fmt_num(hist.get("max")),
                    )
                )
            else:
                scalar_rows.append(
                    (
                        f"<code>{_esc(name)}</code>",
                        _esc(str(kind)),
                        labels,
                        _fmt_num(series.get("value")),
                    )
                )
    body = ""
    if scalar_rows:
        body += _table(
            [("metric", ""), ("kind", ""), ("labels", ""), ("value", "num")],
            scalar_rows,
        )
    if histogram_rows:
        body += _table(
            [("histogram", ""), ("labels", ""), ("count", "num"),
             ("sum", "num"), ("min", "num"), ("max", "num")],
            histogram_rows,
        )
    return _section("Metrics", body) if body else ""


# -- history ---------------------------------------------------------------


def _sparkline(values: Sequence[float], width: int = 140,
               height: int = 28) -> str:
    if len(values) < 2:
        return ""
    low, high = min(values), max(values)
    spread = (high - low) or 1.0
    pad = 2.0
    step = (width - 2 * pad) / (len(values) - 1)
    points = " ".join(
        f"{pad + i * step:.1f},"
        f"{height - pad - (v - low) / spread * (height - 2 * pad):.1f}"
        for i, v in enumerate(values)
    )
    last_x = pad + (len(values) - 1) * step
    last_y = height - pad - (values[-1] - low) / spread * (height - 2 * pad)
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="trend of {len(values)} runs">'
        f'<polyline points="{points}" fill="none" stroke="#3b82f6" '
        f'stroke-width="1.5"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2" '
        f'fill="#1d4ed8"/></svg>'
    )


#: Substrings marking bench metrics worth a trend lane by default.
_TREND_HINTS = ("relative_throughput", "speedup", "rows_per_s", "overhead")


def _trend_metrics(records: Sequence[Mapping]) -> list[str]:
    counts: dict[str, int] = {}
    for record in records:
        for metric in record.get("metrics", {}):
            counts[metric] = counts.get(metric, 0) + 1
    repeated = [m for m, n in counts.items() if n >= 2]
    preferred = [
        m for m in repeated if any(hint in m for hint in _TREND_HINTS)
    ]
    chosen = preferred or repeated
    return sorted(chosen)[:12]


def _history_section(history: Sequence[Mapping]) -> str:
    if not history:
        return ""
    bench = [r for r in history if r.get("kind") == "bench"]
    manifests = [r for r in history if r.get("kind") == "manifest"]
    body = ""
    if bench:
        # Trend lanes only make sense within one cpu_count (ROADMAP:
        # single-core ratios are not comparable to multi-core ones).
        latest_cpu = bench[-1].get("cpu_count")
        lane = [b for b in bench if b.get("cpu_count") == latest_cpu]
        rows = []
        for metric in _trend_metrics(lane):
            values = [
                r["metrics"][metric] for r in lane
                if metric in r.get("metrics", {})
            ]
            if len(values) < 2:
                continue
            delta = values[-1] - values[0]
            cls = "delta-up" if delta >= 0 else "delta-down"
            rows.append(
                (
                    f"<code>{_esc(metric)}</code>",
                    _sparkline(values),
                    _fmt_num(values[-1]),
                    f"<span class='{cls}'>{delta:+.3g}</span>",
                    _fmt_num(len(values)),
                )
            )
        if rows:
            body += (
                f"<p class='meta'>bench trends at cpu_count="
                f"{_fmt_num(latest_cpu)}</p>"
            )
            body += _table(
                [("metric", ""), ("trend", ""), ("latest", "num"),
                 ("Δ first→last", "num"), ("runs", "num")],
                rows,
            )
    if manifests:
        rows = [
            (
                _esc(_fmt_time(r.get("timestamp"))),
                f"<code>{_esc(str(r.get('git_sha', '?'))[:12])}</code>",
                _esc(str(r.get("command", "?"))),
                _badge(r.get("health", {}).get("overall")),
                _fmt_num(r.get("wall_s")),
            )
            for r in manifests[-10:]
        ]
        body += _table(
            [("when", ""), ("git", ""), ("command", ""), ("health", ""),
             ("wall s", "num")],
            rows,
        )
    return _section("Cross-run history", body) if body else ""


# -- quarantine / ledger ---------------------------------------------------


def _provenance_section(manifest: Mapping) -> str:
    bits = []
    quarantine = manifest.get("quarantine")
    if quarantine:
        bits.append(
            "<p>quarantine: "
            f"<code>{_esc(json.dumps(quarantine, sort_keys=True))}</code></p>"
        )
    ledger = manifest.get("ledger")
    if ledger:
        head = str(ledger.get("head", ""))
        bits.append(
            f"<p>ledger head <code>{_esc(head[:24])}…</code> over "
            f"{_fmt_num(ledger.get('rows'))} rows</p>"
        )
    if not bits:
        return ""
    return _section("Provenance", "".join(bits))


# -- entry point -----------------------------------------------------------


def render_dashboard(
    manifest: Mapping,
    history: Optional[Sequence[Mapping]] = None,
    title: Optional[str] = None,
) -> str:
    """Render one manifest (plus optional history records) to HTML.

    ``manifest`` is a loaded ``run_manifest.json`` dict; ``history``
    is a list of :class:`~repro.obs.history.RunHistory` records.  The
    returned document is fully self-contained (no external assets).
    """
    sections = [
        _header(manifest, title),
        _health_section(manifest),
        _results_section(manifest),
        _spans_section(manifest),
        _profile_section(manifest),
        _metrics_section(manifest),
        _history_section(history or []),
        _provenance_section(manifest),
    ]
    body = "\n".join(s for s in sections if s)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">\n'
        f"<title>{_esc(title or 'repro dashboard')}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n<main>\n"
        f"{body}\n"
        "<footer>rendered by repro.obs.dashboard — self-contained, "
        "no external assets</footer>\n"
        "</main>\n</body>\n</html>\n"
    )
