"""Streaming health monitors over the live harvest/evaluation stream.

PR 4 gave every run a post-hoc report; this module is the watchtower
that reads the stream *while it flows*.  A :class:`MonitorSuite` holds
a set of :class:`HealthMonitor` instances — windowed Kish ESS,
propensity floor, weight tails, quarantine rate, ledger-break rate,
shard retry storms — each folding cheap aggregates per batch and
emitting a :class:`HealthEvent` whenever its OK/WARN/CRITICAL level
changes.  Events land in the active metrics registry
(``health.events`` counter, ``health.level`` gauge) and the suite's
:meth:`~MonitorSuite.snapshot` becomes the manifest's ``health``
section.

**Merge like estimators.**  Monitor state is a plain JSON-able dict
with the same ``init/fold/merge`` contract as the PR 3 estimator
reductions: pool workers run their own suite, ship
:meth:`~MonitorSuite.states` home in the result payload, and the
coordinator :meth:`~MonitorSuite.absorb`\\ s them — so sharded harvests
get the same verdicts as serial ones.  (Window boundaries in the ESS
monitor follow batch/shard edges, so the *worst-window* statistic can
differ slightly between worker counts; levels use the same
thresholds either way.)

**Zero overhead when off.**  The process-wide default is
:data:`NULL_MONITORS`; install a real suite per run with
:func:`use_monitors` (the CLI's ``--monitors`` flag does).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Optional, Union

import numpy as np

from repro.obs.metrics import get_metrics

__all__ = [
    "LEVEL_OK",
    "LEVEL_WARN",
    "LEVEL_CRITICAL",
    "HealthEvent",
    "HealthMonitor",
    "EssMonitor",
    "PropensityFloorMonitor",
    "WeightTailMonitor",
    "QuarantineRateMonitor",
    "LedgerBreakMonitor",
    "RetryStormMonitor",
    "ServeLatencyMonitor",
    "ServeErrorMonitor",
    "MonitorSuite",
    "NullMonitors",
    "NULL_MONITORS",
    "default_monitors",
    "serving_monitors",
    "get_monitors",
    "set_monitors",
    "use_monitors",
]

LEVEL_OK = "OK"
LEVEL_WARN = "WARN"
LEVEL_CRITICAL = "CRITICAL"

#: Severity order — transitions are reported in either direction, but
#: the manifest's overall verdict is the worst level any monitor holds.
LEVEL_RANK = {LEVEL_OK: 0, LEVEL_WARN: 1, LEVEL_CRITICAL: 2}


class HealthEvent:
    """One monitor level transition, timestamped by stream position."""

    __slots__ = ("monitor", "level", "value", "threshold", "message", "rows")

    def __init__(
        self,
        monitor: str,
        level: str,
        value: Optional[float],
        threshold: Optional[float],
        message: str,
        rows: int,
    ) -> None:
        self.monitor = monitor
        self.level = level
        self.value = value
        self.threshold = threshold
        self.message = message
        self.rows = rows

    def to_dict(self) -> dict:
        """JSON-serializable form (embedded in the run manifest)."""
        return {
            "monitor": self.monitor,
            "level": self.level,
            "value": self.value,
            "threshold": self.threshold,
            "message": self.message,
            "rows": self.rows,
        }

    def __repr__(self) -> str:
        return (
            f"HealthEvent({self.monitor}: {self.level} "
            f"value={self.value} at rows={self.rows})"
        )


def _finite(value) -> Optional[float]:
    value = float(value)
    return value if np.isfinite(value) else None


class HealthMonitor:
    """Base monitor: a named reduction with thresholded evaluation.

    Subclasses override :meth:`init_state`, :meth:`merge`,
    :meth:`evaluate`, and whichever ``fold_*`` hooks they consume.
    Fold hooks mutate ``state`` in place and return ``True`` when the
    state changed (the suite only re-evaluates changed monitors).
    State must stay a plain dict of JSON-able scalars so it can ship
    across the worker pool and into the manifest.
    """

    name = "monitor"

    def init_state(self) -> dict:
        """A fresh (empty-stream) state dict."""
        return {}

    def merge(self, state: dict, other: dict) -> dict:
        """Combine two states (commutative; used for worker absorb)."""
        raise NotImplementedError

    def evaluate(self, state: dict) -> tuple:
        """``(level, value, threshold, message)`` for the current state."""
        raise NotImplementedError

    # -- fold hooks (no-ops unless a subclass consumes the feed) -----------

    def fold_propensities(self, state: dict, probs: np.ndarray) -> bool:
        """Fold one batch of logged propensities."""
        return False

    def fold_weights(self, state: dict, weights: np.ndarray) -> bool:
        """Fold one batch of importance weights."""
        return False

    def fold_weight_stats(
        self, state: dict, n: int, total: float, total_sq: float,
        maximum: float,
    ) -> bool:
        """Fold pre-aggregated weight moments (evaluation side)."""
        return False

    def fold_rejected(self, state: dict, reason: str, count: int) -> bool:
        """Fold quarantined-row counts by reason."""
        return False

    def fold_rows(self, state: dict, count: int) -> bool:
        """Fold accepted/generated row counts (rate denominators)."""
        return False

    def fold_shards(
        self, state: dict, completed: int, retried: int, fallback: int
    ) -> bool:
        """Fold shard completion/retry/fallback counts."""
        return False

    def fold_serve(
        self, state: dict, served: int, errors: int, dropped: int,
        latency_sum: float, latency_max: float,
    ) -> bool:
        """Fold one serving observation (decide-call aggregates)."""
        return False


class EssMonitor(HealthMonitor):
    """Windowed Kish effective sample size over the weight stream.

    Keeps running ``(n, Σw, Σw²)`` for the current window; every
    ``window`` observations the window flushes into a worst-window
    minimum of the ESS *fraction* ``(Σw)²/(Σw²·n)``.  Thresholds reuse
    the diagnostics verdict cutoffs, so a stream the post-hoc report
    would call UNRELIABLE goes CRITICAL while it is still flowing.
    """

    name = "ess"

    def __init__(
        self,
        window: int = 4096,
        warn: float = 0.05,
        critical: float = 0.005,
        min_partial: int = 32,
    ) -> None:
        self.window = int(window)
        self.warn = float(warn)
        self.critical = float(critical)
        self.min_partial = int(min_partial)

    def init_state(self) -> dict:
        return {"n": 0, "sum": 0.0, "sumsq": 0.0, "worst": None, "windows": 0}

    def _flush(self, state: dict) -> None:
        while state["n"] >= self.window:
            frac = _ess_fraction(state["n"], state["sum"], state["sumsq"])
            if frac is not None:
                worst = state["worst"]
                state["worst"] = frac if worst is None else min(worst, frac)
            state["windows"] += 1
            state["n"] = 0
            state["sum"] = 0.0
            state["sumsq"] = 0.0

    def fold_weights(self, state: dict, weights: np.ndarray) -> bool:
        if weights.size == 0:
            return False
        state["n"] += int(weights.size)
        state["sum"] += float(weights.sum())
        state["sumsq"] += float(np.square(weights).sum())
        self._flush(state)
        return True

    def fold_weight_stats(
        self, state: dict, n: int, total: float, total_sq: float,
        maximum: float,
    ) -> bool:
        if n <= 0:
            return False
        # Pre-aggregated moments arrive as one closed window.
        frac = _ess_fraction(n, total, total_sq)
        if frac is not None:
            worst = state["worst"]
            state["worst"] = frac if worst is None else min(worst, frac)
            state["windows"] += 1
        return frac is not None

    def merge(self, state: dict, other: dict) -> dict:
        worsts = [w for w in (state["worst"], other["worst"]) if w is not None]
        merged = {
            "n": state["n"] + other["n"],
            "sum": state["sum"] + other["sum"],
            "sumsq": state["sumsq"] + other["sumsq"],
            "worst": min(worsts) if worsts else None,
            "windows": state["windows"] + other["windows"],
        }
        self._flush(merged)
        return merged

    def evaluate(self, state: dict) -> tuple:
        candidates = []
        if state["worst"] is not None:
            candidates.append(state["worst"])
        if state["n"] >= self.min_partial:
            frac = _ess_fraction(state["n"], state["sum"], state["sumsq"])
            if frac is not None:
                candidates.append(frac)
        if not candidates:
            return LEVEL_OK, None, self.warn, "no weight windows yet"
        value = min(candidates)
        if value < self.critical:
            return (
                LEVEL_CRITICAL, value, self.critical,
                f"worst-window ESS fraction {value:.4g} < {self.critical:g}",
            )
        if value < self.warn:
            return (
                LEVEL_WARN, value, self.warn,
                f"worst-window ESS fraction {value:.4g} < {self.warn:g}",
            )
        return (
            LEVEL_OK, value, self.warn,
            f"worst-window ESS fraction {value:.4g}",
        )


def _ess_fraction(n: int, total: float, total_sq: float) -> Optional[float]:
    if n <= 0 or total_sq <= 0.0:
        return None
    return (total * total) / (total_sq * n)


class PropensityFloorMonitor(HealthMonitor):
    """Tracks the smallest logged propensity seen so far.

    Sub-floor propensities blow up importance weights (the diagnostics
    layer warns below ``1e-4``); non-positive ones make the log
    unusable for OPE, so they go straight to CRITICAL.
    """

    name = "propensity_floor"

    def __init__(
        self, warn_floor: float = 1e-4, critical_floor: float = 1e-6
    ) -> None:
        self.warn_floor = float(warn_floor)
        self.critical_floor = float(critical_floor)

    def init_state(self) -> dict:
        return {"min": None, "below_warn": 0, "below_critical": 0, "n": 0}

    def fold_propensities(self, state: dict, probs: np.ndarray) -> bool:
        if probs.size == 0:
            return False
        low = float(probs.min())
        state["min"] = low if state["min"] is None else min(state["min"], low)
        state["below_warn"] += int(np.count_nonzero(probs < self.warn_floor))
        state["below_critical"] += int(
            np.count_nonzero(probs <= self.critical_floor)
        )
        state["n"] += int(probs.size)
        return True

    def merge(self, state: dict, other: dict) -> dict:
        mins = [m for m in (state["min"], other["min"]) if m is not None]
        return {
            "min": min(mins) if mins else None,
            "below_warn": state["below_warn"] + other["below_warn"],
            "below_critical": state["below_critical"]
            + other["below_critical"],
            "n": state["n"] + other["n"],
        }

    def evaluate(self, state: dict) -> tuple:
        low = state["min"]
        if low is None:
            return LEVEL_OK, None, self.warn_floor, "no propensities yet"
        if state["below_critical"]:
            return (
                LEVEL_CRITICAL, low, self.critical_floor,
                f"{state['below_critical']} propensities <= "
                f"{self.critical_floor:g} (min {low:.4g})",
            )
        if state["below_warn"]:
            return (
                LEVEL_WARN, low, self.warn_floor,
                f"{state['below_warn']} propensities < "
                f"{self.warn_floor:g} (min {low:.4g})",
            )
        return LEVEL_OK, low, self.warn_floor, f"min propensity {low:.4g}"


class WeightTailMonitor(HealthMonitor):
    """Tracks the heaviest importance weight and the tail count."""

    name = "weight_tail"

    def __init__(
        self, warn_max: float = 100.0, critical_max: float = 1e4
    ) -> None:
        self.warn_max = float(warn_max)
        self.critical_max = float(critical_max)

    def init_state(self) -> dict:
        return {"max": None, "tail": 0, "n": 0}

    def fold_weights(self, state: dict, weights: np.ndarray) -> bool:
        if weights.size == 0:
            return False
        high = float(weights.max())
        state["max"] = (
            high if state["max"] is None else max(state["max"], high)
        )
        state["tail"] += int(np.count_nonzero(weights > self.warn_max))
        state["n"] += int(weights.size)
        return True

    def fold_weight_stats(
        self, state: dict, n: int, total: float, total_sq: float,
        maximum: float,
    ) -> bool:
        if n <= 0:
            return False
        state["max"] = (
            maximum if state["max"] is None else max(state["max"], maximum)
        )
        if maximum > self.warn_max:
            state["tail"] += 1
        state["n"] += int(n)
        return True

    def merge(self, state: dict, other: dict) -> dict:
        highs = [m for m in (state["max"], other["max"]) if m is not None]
        return {
            "max": max(highs) if highs else None,
            "tail": state["tail"] + other["tail"],
            "n": state["n"] + other["n"],
        }

    def evaluate(self, state: dict) -> tuple:
        high = state["max"]
        if high is None:
            return LEVEL_OK, None, self.warn_max, "no weights yet"
        if high > self.critical_max:
            return (
                LEVEL_CRITICAL, high, self.critical_max,
                f"max weight {high:.4g} > {self.critical_max:g}",
            )
        if high > self.warn_max:
            return (
                LEVEL_WARN, high, self.warn_max,
                f"max weight {high:.4g} > {self.warn_max:g} "
                f"({state['tail']} in tail)",
            )
        return LEVEL_OK, high, self.warn_max, f"max weight {high:.4g}"


class QuarantineRateMonitor(HealthMonitor):
    """Fraction of stream rows the validation layer quarantined."""

    name = "quarantine_rate"

    def __init__(
        self,
        warn: float = 0.01,
        critical: float = 0.05,
        min_rows: int = 10,
    ) -> None:
        self.warn = float(warn)
        self.critical = float(critical)
        self.min_rows = int(min_rows)

    def init_state(self) -> dict:
        return {"rejected": 0, "rows": 0}

    def fold_rejected(self, state: dict, reason: str, count: int) -> bool:
        state["rejected"] += int(count)
        return True

    def fold_rows(self, state: dict, count: int) -> bool:
        state["rows"] += int(count)
        return True

    def merge(self, state: dict, other: dict) -> dict:
        return {
            "rejected": state["rejected"] + other["rejected"],
            "rows": state["rows"] + other["rows"],
        }

    def _rate(self, state: dict) -> Optional[float]:
        total = state["rejected"] + state["rows"]
        if total < self.min_rows:
            return None
        return state["rejected"] / total

    def evaluate(self, state: dict) -> tuple:
        rate = self._rate(state)
        if rate is None:
            return LEVEL_OK, None, self.warn, "too few rows to judge"
        if rate >= self.critical:
            return (
                LEVEL_CRITICAL, rate, self.critical,
                f"quarantine rate {rate:.2%} >= {self.critical:.0%} "
                f"({state['rejected']} rows)",
            )
        if rate >= self.warn:
            return (
                LEVEL_WARN, rate, self.warn,
                f"quarantine rate {rate:.2%} >= {self.warn:.0%} "
                f"({state['rejected']} rows)",
            )
        return LEVEL_OK, rate, self.warn, f"quarantine rate {rate:.2%}"


class LedgerBreakMonitor(HealthMonitor):
    """Hash-chain breaks found by ledger verification during validation.

    Any break means tampering or truncation somewhere in the log, so a
    single one is already WARN; a break *rate* above
    ``critical_rate`` means the damage is systematic (e.g. a truncated
    ledger quarantining everything after the cut) and goes CRITICAL.
    """

    name = "ledger_breaks"

    def __init__(self, critical_rate: float = 0.005) -> None:
        self.critical_rate = float(critical_rate)

    def init_state(self) -> dict:
        return {"breaks": 0, "rows": 0}

    def fold_rejected(self, state: dict, reason: str, count: int) -> bool:
        if reason != "ledger":
            return False
        state["breaks"] += int(count)
        return True

    def fold_rows(self, state: dict, count: int) -> bool:
        state["rows"] += int(count)
        return True

    def merge(self, state: dict, other: dict) -> dict:
        return {
            "breaks": state["breaks"] + other["breaks"],
            "rows": state["rows"] + other["rows"],
        }

    def evaluate(self, state: dict) -> tuple:
        breaks = state["breaks"]
        if not breaks:
            return LEVEL_OK, 0.0, self.critical_rate, "chain intact"
        total = breaks + state["rows"]
        rate = breaks / total if total else 1.0
        if rate >= self.critical_rate:
            return (
                LEVEL_CRITICAL, rate, self.critical_rate,
                f"{breaks} ledger-broken rows ({rate:.2%} of stream)",
            )
        return (
            LEVEL_WARN, rate, self.critical_rate,
            f"{breaks} ledger-broken rows ({rate:.2%} of stream)",
        )


class RetryStormMonitor(HealthMonitor):
    """Shard retries from the harvest coordinator (PR 8).

    Occasional retries are the design working; a retry *storm*
    (retries rivalling completions) or a pool falling back to serial
    re-derivation means workers are dying faster than shards finish.
    """

    name = "retry_storm"

    def __init__(
        self,
        warn_ratio: float = 0.25,
        critical_ratio: float = 1.0,
        min_retries: int = 2,
    ) -> None:
        self.warn_ratio = float(warn_ratio)
        self.critical_ratio = float(critical_ratio)
        self.min_retries = int(min_retries)

    def init_state(self) -> dict:
        return {"completed": 0, "retried": 0, "fallback": 0}

    def fold_shards(
        self, state: dict, completed: int, retried: int, fallback: int
    ) -> bool:
        state["completed"] += int(completed)
        state["retried"] += int(retried)
        state["fallback"] += int(fallback)
        return bool(completed or retried or fallback)

    def merge(self, state: dict, other: dict) -> dict:
        return {
            "completed": state["completed"] + other["completed"],
            "retried": state["retried"] + other["retried"],
            "fallback": state["fallback"] + other["fallback"],
        }

    def evaluate(self, state: dict) -> tuple:
        retried = state["retried"]
        ratio = retried / max(state["completed"], 1)
        if state["fallback"]:
            return (
                LEVEL_CRITICAL, ratio, self.critical_ratio,
                f"{state['fallback']} shards fell back to local "
                f"re-derivation ({retried} retries)",
            )
        if retried >= self.min_retries and ratio >= self.critical_ratio:
            return (
                LEVEL_CRITICAL, ratio, self.critical_ratio,
                f"retry ratio {ratio:.2f} >= {self.critical_ratio:g} "
                f"({retried} retries / {state['completed']} completions)",
            )
        if retried >= self.min_retries and ratio >= self.warn_ratio:
            return (
                LEVEL_WARN, ratio, self.warn_ratio,
                f"retry ratio {ratio:.2f} >= {self.warn_ratio:g} "
                f"({retried} retries / {state['completed']} completions)",
            )
        return (
            LEVEL_OK, ratio, self.warn_ratio,
            f"{retried} retries / {state['completed']} completions",
        )


class ServeLatencyMonitor(HealthMonitor):
    """Decide-call latency for the online policy server.

    Folds per-call ``(sum, max)`` aggregates from the serving hot path
    (:meth:`repro.serve.service.DecisionService.decide`) and alarms on
    the mean per-decision latency — the quantity the ≥50k decisions/sec
    throughput target bounds (20 µs/decision).  Thresholds default far
    above that so only a genuinely degraded server (GC storms, swap
    thrash, runaway policy) trips it.
    """

    name = "serve.latency"

    def __init__(
        self, warn_seconds: float = 1e-3, critical_seconds: float = 1e-2
    ) -> None:
        self.warn_seconds = float(warn_seconds)
        self.critical_seconds = float(critical_seconds)

    def init_state(self) -> dict:
        return {"served": 0, "latency_sum": 0.0, "latency_max": 0.0}

    def fold_serve(
        self, state: dict, served: int, errors: int, dropped: int,
        latency_sum: float, latency_max: float,
    ) -> bool:
        if served <= 0:
            return False
        state["served"] += int(served)
        state["latency_sum"] += float(latency_sum)
        state["latency_max"] = max(state["latency_max"], float(latency_max))
        return True

    def merge(self, state: dict, other: dict) -> dict:
        return {
            "served": state["served"] + other["served"],
            "latency_sum": state["latency_sum"] + other["latency_sum"],
            "latency_max": max(state["latency_max"], other["latency_max"]),
        }

    def evaluate(self, state: dict) -> tuple:
        if state["served"] <= 0:
            return LEVEL_OK, None, self.warn_seconds, "no decisions served"
        mean = state["latency_sum"] / state["served"]
        detail = (
            f"mean {mean * 1e6:.1f} µs/decision over {state['served']} "
            f"(max call {state['latency_max'] * 1e3:.2f} ms)"
        )
        if mean >= self.critical_seconds:
            return LEVEL_CRITICAL, mean, self.critical_seconds, detail
        if mean >= self.warn_seconds:
            return LEVEL_WARN, mean, self.warn_seconds, detail
        return LEVEL_OK, mean, self.warn_seconds, detail


class ServeErrorMonitor(HealthMonitor):
    """Errors and dropped requests at the serving boundary.

    A single *dropped* request — an ask that got no decision slice —
    is CRITICAL outright: the batcher's zero-drop guarantee is a
    correctness invariant, not a service level.  Errors (malformed
    requests, failed ops) alarm on their ratio to decisions served.
    """

    name = "serve.errors"

    def __init__(
        self, warn_ratio: float = 0.01, critical_ratio: float = 0.1
    ) -> None:
        self.warn_ratio = float(warn_ratio)
        self.critical_ratio = float(critical_ratio)

    def init_state(self) -> dict:
        return {"served": 0, "errors": 0, "dropped": 0}

    def fold_serve(
        self, state: dict, served: int, errors: int, dropped: int,
        latency_sum: float, latency_max: float,
    ) -> bool:
        state["served"] += int(served)
        state["errors"] += int(errors)
        state["dropped"] += int(dropped)
        return bool(served or errors or dropped)

    def merge(self, state: dict, other: dict) -> dict:
        return {
            "served": state["served"] + other["served"],
            "errors": state["errors"] + other["errors"],
            "dropped": state["dropped"] + other["dropped"],
        }

    def evaluate(self, state: dict) -> tuple:
        ratio = state["errors"] / max(state["served"], 1)
        if state["dropped"] > 0:
            return (
                LEVEL_CRITICAL, float(state["dropped"]), 0.0,
                f"{state['dropped']} requests dropped "
                "(zero-drop invariant violated)",
            )
        if ratio >= self.critical_ratio:
            return (
                LEVEL_CRITICAL, ratio, self.critical_ratio,
                f"error ratio {ratio:.3f} >= {self.critical_ratio:g} "
                f"({state['errors']} errors / {state['served']} served)",
            )
        if ratio >= self.warn_ratio:
            return (
                LEVEL_WARN, ratio, self.warn_ratio,
                f"error ratio {ratio:.3f} >= {self.warn_ratio:g} "
                f"({state['errors']} errors / {state['served']} served)",
            )
        return (
            LEVEL_OK, ratio, self.warn_ratio,
            f"{state['errors']} errors / {state['served']} served",
        )


def default_monitors() -> list[HealthMonitor]:
    """The standard watchtower: one of each monitor, stock thresholds."""
    return [
        EssMonitor(),
        PropensityFloorMonitor(),
        WeightTailMonitor(),
        QuarantineRateMonitor(),
        LedgerBreakMonitor(),
        RetryStormMonitor(),
    ]


def serving_monitors() -> list[HealthMonitor]:
    """The online server's watchtower: the defaults plus ``serve.*``."""
    return default_monitors() + [ServeLatencyMonitor(), ServeErrorMonitor()]


class MonitorSuite:
    """Runs a set of monitors over typed observation feeds.

    The harvest loop feeds :meth:`observe_propensities` per batch, the
    validation layer feeds :meth:`observe_rejected` /
    :meth:`observe_rows`, the evaluation engine feeds
    :meth:`observe_weights` or :meth:`observe_weight_stats`, and the
    shard coordinator feeds :meth:`observe_shards`.  Whenever a fold
    changes a monitor's level, a :class:`HealthEvent` is appended and
    mirrored into the active metrics registry.
    """

    enabled = True

    def __init__(
        self, monitors: Optional[Iterable[HealthMonitor]] = None
    ) -> None:
        self.monitors = (
            list(monitors) if monitors is not None else default_monitors()
        )
        names = [m.name for m in self.monitors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate monitor names: {names}")
        self._states = {m.name: m.init_state() for m in self.monitors}
        self._levels = {m.name: LEVEL_OK for m in self.monitors}
        self._published: set = set()
        self.events: list[HealthEvent] = []
        self._rows_seen = 0

    # -- observation feeds -------------------------------------------------

    def observe_propensities(self, probs) -> None:
        """Fold one batch of logged propensities (harvest side).

        Also derives inverse-propensity weights ``1/p`` for the
        ESS/tail monitors, skipping non-positive entries (those are the
        floor monitor's job to flag).
        """
        probs = np.asarray(probs, dtype=np.float64)
        if probs.size == 0:
            return
        self._rows_seen += int(probs.size)
        positive = probs[probs > 0]
        weights = 1.0 / positive if positive.size else positive
        for monitor in self.monitors:
            state = self._states[monitor.name]
            changed = monitor.fold_propensities(state, probs)
            if weights.size and monitor.fold_weights(state, weights):
                changed = True
            if changed:
                self._reevaluate(monitor)

    def observe_weights(self, weights) -> None:
        """Fold one batch of importance weights (evaluation side)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.size == 0:
            return
        self._rows_seen += int(weights.size)
        for monitor in self.monitors:
            if monitor.fold_weights(self._states[monitor.name], weights):
                self._reevaluate(monitor)

    def observe_weight_stats(
        self, n: int, total: float, total_sq: float, maximum: float
    ) -> None:
        """Fold pre-aggregated weight moments (diagnostics side)."""
        if n <= 0:
            return
        self._rows_seen += int(n)
        for monitor in self.monitors:
            if monitor.fold_weight_stats(
                self._states[monitor.name], n, total, total_sq, maximum
            ):
                self._reevaluate(monitor)

    def observe_rejected(self, reason: str, count: int = 1) -> None:
        """Fold quarantined rows by reason (validation side)."""
        if count <= 0:
            return
        for monitor in self.monitors:
            if monitor.fold_rejected(
                self._states[monitor.name], reason, count
            ):
                self._reevaluate(monitor)

    def observe_rows(self, count: int) -> None:
        """Fold accepted/generated rows (rate denominators)."""
        if count <= 0:
            return
        for monitor in self.monitors:
            if monitor.fold_rows(self._states[monitor.name], count):
                self._reevaluate(monitor)

    def observe_shards(
        self, completed: int = 0, retried: int = 0, fallback: int = 0
    ) -> None:
        """Fold shard completion/retry/fallback counts (coordinator)."""
        for monitor in self.monitors:
            if monitor.fold_shards(
                self._states[monitor.name], completed, retried, fallback
            ):
                self._reevaluate(monitor)

    def observe_serve(
        self,
        served: int = 0,
        errors: int = 0,
        dropped: int = 0,
        latency_sum: float = 0.0,
        latency_max: float = 0.0,
    ) -> None:
        """Fold one serving observation (online decision service)."""
        for monitor in self.monitors:
            if monitor.fold_serve(
                self._states[monitor.name], served, errors, dropped,
                latency_sum, latency_max,
            ):
                self._reevaluate(monitor)

    # -- worker merge ------------------------------------------------------

    def states(self) -> dict:
        """Picklable/JSON-able per-monitor states (ship these home)."""
        return {name: dict(state) for name, state in self._states.items()}

    def absorb(self, states: Optional[dict]) -> None:
        """Merge a worker suite's :meth:`states` into this one."""
        if not states:
            return
        for monitor in self.monitors:
            other = states.get(monitor.name)
            if other is None:
                continue
            self._states[monitor.name] = monitor.merge(
                self._states[monitor.name], other
            )
            self._reevaluate(monitor)

    # -- evaluation and export ---------------------------------------------

    def _reevaluate(self, monitor: HealthMonitor) -> None:
        level, value, threshold, message = monitor.evaluate(
            self._states[monitor.name]
        )
        if level == self._levels[monitor.name]:
            if monitor.name not in self._published:
                # First evaluation landed on the initial level: export
                # the gauge so even an all-OK run carries health.level
                # in its metrics dump, but record no transition event.
                self._published.add(monitor.name)
                get_metrics().gauge(
                    "health.level", monitor=monitor.name
                ).set(LEVEL_RANK[level])
            return
        self._published.add(monitor.name)
        self._levels[monitor.name] = level
        event = HealthEvent(
            monitor.name,
            level,
            None if value is None else _finite(value),
            threshold,
            message,
            self._rows_seen,
        )
        self.events.append(event)
        metrics = get_metrics()
        metrics.counter(
            "health.events", monitor=monitor.name, level=level
        ).inc()
        metrics.gauge("health.level", monitor=monitor.name).set(
            LEVEL_RANK[level]
        )

    def level(self, name: str) -> str:
        """The current level of one monitor by name."""
        return self._levels[name]

    def overall_level(self) -> str:
        """The worst level any monitor currently holds."""
        return max(self._levels.values(), key=LEVEL_RANK.__getitem__)

    def snapshot(self) -> dict:
        """The manifest ``health`` section: verdicts plus event log."""
        monitors = {}
        for monitor in self.monitors:
            level, value, threshold, message = monitor.evaluate(
                self._states[monitor.name]
            )
            monitors[monitor.name] = {
                "level": level,
                "value": None if value is None else _finite(value),
                "threshold": threshold,
                "message": message,
            }
        return {
            "overall": self.overall_level(),
            "rows": self._rows_seen,
            "monitors": monitors,
            "events": [event.to_dict() for event in self.events],
        }

    def __repr__(self) -> str:
        return (
            f"MonitorSuite(monitors={len(self.monitors)}, "
            f"overall={self.overall_level()})"
        )


class NullMonitors:
    """The default suite: accepts every feed, stores nothing."""

    enabled = False
    events: list = []

    def observe_propensities(self, probs) -> None:
        """No-op (monitoring is off)."""

    def observe_weights(self, weights) -> None:
        """No-op (monitoring is off)."""

    def observe_weight_stats(self, n, total, total_sq, maximum) -> None:
        """No-op (monitoring is off)."""

    def observe_rejected(self, reason: str, count: int = 1) -> None:
        """No-op (monitoring is off)."""

    def observe_rows(self, count: int) -> None:
        """No-op (monitoring is off)."""

    def observe_shards(
        self, completed: int = 0, retried: int = 0, fallback: int = 0
    ) -> None:
        """No-op (monitoring is off)."""

    def observe_serve(
        self,
        served: int = 0,
        errors: int = 0,
        dropped: int = 0,
        latency_sum: float = 0.0,
        latency_max: float = 0.0,
    ) -> None:
        """No-op (monitoring is off)."""

    def states(self) -> dict:
        """Always empty — nothing accumulates."""
        return {}

    def absorb(self, states: Optional[dict]) -> None:
        """No-op (monitoring is off)."""

    def overall_level(self) -> str:
        """Always ``OK`` — nothing is watched."""
        return LEVEL_OK

    def snapshot(self) -> dict:
        """Always empty — nothing accumulates."""
        return {}

    def __repr__(self) -> str:
        return "NullMonitors()"


NULL_MONITORS = NullMonitors()

_monitors: Union[MonitorSuite, NullMonitors] = NULL_MONITORS


def get_monitors() -> Union[MonitorSuite, NullMonitors]:
    """The process-wide active suite (the no-op one by default)."""
    return _monitors


def set_monitors(
    suite: Optional[Union[MonitorSuite, NullMonitors]],
) -> None:
    """Install a suite process-wide; ``None`` restores the no-op."""
    global _monitors
    _monitors = suite if suite is not None else NULL_MONITORS


@contextmanager
def use_monitors(
    suite: Optional[MonitorSuite] = None,
) -> Iterator[Union[MonitorSuite, NullMonitors]]:
    """Scope a monitor suite to a ``with`` block.

    A fresh default :class:`MonitorSuite` is installed when ``suite``
    is omitted; the previous suite is restored on exit.
    """
    global _monitors
    previous = _monitors
    _monitors = suite if suite is not None else MonitorSuite()
    try:
        yield _monitors
    finally:
        _monitors = previous
