"""Counters, gauges, and histograms for the harvesting pipeline.

The reliability layer computes quarantine counts, fallback downgrades,
and diagnostics verdicts — and, before this module, threw most of them
away after printing.  :class:`MetricsRegistry` is the place they
accumulate instead: a flat registry of named instruments with optional
labels, exportable as Prometheus text (for scrapers and CI artifacts)
or JSON (for the run manifest).

Instrument names use dotted segments (``validation.rejected``); the
Prometheus exporter rewrites them to the conventional
``repro_validation_rejected`` form.  Labels are plain keyword
arguments: ``registry.counter("validation.rejected",
reason="propensity").inc()``.

**Zero overhead when off.**  The process-wide default registry is
:data:`NULL_METRICS`, which hands every caller one shared no-op
instrument — no dict lookups, no accumulation.  Install a real
registry per run with :func:`use_metrics` (the CLI's
``--metrics-out`` / ``--manifest`` flags do) and counts become
per-run, not per-process.

**Thread-safe when on.**  Get-or-create races in the registry and
read-modify-write races in the instruments both lose updates under
free threading (and even under the GIL, ``+=`` is three bytecodes),
so the registry guards series creation and every instrument guards
its mutators with a lock.  Exports take the registry lock too, so a
snapshot taken mid-run is internally consistent.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
]

#: Default histogram buckets (seconds-flavored; override per histogram).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, float("inf"),
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "_lock")
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount

    def snapshot(self) -> float:
        """The current count."""
        return self.value


class Gauge:
    """A value that goes up and down (last write wins)."""

    __slots__ = ("value", "_lock")
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Raise the gauge by ``amount``."""
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Lower the gauge by ``amount``."""
        with self._lock:
            self.value -= amount

    def snapshot(self) -> float:
        """The current value."""
        return self.value


class Histogram:
    """Cumulative-bucket histogram with count/sum/min/max.

    Matches Prometheus semantics: ``buckets[i]`` counts observations
    ``<= bounds[i]``, the final bound is ``+Inf``, and ``sum``/``count``
    ride along so averages are recoverable.
    """

    __slots__ = (
        "bounds", "bucket_counts", "count", "total", "min", "max", "_lock",
    )
    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    break

    def cumulative_counts(self) -> list[int]:
        """Per-bound cumulative counts (the Prometheus ``le`` series)."""
        running, out = 0, []
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return out

    def snapshot(self) -> dict:
        """Count/sum/min/max plus the cumulative bucket dict."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {
                ("+Inf" if bound == float("inf") else repr(bound)): cum
                for bound, cum in zip(self.bounds, self.cumulative_counts())
            },
        }


Instrument = Union[Counter, Gauge, Histogram]


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def prometheus_name(name: str) -> str:
    """``validation.rejected`` → ``repro_validation_rejected``."""
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"repro_{sanitized}"


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash first (so the other escapes aren't double-escaped), then
    double quote and line feed — the three characters the format
    reserves inside quoted label values.
    """
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(label_key: tuple) -> str:
    if not label_key:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in label_key
    )
    return "{" + inner + "}"


class MetricsRegistry:
    """Get-or-create registry of named, optionally labeled instruments.

    The same ``(name, labels)`` always returns the same instrument, so
    call sites can fetch-and-increment without holding references.
    Mixing instrument kinds under one name is an error.
    """

    enabled = True

    def __init__(self) -> None:
        #: name -> (kind, {label_key -> instrument})
        self._metrics: dict[str, tuple[str, dict[tuple, Instrument]]] = {}
        #: Guards get-or-create and exports; instruments carry their
        #: own locks for mutation, so the hot inc/observe path only
        #: touches this lock on first sight of a series.
        self._lock = threading.Lock()

    # -- instrument accessors ------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        """Get or create the counter for ``(name, labels)``."""
        return self._get(name, Counter, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create the gauge for ``(name, labels)``."""
        return self._get(name, Gauge, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        """Get or create the histogram for ``(name, labels)``.

        ``buckets`` only applies on first creation; later fetches of the
        same series return the existing instrument unchanged.
        """
        return self._get(name, Histogram, labels, buckets=buckets)

    def _get(self, name: str, factory, labels: dict, **kwargs) -> Instrument:
        kind = factory.kind
        with self._lock:
            entry = self._metrics.get(name)
            if entry is None:
                entry = (kind, {})
                self._metrics[name] = entry
            elif entry[0] != kind:
                raise ValueError(
                    f"metric {name!r} is a {entry[0]}, not a {kind}"
                )
            key = _label_key(labels)
            instrument = entry[1].get(key)
            if instrument is None:
                instrument = factory(**kwargs)
                entry[1][key] = instrument
            return instrument

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable dump of every instrument.

        Shape: ``{name: {"kind": ..., "series": [{"labels": {...},
        "value"/"histogram": ...}]}}`` — the form embedded in run
        manifests.
        """
        out: dict = {}
        with self._lock:
            for name in sorted(self._metrics):
                kind, series = self._metrics[name]
                out[name] = {
                    "kind": kind,
                    "series": [
                        {
                            "labels": dict(key),
                            ("histogram" if kind == "histogram"
                             else "value"): instrument.snapshot(),
                        }
                        for key, instrument in sorted(series.items())
                    ],
                }
        return out

    def to_json(self, indent: int = 2) -> str:
        """The :meth:`snapshot` dict serialized as a JSON string."""
        return json.dumps(self.snapshot(), indent=indent)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            snapshot = {
                name: (kind, dict(series))
                for name, (kind, series) in self._metrics.items()
            }
        for name in sorted(snapshot):
            kind, series = snapshot[name]
            metric = prometheus_name(name)
            if kind == "counter":
                metric += "_total"
            lines.append(f"# TYPE {metric} {kind}")
            for key, instrument in sorted(series.items()):
                if kind == "histogram":
                    assert isinstance(instrument, Histogram)
                    for bound, cum in zip(
                        instrument.bounds, instrument.cumulative_counts()
                    ):
                        le = "+Inf" if bound == float("inf") else f"{bound:g}"
                        labels = _format_labels(key + (("le", le),))
                        lines.append(f"{metric}_bucket{labels} {cum}")
                    labels = _format_labels(key)
                    lines.append(f"{metric}_sum{labels} {instrument.total:g}")
                    lines.append(f"{metric}_count{labels} {instrument.count}")
                else:
                    labels = _format_labels(key)
                    lines.append(
                        f"{metric}{labels} {instrument.snapshot():g}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    # -- convenience reads (tests, reports) ----------------------------------

    def value(self, name: str, **labels) -> Optional[float]:
        """Current value of a counter/gauge series, or ``None``."""
        with self._lock:
            entry = self._metrics.get(name)
            if entry is None:
                return None
            instrument = entry[1].get(_label_key(labels))
        if instrument is None or isinstance(instrument, Histogram):
            return None
        return instrument.snapshot()

    def total(self, name: str) -> float:
        """Sum of a counter's value across every label combination."""
        with self._lock:
            entry = self._metrics.get(name)
            if entry is None:
                return 0.0
            kind, series = entry[0], list(entry[1].values())
        if kind == "histogram":
            return float(sum(i.count for i in series))
        return float(sum(i.snapshot() for i in series))

    def __repr__(self) -> str:
        return f"MetricsRegistry(metrics={len(self._metrics)})"


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The default registry: accepts every call, stores nothing."""

    enabled = False

    def counter(self, name: str, **labels) -> _NullInstrument:
        """The shared no-op instrument (nothing is recorded)."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        """The shared no-op instrument (nothing is recorded)."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS, **labels):
        """The shared no-op instrument (nothing is recorded)."""
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        """Always empty — nothing accumulates."""
        return {}

    def to_json(self, indent: int = 2) -> str:
        """An empty JSON object."""
        return "{}"

    def to_prometheus(self) -> str:
        """An empty exposition document."""
        return ""

    def value(self, name: str, **labels) -> Optional[float]:
        """Always ``None`` — no series exist."""
        return None

    def total(self, name: str) -> float:
        """Always ``0.0`` — no series exist."""
        return 0.0

    def __repr__(self) -> str:
        return "NullMetrics()"


NULL_METRICS = NullMetrics()

_metrics: Union[MetricsRegistry, NullMetrics] = NULL_METRICS


def get_metrics() -> Union[MetricsRegistry, NullMetrics]:
    """The process-wide active registry (the no-op one by default)."""
    return _metrics


def set_metrics(
    registry: Optional[Union[MetricsRegistry, NullMetrics]],
) -> None:
    """Install a registry process-wide; ``None`` restores the no-op."""
    global _metrics
    _metrics = registry if registry is not None else NULL_METRICS


@contextmanager
def use_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[Union[MetricsRegistry, NullMetrics]]:
    """Scope a metrics registry to a ``with`` block.

    A fresh :class:`MetricsRegistry` is installed when ``registry`` is
    omitted; the previous registry is restored on exit.
    """
    global _metrics
    previous = _metrics
    _metrics = registry if registry is not None else MetricsRegistry()
    try:
        yield _metrics
    finally:
        _metrics = previous
