"""Append-only cross-run telemetry history (``runs.jsonl``).

Every benchmark and every manifest-producing run so far overwrote the
previous data point — ``BENCH_ope.json`` held exactly one run and the
trajectory was invisible.  :class:`RunHistory` fixes that with the
dumbest durable thing that works: an append-only JSONL file where each
line is one run keyed by git SHA, timestamp, and ``cpu_count`` (ratios
measured on a single-core box must never be compared against
multi-core ones — see ROADMAP's multi-core items).

Records come in two kinds:

- ``bench`` — the gated ratio metrics flattened out of a
  ``BENCH_ope.json`` artifact (:func:`bench_record`); appended by the
  benchmark artifact writer and by ``benchmarks/perf/gate.py``.
- ``manifest`` — result/health/duration summaries from a run manifest
  (:func:`manifest_record`); appended by the CLI when ``--history``
  is given.

:func:`monotone_regressions` is the trend check the perf gate runs:
``k`` consecutive strictly-decreasing values of a gated metric on the
same ``cpu_count`` is a drift no single-run tolerance gate can see.

Stdlib-only on purpose — ``gate.py`` must work as a standalone script.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Iterable, Mapping, Optional

__all__ = [
    "RunHistory",
    "DEFAULT_HISTORY_DIR",
    "git_sha",
    "bench_record",
    "manifest_record",
    "monotone_regressions",
]

#: Where benchmark history accumulates, relative to the repo root.
DEFAULT_HISTORY_DIR = os.path.join("benchmarks", "history")

#: Filename inside the history directory.
HISTORY_FILE = "runs.jsonl"


def git_sha(cwd: Optional[str] = None) -> str:
    """The current git commit SHA, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def _stamp(record: dict, cwd: Optional[str] = None) -> dict:
    record.setdefault("timestamp", time.time())
    record.setdefault("git_sha", git_sha(cwd))
    record.setdefault("cpu_count", os.cpu_count() or 1)
    return record


def bench_record(artifact: Mapping, cwd: Optional[str] = None) -> dict:
    """Flatten a ``BENCH_ope.json`` artifact into one history record.

    Keeps every numeric leaf under a dotted key
    (``sharded.parallel_speedup``), so the trend check can address
    metrics the same way ``gate.py``'s gate tables do.
    """
    metrics: dict[str, float] = {}

    def walk(node, prefix: str) -> None:
        if isinstance(node, Mapping):
            for key, value in node.items():
                walk(value, f"{prefix}.{key}" if prefix else str(key))
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            metrics[prefix] = float(node)

    walk(artifact, "")
    return _stamp({"kind": "bench", "metrics": metrics}, cwd)


def manifest_record(manifest: Mapping, cwd: Optional[str] = None) -> dict:
    """Summarize a run manifest into one history record.

    Carries the command, result estimates, health verdicts, and total
    wall time of the root spans — enough for the dashboard's trend
    lane without duplicating the manifest itself.
    """
    results = {}
    for entry in manifest.get("results", ()):
        key = f"{entry.get('policy')}/{entry.get('estimator')}"
        if entry.get("value") is not None:
            results[key] = entry["value"]
    health = manifest.get("health", {})
    spans = manifest.get("spans", ())
    wall = sum(s.get("wall_s") or 0.0 for s in spans)
    return _stamp(
        {
            "kind": "manifest",
            "command": manifest.get("command"),
            "results": results,
            "health": {
                "overall": health.get("overall"),
                "levels": {
                    name: entry.get("level")
                    for name, entry in health.get("monitors", {}).items()
                },
            },
            "wall_s": wall or None,
        },
        cwd,
    )


class RunHistory:
    """An append-only JSONL store of run records.

    ``path`` may be the history *directory* (the conventional
    ``benchmarks/history/``, in which case ``runs.jsonl`` inside it is
    used) or a ``.jsonl`` file path directly.
    """

    def __init__(self, path: str = DEFAULT_HISTORY_DIR) -> None:
        if path.endswith(".jsonl"):
            self.path = path
        else:
            self.path = os.path.join(path, HISTORY_FILE)

    def append(self, record: Mapping) -> dict:
        """Stamp and append one record; returns the stamped record."""
        record = _stamp(dict(record))
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    def records(self, kind: Optional[str] = None) -> list[dict]:
        """Every stored record in append order (corrupt lines skipped)."""
        if not os.path.exists(self.path):
            return []
        out: list[dict] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and (
                    kind is None or record.get("kind") == kind
                ):
                    out.append(record)
        return out

    def series(
        self, metric: str, cpu_count: Optional[int] = None
    ) -> list[tuple[float, float]]:
        """``(timestamp, value)`` points for one bench metric.

        Restricted to records matching ``cpu_count`` when given —
        cross-core-count ratios are not comparable.
        """
        points = []
        for record in self.records(kind="bench"):
            if cpu_count is not None and record.get("cpu_count") != cpu_count:
                continue
            value = record.get("metrics", {}).get(metric)
            if value is not None:
                points.append((record.get("timestamp", 0.0), float(value)))
        return points

    def __repr__(self) -> str:
        return f"RunHistory({self.path!r})"


def monotone_regressions(
    history: RunHistory,
    metrics: Iterable[str],
    k: int = 3,
    cpu_count: Optional[int] = None,
) -> list[dict]:
    """Metrics whose last ``k`` recorded values strictly decrease.

    Single-run tolerance gates miss slow drift: three runs each 5%
    worse than the last never trip a 30% gate, but the trajectory is
    down 14% and falling.  Returns one dict per drifting metric with
    the offending trailing values.
    """
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    warnings = []
    for metric in metrics:
        points = history.series(metric, cpu_count=cpu_count)
        if len(points) < k:
            continue
        tail = [value for _, value in points[-k:]]
        if all(later < earlier for earlier, later in zip(tail, tail[1:])):
            warnings.append(
                {
                    "metric": metric,
                    "values": tail,
                    "cpu_count": cpu_count,
                    "drop": (tail[0] - tail[-1]) / tail[0] if tail[0] else 0.0,
                }
            )
    return warnings
