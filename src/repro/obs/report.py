"""Render a saved run manifest back into human-readable tables.

``python -m repro report run_manifest.json`` lands here: given a
manifest written by ``evaluate --manifest``, print the run header,
the estimator results, the top spans by wall time, the metric totals,
and the reliability-verdict tally — the "what happened in this run"
one-pager.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Iterator, Mapping, Optional, Sequence

from repro.obs.manifest import RunManifest

# NOTE: repro.core.reporting is imported lazily inside
# manifest_summary_text — repro.obs must stay import-clean of
# repro.core so the core modules can import the instrumentation hooks
# at module load without a cycle.

__all__ = [
    "flatten_spans",
    "aggregate_spans",
    "verdict_tally",
    "metric_totals",
    "manifest_summary_text",
]


def flatten_spans(
    spans: Sequence[Mapping], prefix: str = ""
) -> Iterator[tuple[str, Mapping]]:
    """Depth-first ``(path, span)`` pairs over a span tree."""
    for span in spans:
        path = f"{prefix}/{span['name']}" if prefix else str(span["name"])
        yield path, span
        yield from flatten_spans(span.get("children", ()), path)


def aggregate_spans(spans: Sequence[Mapping]) -> list[dict]:
    """Per-span-name totals: count, total/max wall seconds, CPU seconds.

    Sorted by total wall time, descending — the "where did the run
    spend its time" view.  Spans still open when the tree was captured
    (``wall_s`` is None) count toward ``count`` only.
    """
    totals: dict[str, dict] = {}
    for _, span in flatten_spans(spans):
        entry = totals.setdefault(
            str(span["name"]),
            {"name": str(span["name"]), "count": 0, "wall_s": 0.0,
             "cpu_s": 0.0, "max_wall_s": 0.0, "errors": 0},
        )
        entry["count"] += 1
        if span.get("error"):
            entry["errors"] += 1
        wall = span.get("wall_s")
        if wall is not None:
            entry["wall_s"] += wall
            entry["max_wall_s"] = max(entry["max_wall_s"], wall)
        cpu = span.get("cpu_s")
        if cpu is not None:
            entry["cpu_s"] += cpu
    return sorted(totals.values(), key=lambda e: -e["wall_s"])


def verdict_tally(results: Sequence[Mapping]) -> dict[str, int]:
    """Reliability-verdict counts across the manifest's results."""
    tally: TallyCounter = TallyCounter()
    for result in results:
        tally[str(result.get("verdict") or "-")] += 1
    return dict(tally)


def metric_totals(metrics: Mapping) -> list[tuple[str, str, float]]:
    """``(name, kind, total)`` per metric, labels summed out.

    Counters/gauges sum their series values; histograms report their
    total observation count.
    """
    rows = []
    for name in sorted(metrics):
        entry = metrics[name]
        kind = entry.get("kind", "?")
        total = 0.0
        for series in entry.get("series", ()):
            if kind == "histogram":
                total += float(series.get("histogram", {}).get("count", 0))
            else:
                total += float(series.get("value", 0.0))
        rows.append((name, kind, total))
    return rows


def _fmt(value: Optional[float], pattern: str = "{:.4f}") -> str:
    return pattern.format(value) if value is not None else "-"


def manifest_summary_text(
    manifest: RunManifest, top_spans: int = 12
) -> str:
    """The full ``repro report`` rendering of one manifest."""
    from repro.core.reporting import text_table

    data = manifest.to_dict()
    sections: list[str] = []

    header_rows = [
        ["command", data.get("command", "-")],
        ["created_unix", f"{data.get('created_unix', 0):.0f}"],
        ["repro", data.get("environment", {}).get("repro_version", "-")],
        ["python", data.get("environment", {}).get("python", "-")],
    ]
    source = data.get("input")
    if source:
        header_rows.append(["input", source.get("path", "-")])
        if "sha256" in source:
            header_rows.append(["sha256", source["sha256"][:16] + "…"])
        if "bytes" in source:
            header_rows.append(["bytes", str(source["bytes"])])
    for key, value in sorted(data.get("config", {}).items()):
        header_rows.append([f"config.{key}", str(value)])
    sections.append("run\n" + text_table(["field", "value"], header_rows))

    results = manifest.results
    if results:
        rows = [
            [
                r.get("policy", "-"),
                r.get("estimator", "-"),
                _fmt(r.get("value")),
                _fmt(r.get("std_error")),
                str(r.get("n", "-")),
                (r.get("verdict") or "-")
                + (" (degraded)" if r.get("degraded") else ""),
            ]
            for r in results
        ]
        sections.append(
            "results\n"
            + text_table(
                ["policy", "estimator", "value", "stderr", "n", "verdict"],
                rows,
            )
        )
        tally = verdict_tally(results)
        sections.append(
            "verdicts\n"
            + text_table(
                ["verdict", "count"],
                [[k, str(v)] for k, v in sorted(tally.items())],
            )
        )

    spans = manifest.spans
    if spans:
        rows = [
            [
                e["name"],
                str(e["count"]),
                f"{e['wall_s']:.4f}",
                f"{e['max_wall_s']:.4f}",
                f"{e['cpu_s']:.4f}",
            ]
            for e in aggregate_spans(spans)[:top_spans]
        ]
        sections.append(
            "top spans by wall time\n"
            + text_table(
                ["span", "count", "wall s", "max s", "cpu s"], rows
            )
        )

    metrics = manifest.metrics
    if metrics:
        rows = [
            [name, kind, f"{total:g}"]
            for name, kind, total in metric_totals(metrics)
        ]
        sections.append(
            "metric totals\n" + text_table(["metric", "kind", "total"], rows)
        )

    quarantine = data.get("quarantine")
    if quarantine:
        rows = [
            [reason, str(count)]
            for reason, count in sorted(
                quarantine.get("by_reason", {}).items()
            )
        ] + [
            [f"repaired/{reason}", str(count)]
            for reason, count in sorted(
                quarantine.get("repairs_by_reason", {}).items()
            )
        ]
        rows.append(["total rejected", str(quarantine.get("n_rejected", 0))])
        sections.append(
            "quarantine\n" + text_table(["reason", "count"], rows)
        )

    ledger = data.get("ledger")
    if ledger:
        lines = [
            "ledger",
            f"  stream {ledger.get('stream')}  n {ledger.get('n')}",
            f"  head {ledger.get('head')}",
        ]
        if ledger.get("master_fingerprint"):
            lines.append(
                f"  master fingerprint {ledger['master_fingerprint']}"
            )
        sections.append("\n".join(lines))

    streams = data.get("streams")
    if streams:
        lines = [
            "rng streams",
            f"  master fingerprint {streams.get('master_fingerprint')} "
            f"(protocol {streams.get('protocol')})",
        ]
        for derivation in streams.get("derivations", [])[:8]:
            lines.append(
                f"  {derivation.get('key')}  seed "
                f"{derivation.get('seed_fingerprint')}"
            )
        remaining = len(streams.get("derivations", [])) - 8
        if remaining > 0:
            lines.append(f"  … {remaining} more derivation(s)")
        sections.append("\n".join(lines))

    return "\n\n".join(sections)
