"""``repro.obs`` — instrumentation for the harvesting pipeline.

A dependency-free observability layer threaded through harvest →
validation → estimator folds → bootstrap → reporting:

- :mod:`repro.obs.tracing` — nested wall/CPU spans with cross-process
  merge (``with get_tracer().span("evaluate.chunk", rows=n): ...``);
- :mod:`repro.obs.metrics` — counters/gauges/histograms with
  Prometheus-text and JSON exporters;
- :mod:`repro.obs.manifest` — provenance manifests
  (``run_manifest.json``) binding input digest, config, metrics,
  span tree, and results into one reproducible record;
- :mod:`repro.obs.report` — render a saved manifest back into tables
  (the ``python -m repro report`` subcommand).

Both the tracer and the registry default to shared no-op
implementations, so the instrumented hot paths cost nothing until a
run opts in (:func:`use_tracer` / :func:`use_metrics`, or the CLI's
``--trace`` / ``--metrics-out`` / ``--manifest`` flags).
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    file_digest,
    result_entry,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.report import (
    aggregate_spans,
    flatten_spans,
    manifest_summary_text,
    metric_totals,
    verdict_tally,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    # tracing
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    # manifest
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "file_digest",
    "result_entry",
    # report
    "flatten_spans",
    "aggregate_spans",
    "verdict_tally",
    "metric_totals",
    "manifest_summary_text",
]
