"""``repro.obs`` — instrumentation for the harvesting pipeline.

A dependency-free observability layer threaded through harvest →
validation → estimator folds → bootstrap → reporting:

- :mod:`repro.obs.tracing` — nested wall/CPU spans with cross-process
  merge (``with get_tracer().span("evaluate.chunk", rows=n): ...``);
- :mod:`repro.obs.metrics` — counters/gauges/histograms with
  Prometheus-text and JSON exporters;
- :mod:`repro.obs.monitors` — streaming health monitors (windowed
  ESS, propensity floor, weight tails, quarantine/ledger-break rates,
  shard retry storms) emitting OK/WARN/CRITICAL
  :class:`~repro.obs.monitors.HealthEvent` records while the run is
  in flight;
- :mod:`repro.obs.profiler` — a stdlib signal-sampling profiler that
  attributes self-time to the active span, merged across the worker
  pool like span trees;
- :mod:`repro.obs.manifest` — provenance manifests
  (``run_manifest.json``) binding input digest, config, metrics,
  span tree, health verdicts, and results into one reproducible
  record;
- :mod:`repro.obs.history` — append-only cross-run ``runs.jsonl``
  store keyed by git SHA + ``cpu_count``, with the monotone-trend
  check the perf gate runs;
- :mod:`repro.obs.dashboard` — a self-contained static HTML dashboard
  rendered from any manifest + history pair (the ``python -m repro
  dashboard`` subcommand);
- :mod:`repro.obs.report` — render a saved manifest back into tables
  (the ``python -m repro report`` subcommand).

The tracer, registry, monitor suite, and profiler all default to
shared no-op implementations, so the instrumented hot paths cost
nothing until a run opts in (:func:`use_tracer` / :func:`use_metrics`
/ :func:`use_monitors` / :func:`use_profiler`, or the CLI's
``--trace`` / ``--metrics-out`` / ``--manifest`` / ``--monitors`` /
``--profile`` flags).
"""

from repro.obs.dashboard import render_dashboard
from repro.obs.history import (
    RunHistory,
    bench_record,
    git_sha,
    manifest_record,
    monotone_regressions,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    file_digest,
    result_entry,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.monitors import (
    LEVEL_CRITICAL,
    LEVEL_OK,
    LEVEL_WARN,
    NULL_MONITORS,
    HealthEvent,
    HealthMonitor,
    MonitorSuite,
    NullMonitors,
    default_monitors,
    get_monitors,
    serving_monitors,
    set_monitors,
    use_monitors,
)
from repro.obs.profiler import (
    NULL_PROFILER,
    NullProfiler,
    SpanProfiler,
    get_profiler,
    set_profiler,
    use_profiler,
)
from repro.obs.report import (
    aggregate_spans,
    flatten_spans,
    manifest_summary_text,
    metric_totals,
    verdict_tally,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    # tracing
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    # monitors
    "LEVEL_OK",
    "LEVEL_WARN",
    "LEVEL_CRITICAL",
    "HealthEvent",
    "HealthMonitor",
    "MonitorSuite",
    "NullMonitors",
    "NULL_MONITORS",
    "default_monitors",
    "serving_monitors",
    "get_monitors",
    "set_monitors",
    "use_monitors",
    # profiler
    "SpanProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "get_profiler",
    "set_profiler",
    "use_profiler",
    # manifest
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "file_digest",
    "result_entry",
    # history
    "RunHistory",
    "git_sha",
    "bench_record",
    "manifest_record",
    "monotone_regressions",
    # dashboard
    "render_dashboard",
    # report
    "flatten_spans",
    "aggregate_spans",
    "verdict_tally",
    "metric_totals",
    "manifest_summary_text",
]
