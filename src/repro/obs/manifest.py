"""Provenance manifests: every reported number, reproducible.

A decision meeting trusts an offline estimate only as far as it can
answer "where did this number come from?".  A :class:`RunManifest`
captures one ``evaluate``/``compare`` run end to end:

- **input** — path, byte size, and SHA-256 digest of the evaluated log
  (two manifests with the same digest evaluated the same bytes);
- **config** — backend, chunk size, workers, seed, validation mode,
  policy and estimator specs: everything needed to re-issue the run;
- **environment** — package version, Python version, platform;
- **results** — per (policy × estimator) value, standard error, n, and
  the reliability verdict;
- **metrics** — the run's :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot (quarantine counts, downgrades, fold latencies, …);
- **spans** — the run's :class:`~repro.obs.tracing.Tracer` tree;
- **ledger** / **streams** (harvest runs) — the decision chain's head
  hash and the RNG stream-derivation log (:mod:`repro.audit`), so the
  produced log's integrity and randomness provenance are provable
  end to end.

``python -m repro evaluate … --manifest run_manifest.json`` writes
one; ``python -m repro report run_manifest.json`` renders it back as a
human-readable summary (:mod:`repro.obs.report`).
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
import time
from typing import Mapping, Optional, Sequence

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "file_digest",
    "result_entry",
]

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1

_DIGEST_CHUNK = 1 << 20


def file_digest(path: str, algorithm: str = "sha256") -> str:
    """Streaming content digest of ``path`` (constant memory)."""
    digest = hashlib.new(algorithm)
    with open(path, "rb") as handle:
        while True:
            block = handle.read(_DIGEST_CHUNK)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def result_entry(policy_name: str, result) -> dict:
    """Build one manifest result row from an estimator result.

    Accepts any object with the
    :class:`~repro.core.estimators.base.EstimatorResult` attributes.
    """
    entry = {
        "policy": policy_name,
        "estimator": result.estimator,
        "value": result.value,
        "std_error": result.std_error,
        "n": result.n,
        "effective_n": result.effective_n,
        "verdict": (
            result.diagnostics.verdict
            if result.diagnostics is not None
            else None
        ),
        "reliable": result.reliable,
    }
    if result.details.get("degraded"):
        entry["degraded"] = True
        entry["fallback"] = result.details.get("fallback")
    return entry


class RunManifest:
    """Builder/parser for ``run_manifest.json``."""

    def __init__(self, data: dict) -> None:
        self.data = data

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        *,
        command: str,
        input_path: Optional[str] = None,
        config: Optional[Mapping] = None,
        results: Sequence[dict] = (),
        metrics=None,
        tracer=None,
        quarantine=None,
        ledger=None,
        streams=None,
        monitors=None,
        profiler=None,
        extra: Optional[Mapping] = None,
    ) -> "RunManifest":
        """Assemble a manifest from a finished run's artifacts.

        ``metrics``/``tracer`` accept the run's registry and tracer
        (their snapshots are embedded); ``quarantine`` a
        :class:`~repro.core.validation.Quarantine`.  ``ledger`` (a
        :class:`~repro.audit.ledger.DecisionLedger`) embeds the decision
        chain's head hash — the truncation-proof anchor that
        ``python -m repro verify-ledger --manifest`` checks logs
        against; ``streams`` (a
        :class:`~repro.audit.streams.StreamRegistry`) embeds the
        derivation log (master-seed fingerprint plus every stream key
        consumed), proving which randomness the run drew without
        revealing the seed itself.  ``monitors`` (a
        :class:`~repro.obs.monitors.MonitorSuite`) embeds the streaming
        health verdicts as the ``health`` section; ``profiler`` (a
        :class:`~repro.obs.profiler.SpanProfiler`) embeds the per-span
        flame tables as ``profile``.  All are optional — an
        un-instrumented run still gets input digest, config,
        environment, and results.
        """
        import repro

        data: dict = {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "created_unix": time.time(),
            "command": command,
            "environment": {
                "repro_version": repro.__version__,
                "python": sys.version.split()[0],
                "platform": platform.platform(),
            },
            "config": dict(config or {}),
            "results": list(results),
        }
        if input_path is not None:
            try:
                import os

                data["input"] = {
                    "path": input_path,
                    "sha256": file_digest(input_path),
                    "bytes": os.path.getsize(input_path),
                }
            except OSError:
                data["input"] = {"path": input_path}
        if quarantine is not None:
            data["quarantine"] = quarantine.report()
        if ledger is not None:
            data["ledger"] = ledger.manifest_entry()
        if streams is not None:
            data["streams"] = streams.manifest_entry()
        if metrics is not None:
            data["metrics"] = metrics.snapshot()
        if tracer is not None:
            data["spans"] = tracer.span_tree()
        if monitors is not None:
            health = monitors.snapshot()
            if health:
                data["health"] = health
        if profiler is not None:
            profile = profiler.to_dict()
            if profile:
                data["profile"] = profile
        if extra:
            data.update(dict(extra))
        return cls(data)

    # -- IO ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """The raw manifest payload (not a copy)."""
        return self.data

    def to_json(self, indent: int = 2) -> str:
        """The payload serialized as JSON (non-JSON values via ``str``)."""
        return json.dumps(self.data, indent=indent, default=str)

    def save(self, path: str) -> None:
        """Write the manifest to ``path`` as newline-terminated JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        """Read a manifest back, checking the schema version."""
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ValueError(f"{path}: manifest root must be an object")
        version = data.get("schema_version")
        if version != MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"{path}: unsupported manifest schema version {version!r} "
                f"(this build reads {MANIFEST_SCHEMA_VERSION})"
            )
        return cls(data)

    # -- accessors -----------------------------------------------------------

    @property
    def results(self) -> list[dict]:
        """The per-(policy, estimator) result rows."""
        return list(self.data.get("results", ()))

    @property
    def spans(self) -> list[dict]:
        """The captured span tree (empty when tracing was off)."""
        return list(self.data.get("spans", ()))

    @property
    def metrics(self) -> dict:
        """The metrics snapshot (empty when metrics were off)."""
        return dict(self.data.get("metrics", {}))

    def __repr__(self) -> str:
        return (
            f"RunManifest(command={self.data.get('command')!r}, "
            f"results={len(self.results)})"
        )
