"""Full-feedback datasets and exploration simulation (Figs. 3–4).

At collection time Azure "was using a safe default policy of waiting
the maximal amount of time (10 min) before rebooting, which actually
gives us full feedback on what would have happened if we waited
{1,...,9} min" (§3).  We build exactly that object: every interaction
carries the downtime of *all ten* wait times, logged under the
deterministic wait-10 default.

From it we can

- compute any policy's **ground truth** value by lookup
  (:func:`ground_truth_value`),
- **simulate exploration** — reveal only the reward of a randomly
  chosen action, hiding the rest (:func:`simulate_exploration`) — the
  construction behind the 1000 partial-information simulations of
  Fig. 3 and the CB learning curves of Fig. 4.

Rewards are *downtimes* (minutes × VMs): smaller is better, so every
learner/optimizer in these experiments runs with ``maximize=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.audit.ledger import DecisionLedger
from repro.core import harvest
from repro.core.columns import DatasetColumns
from repro.core.features import FeatureEncoder
from repro.core.policies import Policy, UniformRandomPolicy
from repro.core.types import ActionSpace, Dataset, Interaction, RewardRange
from repro.machinehealth.failures import (
    WAIT_TIMES,
    DowntimeModel,
    FailureEvent,
    generate_failures,
)
from repro.machinehealth.fleet import FleetConfig, generate_fleet
from repro.obs.metrics import get_metrics
from repro.obs.tracing import get_tracer
from repro.simsys.random_source import RandomSource

#: Index of the safe default action ("wait 10 minutes") in WAIT_TIMES.
DEFAULT_ACTION = len(WAIT_TIMES) - 1

#: Downtime cap (minutes × VMs) used as the reward range upper bound.
DOWNTIME_CAP = 600.0


def _build_encoder(events: list[FailureEvent]) -> FeatureEncoder:
    encoder = FeatureEncoder(
        categorical=["hardware_sku", "os_version", "failure_kind"],
        numeric=["age_years", "n_vms", "prior_failures"],
        standardize=True,
    )
    encoder.fit([event.context_record() for event in events])
    return encoder


@dataclass
class MachineHealthDataset:
    """A full-feedback machine-health dataset plus its provenance."""

    full: Dataset
    events: list[FailureEvent]
    encoder: FeatureEncoder

    @property
    def n_actions(self) -> int:
        """Number of wait-time actions (10)."""
        return len(WAIT_TIMES)

    def split(self, train_fraction: float = 0.5) -> tuple[Dataset, Dataset]:
        """(train, test) split in logged order."""
        return self.full.split(train_fraction)


def build_full_feedback_dataset(
    n_events: int = 5000,
    n_machines: int = 1000,
    seed: int = 0,
    model: Optional[DowntimeModel] = None,
) -> MachineHealthDataset:
    """Generate a fleet and a fully-logged incident dataset.

    Draws ``n_events`` incidents and logs them under the wait-10
    default with full feedback attached.
    """
    randomness = RandomSource(seed, _name="machine-health")
    machines = generate_fleet(FleetConfig(n_machines=n_machines), randomness)
    events = generate_failures(
        machines, n_events, randomness.child("failures"), model or DowntimeModel()
    )
    encoder = _build_encoder(events)
    dataset = Dataset(
        action_space=ActionSpace(
            len(WAIT_TIMES), labels=[f"wait-{w}min" for w in WAIT_TIMES]
        ),
        reward_range=RewardRange(0.0, DOWNTIME_CAP, maximize=False),
    )
    for index, event in enumerate(events):
        profile = [min(d, DOWNTIME_CAP) for d in event.downtime_profile()]
        dataset.append(
            Interaction(
                context=encoder.encode(event.context_record()),
                action=DEFAULT_ACTION,
                reward=profile[DEFAULT_ACTION],
                propensity=1.0,  # the default policy is deterministic
                timestamp=float(index),
                full_rewards=profile,
            )
        )
    return MachineHealthDataset(full=dataset, events=events, encoder=encoder)


def simulate_exploration_columns(
    full_dataset: Dataset,
    rng: "harvest.HarvestRNG",
    logging_policy: Optional[Policy] = None,
    batch_size: int = harvest.DEFAULT_BATCH_SIZE,
    ledger: Optional["DecisionLedger"] = None,
) -> "DatasetColumns":
    """Batched partial-feedback simulation, returned columnar.

    The vectorized core of :func:`simulate_exploration`: the logging
    policy samples all rows through
    :meth:`~repro.core.policies.Policy.act_batch` in ``batch_size``
    chunks, and the revealed rewards are gathered from the stacked
    full-feedback profiles with one fancy-index per batch.  Output
    feeds the vectorized estimators directly; results are invariant to
    ``batch_size`` for a fixed generator (the harvest determinism
    contract).  Audit hooks (a sharded
    :class:`~repro.audit.streams.StreamRNG` as ``rng`` and/or a
    :class:`~repro.audit.ledger.DecisionLedger`) pass straight through
    to the engine.
    """
    if len(full_dataset) == 0:
        raise ValueError("empty dataset")
    logging_policy = logging_policy or UniformRandomPolicy()
    interactions = list(full_dataset)
    for interaction in interactions:
        if interaction.full_rewards is None:
            raise ValueError("exploration simulation requires full feedback")
    profiles = np.asarray(
        [interaction.full_rewards for interaction in interactions],
        dtype=np.float64,
    )
    contexts = [interaction.context for interaction in interactions]
    timestamps = np.asarray(
        [interaction.timestamp for interaction in interactions],
        dtype=np.float64,
    )
    space = full_dataset.action_space

    def reveal(indices: np.ndarray, actions: np.ndarray) -> np.ndarray:
        return profiles[indices, actions]

    with get_tracer().span(
        "harvest.machinehealth", policy=logging_policy.name
    ) as span:
        columns = harvest.harvest_columns(
            logging_policy,
            contexts,
            reveal,
            rng,
            eligible=None if space is not None else tuple(
                range(profiles.shape[1])
            ),
            action_space=space,
            batch_size=batch_size,
            reward_range=full_dataset.reward_range,
            scenario="machinehealth",
            timestamps=timestamps,
            ledger=ledger,
        )
        span.set(rows=columns.n)
    get_metrics().counter("harvest.rows", scenario="machinehealth").inc(
        columns.n
    )
    return columns


def exploration_shard_inputs(job, registry):
    """Shard-input builder for coordinated machine-health harvests.

    See :data:`repro.core.coordinator.SCENARIO_BUILDERS`.  Recognized
    ``job.config`` keys: ``seed`` (fleet + failure draw), ``n_machines``.
    The full-feedback dataset is deterministic in ``(rows, seed,
    n_machines)`` — exactly the
    :class:`~repro.core.coordinator.HarvestInputs` determinism contract
    — so every worker rebuilds identical contexts and reward profiles
    from the config alone.
    """
    from repro.core.coordinator import HarvestInputs

    config = job.config
    full = build_full_feedback_dataset(
        n_events=job.rows,
        n_machines=int(config.get("n_machines", 1000)),
        seed=int(config.get("seed", 0)),
    ).full
    interactions = list(full)
    profiles = np.asarray(
        [interaction.full_rewards for interaction in interactions],
        dtype=np.float64,
    )
    contexts = tuple(interaction.context for interaction in interactions)
    timestamps = np.asarray(
        [interaction.timestamp for interaction in interactions],
        dtype=np.float64,
    )

    def reveal(indices: np.ndarray, actions: np.ndarray) -> np.ndarray:
        return profiles[indices, actions]

    return HarvestInputs(
        contexts=contexts,
        reward_fn=reveal,
        action_space=full.action_space,
        reward_range=full.reward_range,
        timestamps=timestamps,
    )


def simulate_exploration(
    full_dataset: Dataset,
    rng: np.random.Generator,
    logging_policy: Optional[Policy] = None,
    batch_size: int = harvest.DEFAULT_BATCH_SIZE,
) -> Dataset:
    """Simulate partial feedback from a full-feedback dataset.

    For every interaction, the logging policy (uniform random over the
    10 wait times unless overridden) chooses an action; only that
    action's reward is revealed, "hiding all others" (§4).

    Decisions are sampled in batches through the policy's
    :meth:`~repro.core.policies.Policy.act_batch` (see
    :func:`simulate_exploration_columns`); pass ``batch_size=0`` for
    the legacy per-row ``act()`` loop — note the two paths consume the
    generator differently, so they match only distributionally.
    """
    if batch_size != 0:
        return simulate_exploration_columns(
            full_dataset, rng, logging_policy, batch_size=batch_size
        ).to_dataset()
    if len(full_dataset) == 0:
        raise ValueError("empty dataset")
    logging_policy = logging_policy or UniformRandomPolicy()
    space = full_dataset.action_space
    exploration = Dataset(
        action_space=space, reward_range=full_dataset.reward_range
    )
    with get_tracer().span(
        "harvest.machinehealth", policy=logging_policy.name
    ) as span:
        for interaction in full_dataset:
            if interaction.full_rewards is None:
                raise ValueError(
                    "exploration simulation requires full feedback"
                )
            actions = (
                space.actions(interaction.context)
                if space is not None
                else list(range(len(interaction.full_rewards)))
            )
            action, propensity = logging_policy.act(
                interaction.context, actions, rng
            )
            exploration.append(
                Interaction(
                    context=interaction.context,
                    action=action,
                    reward=interaction.full_rewards[action],
                    propensity=propensity,
                    timestamp=interaction.timestamp,
                )
            )
        span.set(rows=len(exploration))
    get_metrics().counter("harvest.rows", scenario="machinehealth").inc(
        len(exploration)
    )
    return exploration


def ground_truth_value(policy: Policy, full_dataset: Dataset) -> float:
    """Exact average reward of ``policy`` on a full-feedback dataset.

    Full feedback lets us just look up the reward of whatever action
    the policy picks — no off-policy correction needed.
    """
    if len(full_dataset) == 0:
        raise ValueError("empty dataset")
    space = full_dataset.action_space
    total = 0.0
    for interaction in full_dataset:
        if interaction.full_rewards is None:
            raise ValueError("ground truth requires full feedback")
        actions = (
            space.actions(interaction.context)
            if space is not None
            else list(range(len(interaction.full_rewards)))
        )
        chosen = policy.action(interaction.context, actions)
        total += interaction.full_rewards[chosen]
    return total / len(full_dataset)


def default_policy_reward(full_dataset: Dataset) -> float:
    """Average downtime of the wait-10 default used during collection."""
    if len(full_dataset) == 0:
        raise ValueError("empty dataset")
    total = 0.0
    for interaction in full_dataset:
        if interaction.full_rewards is None:
            raise ValueError("requires full feedback")
        total += interaction.full_rewards[DEFAULT_ACTION]
    return total / len(full_dataset)
