"""Machine-health scenario (Azure Compute), simulated.

The paper's flagship application: when a machine becomes unresponsive,
choose how long to wait (1–10 minutes) before rebooting it.  Azure's
logs were collected under the safe default of always waiting the
maximum, which reveals what *would* have happened at every shorter
wait — full feedback.  We reproduce that structure synthetically:

- :mod:`~repro.machinehealth.fleet` — machines with hardware/OS/
  failure-history features.
- :mod:`~repro.machinehealth.failures` — a recovery/downtime model in
  which the optimal wait time depends on the context.
- :mod:`~repro.machinehealth.dataset` — full-feedback datasets and the
  partial-feedback exploration simulation used in Figs. 3–4.
"""

from repro.machinehealth.fleet import FleetConfig, Machine, generate_fleet
from repro.machinehealth.failures import (
    DowntimeModel,
    FailureEvent,
    WAIT_TIMES,
    generate_failures,
)
from repro.machinehealth.dataset import (
    MachineHealthDataset,
    build_full_feedback_dataset,
    default_policy_reward,
    ground_truth_value,
    simulate_exploration,
)
from repro.machinehealth.eventlog import (
    IncidentRecord,
    dataset_from_incident_log,
    format_incident_line,
    parse_incident_line,
    read_incident_log,
    write_incident_log,
)

__all__ = [
    "FleetConfig",
    "Machine",
    "generate_fleet",
    "DowntimeModel",
    "FailureEvent",
    "WAIT_TIMES",
    "generate_failures",
    "MachineHealthDataset",
    "build_full_feedback_dataset",
    "simulate_exploration",
    "ground_truth_value",
    "default_policy_reward",
    "IncidentRecord",
    "format_incident_line",
    "parse_incident_line",
    "write_incident_log",
    "read_incident_log",
    "dataset_from_incident_log",
]
