"""Failure events and the downtime model.

When a machine stops responding, the controller waits up to ``w``
minutes; if the machine recovers on its own at minute ``t ≤ w``,
downtime is ``t``.  Otherwise the controller reboots at minute ``w``
and the machine is back after a reboot that itself takes time, so
downtime is ``w + reboot_minutes``.  Formally::

    downtime(w) = t_recover            if t_recover ≤ w
                = w + reboot_minutes   otherwise

The optimal wait therefore depends on how likely — and how fast — the
machine is to self-recover, which our model ties to the context:
transient network/firmware glitches on healthy machines recover fast
(wait!), kernel/disk failures on old, failure-prone machines don't
(reboot immediately!).  The paper's reward is total downtime *scaled by
the number of VMs* on the machine (Table 1), which we honor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machinehealth.fleet import FAILURE_KINDS, HARDWARE_SKUS, Machine
from repro.simsys.random_source import RandomSource

#: The paper's action set: wait {1, 2, ..., 9} minutes, plus the safe
#: default of 10 used during data collection.  Action id ``i`` means
#: "wait ``i + 1`` minutes".
WAIT_TIMES = tuple(range(1, 11))

#: Sentinel recovery time for machines that never self-recover.
NEVER = math.inf


@dataclass(frozen=True)
class FailureEvent:
    """One unresponsive-machine incident."""

    machine: Machine
    failure_kind: str
    recovery_minutes: float  # NEVER if the machine will not self-recover
    reboot_minutes: float

    def downtime(self, wait_minutes: float) -> float:
        """Downtime (minutes, scaled by VM count) for a given wait."""
        if wait_minutes <= 0:
            raise ValueError("wait must be positive")
        if self.recovery_minutes <= wait_minutes:
            raw = self.recovery_minutes
        else:
            raw = wait_minutes + self.reboot_minutes
        return raw * self.machine.n_vms

    def downtime_profile(self) -> list[float]:
        """Downtime for every wait time in :data:`WAIT_TIMES` — the
        full-feedback vector the Azure logs implicitly contain."""
        return [self.downtime(w) for w in WAIT_TIMES]

    def context_record(self) -> dict:
        """Raw context for this incident (machine + failure kind)."""
        record = self.machine.context_record()
        record["failure_kind"] = self.failure_kind
        return record


class DowntimeModel:
    """Generates context-dependent recovery behaviour.

    Three context-driven quantities:

    - ``recovery_probability``: transient kinds (network, firmware) on
      young, low-failure-count machines usually self-recover; kernel
      and disk failures rarely do, and age/history reduce the odds.
    - ``recovery_minutes``: lognormal, faster for network glitches.
    - ``reboot_minutes``: hardware-dependent (older SKUs POST slower).
    """

    def recovery_probability(self, machine: Machine, failure_kind: str) -> float:
        """Probability the incident resolves without a reboot."""
        base = {
            "network": 0.75,
            "firmware": 0.60,
            "disk": 0.25,
            "kernel": 0.15,
        }[failure_kind]
        # Aging and a failure-prone history both reduce self-recovery.
        penalty = 0.04 * machine.age_years + 0.03 * machine.prior_failures
        return max(0.02, min(0.95, base - penalty))

    def recovery_scale_minutes(self, machine: Machine, failure_kind: str) -> float:
        """Median self-recovery time, in minutes."""
        base = {
            "network": 1.5,
            "firmware": 3.0,
            "disk": 4.0,
            "kernel": 5.0,
        }[failure_kind]
        return base * (1.0 + 0.05 * machine.age_years)

    def reboot_minutes(self, machine: Machine, rng: RandomSource) -> float:
        """How long a reboot keeps the machine down."""
        generation = HARDWARE_SKUS.index(machine.hardware_sku)
        base = 9.0 - 1.2 * generation  # newer generations boot faster
        return max(2.0, base + rng.normal(0.0, 1.0))

    def failure_kind_probabilities(self, machine: Machine) -> list[float]:
        """Failure-kind mix; disk failures grow with age."""
        disk_weight = 1.0 + 0.3 * machine.age_years
        weights = [2.0, disk_weight, 1.0, 1.5]  # network, disk, kernel, firmware
        total = sum(weights)
        return [w / total for w in weights]

    def sample_event(self, machine: Machine, rng: RandomSource) -> FailureEvent:
        """Draw one incident for ``machine``."""
        kind = rng.choice(FAILURE_KINDS, p=self.failure_kind_probabilities(machine))
        if rng.bernoulli(self.recovery_probability(machine, kind)):
            scale = self.recovery_scale_minutes(machine, kind)
            # Lognormal with median `scale`; sigma wide enough that some
            # recoveries land past short waits (so waiting longer pays
            # for some contexts and not others).
            recovery = float(
                math.exp(rng.normal(math.log(scale), 0.6))
            )
        else:
            recovery = NEVER
        return FailureEvent(
            machine=machine,
            failure_kind=kind,
            recovery_minutes=recovery,
            reboot_minutes=self.reboot_minutes(machine, rng),
        )


def generate_failures(
    machines: list[Machine],
    n_events: int,
    randomness: RandomSource,
    model: DowntimeModel = None,
) -> list[FailureEvent]:
    """Draw ``n_events`` incidents across the fleet.

    Failure-prone machines (older, more prior failures) fail more
    often, mirroring real fleet telemetry.
    """
    if not machines:
        raise ValueError("no machines to fail")
    if n_events <= 0:
        raise ValueError("n_events must be positive")
    model = model or DowntimeModel()
    pick_rng = randomness.child("which-machine")
    event_rng = randomness.child("events")
    weights = [1.0 + m.prior_failures + m.age_years / 2.0 for m in machines]
    total = sum(weights)
    probabilities = [w / total for w in weights]
    events = []
    for _ in range(n_events):
        machine = pick_rng.choice(machines, p=probabilities)
        events.append(model.sample_event(machine, event_rng))
    return events
