"""Machine-health event log: the Azure-style text log, serializable.

The other substrates harvest from text logs (access logs, keyspace
events); this module gives the machine-health scenario the same
log-centric flow.  One line per incident, recording the machine's
slowly-varying context, the failure kind, the wait chosen, and the
observed downtime — plus, when the wait-10 default was in force, the
full downtime profile the paper exploits::

    <time> INCIDENT machine=<id> sku=<sku> os=<os> age=<y> vms=<n>
    prior=<k> kind=<kind> wait=<min> downtime=<vm-min>
    [profile=<d1>,...,<d10>]
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.machinehealth.failures import WAIT_TIMES, FailureEvent


@dataclass(frozen=True)
class IncidentRecord:
    """One parsed incident line."""

    time: float
    machine_id: int
    hardware_sku: str
    os_version: str
    age_years: float
    n_vms: int
    prior_failures: int
    failure_kind: str
    wait_minutes: int
    downtime: float
    profile: Optional[tuple[float, ...]] = None

    def context_record(self) -> dict:
        """Raw context for the feature encoder."""
        return {
            "machine_id": self.machine_id,
            "hardware_sku": self.hardware_sku,
            "os_version": self.os_version,
            "age_years": self.age_years,
            "n_vms": self.n_vms,
            "prior_failures": self.prior_failures,
            "failure_kind": self.failure_kind,
        }


def format_incident_line(
    time: float,
    event: FailureEvent,
    wait_minutes: int,
    include_profile: bool = True,
) -> str:
    """Serialize one incident under the given wait decision."""
    if wait_minutes not in WAIT_TIMES:
        raise ValueError(f"wait must be one of {WAIT_TIMES}")
    machine = event.machine
    downtime = event.downtime(wait_minutes)
    parts = [
        f"{time:.3f} INCIDENT",
        f"machine={machine.machine_id}",
        f"sku={machine.hardware_sku}",
        f"os={machine.os_version}",
        f"age={machine.age_years:g}",
        f"vms={machine.n_vms}",
        f"prior={machine.prior_failures}",
        f"kind={event.failure_kind}",
        f"wait={wait_minutes}",
        f"downtime={downtime:.3f}",
    ]
    if include_profile:
        profile = ",".join(f"{d:.3f}" for d in event.downtime_profile())
        parts.append(f"profile={profile}")
    return " ".join(parts)


_LINE_RE = re.compile(
    r"^(?P<time>[\d.]+) INCIDENT "
    r"machine=(?P<machine>\d+) "
    r"sku=(?P<sku>\S+) "
    r"os=(?P<os>\S+) "
    r"age=(?P<age>[\d.]+) "
    r"vms=(?P<vms>\d+) "
    r"prior=(?P<prior>\d+) "
    r"kind=(?P<kind>\S+) "
    r"wait=(?P<wait>\d+) "
    r"downtime=(?P<downtime>[\d.]+)"
    r"(?: profile=(?P<profile>[\d.,]+))?$"
)


def parse_incident_line(line: str) -> Optional[IncidentRecord]:
    """Parse one incident line; None for malformed lines."""
    match = _LINE_RE.match(line.strip())
    if match is None:
        return None
    profile_blob = match.group("profile")
    profile = None
    if profile_blob is not None:
        fields = profile_blob.split(",")
        if len(fields) != len(WAIT_TIMES):
            return None
        profile = tuple(float(f) for f in fields)
    wait = int(match.group("wait"))
    if wait not in WAIT_TIMES:
        return None
    return IncidentRecord(
        time=float(match.group("time")),
        machine_id=int(match.group("machine")),
        hardware_sku=match.group("sku"),
        os_version=match.group("os"),
        age_years=float(match.group("age")),
        n_vms=int(match.group("vms")),
        prior_failures=int(match.group("prior")),
        failure_kind=match.group("kind"),
        wait_minutes=wait,
        downtime=float(match.group("downtime")),
        profile=profile,
    )


def write_incident_log(
    events: Sequence[FailureEvent],
    path: str,
    wait_minutes: int = WAIT_TIMES[-1],
    include_profile: bool = True,
) -> None:
    """Write a fleet's incident history under a fixed wait policy."""
    with open(path, "w", encoding="utf-8") as f:
        for index, event in enumerate(events):
            f.write(
                format_incident_line(
                    float(index), event, wait_minutes, include_profile
                )
                + "\n"
            )


def read_incident_log(path: str) -> list[IncidentRecord]:
    """Read an incident log, skipping malformed lines."""
    records = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            record = parse_incident_line(line)
            if record is not None:
                records.append(record)
    return records


def dataset_from_incident_log(records: Sequence[IncidentRecord]):
    """Scavenge parsed incident records into a full-feedback dataset.

    Records must carry the downtime profile (logged under the wait-10
    default); the result is interchangeable with
    :func:`repro.machinehealth.dataset.build_full_feedback_dataset`.
    """
    from repro.core.features import FeatureEncoder
    from repro.core.types import ActionSpace, Dataset, Interaction, RewardRange
    from repro.machinehealth.dataset import DOWNTIME_CAP

    if not records:
        raise ValueError("no incident records to harvest")
    encoder = FeatureEncoder(
        categorical=["hardware_sku", "os_version", "failure_kind"],
        numeric=["age_years", "n_vms", "prior_failures"],
        standardize=True,
    )
    encoder.fit([r.context_record() for r in records])
    dataset = Dataset(
        action_space=ActionSpace(
            len(WAIT_TIMES), labels=[f"wait-{w}min" for w in WAIT_TIMES]
        ),
        reward_range=RewardRange(0.0, DOWNTIME_CAP, maximize=False),
    )
    for record in records:
        if record.profile is None:
            raise ValueError(
                "full-feedback harvesting needs the downtime profile; "
                "this log was collected without it"
            )
        profile = [min(d, DOWNTIME_CAP) for d in record.profile]
        action = WAIT_TIMES.index(record.wait_minutes)
        dataset.append(
            Interaction(
                context=encoder.encode(record.context_record()),
                action=action,
                reward=profile[action],
                propensity=1.0,
                timestamp=record.time,
                full_rewards=profile,
            )
        )
    return dataset
