"""Synthetic machine fleet.

Azure Compute "already logs detailed hardware/configuration information
about each machine as well as context on past failures; neither is
fast-changing" (§3).  We generate machines with exactly those kinds of
slowly-varying features.  The features matter: the downtime model in
:mod:`repro.machinehealth.failures` makes the recovery behaviour — and
hence the optimal wait time — depend on them, so a contextual policy
has something real to learn.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simsys.random_source import RandomSource

HARDWARE_SKUS = ("gen4-compute", "gen5-compute", "gen5-memory", "gen6-compute")
OS_VERSIONS = ("os-2012r2", "os-2016", "os-2019")
FAILURE_KINDS = ("network", "disk", "kernel", "firmware")


@dataclass(frozen=True)
class Machine:
    """One physical machine and its slowly-varying context."""

    machine_id: int
    hardware_sku: str
    os_version: str
    age_years: float
    n_vms: int
    prior_failures: int

    def context_record(self) -> dict:
        """The raw (pre-encoding) context record, as a log would hold it."""
        return {
            "machine_id": self.machine_id,
            "hardware_sku": self.hardware_sku,
            "os_version": self.os_version,
            "age_years": self.age_years,
            "n_vms": self.n_vms,
            "prior_failures": self.prior_failures,
        }


@dataclass(frozen=True)
class FleetConfig:
    """Knobs for fleet generation."""

    n_machines: int = 1000
    max_age_years: float = 6.0
    max_vms: int = 20
    max_prior_failures: int = 8


def generate_fleet(config: FleetConfig, randomness: RandomSource) -> list[Machine]:
    """Generate a fleet of machines with mixed hardware and history.

    Older SKUs skew toward higher ages and more prior failures, the
    correlation a real fleet would show.
    """
    if config.n_machines <= 0:
        raise ValueError("fleet must contain at least one machine")
    machines = []
    sku_rng = randomness.child("sku")
    attr_rng = randomness.child("attributes")
    for machine_id in range(config.n_machines):
        sku = sku_rng.choice(HARDWARE_SKUS, p=[0.25, 0.35, 0.15, 0.25])
        generation = HARDWARE_SKUS.index(sku)
        # Newer generations are younger on average.
        age_scale = max(0.5, (3 - generation)) / 3.0
        age = min(
            config.max_age_years,
            attr_rng.exponential(config.max_age_years * age_scale / 2.0),
        )
        prior_failures = min(
            config.max_prior_failures,
            int(attr_rng.exponential(1.0 + age / 2.0)),
        )
        machines.append(
            Machine(
                machine_id=machine_id,
                hardware_sku=sku,
                os_version=attr_rng.choice(OS_VERSIONS, p=[0.2, 0.45, 0.35]),
                age_years=round(age, 2),
                n_vms=attr_rng.randint(1, config.max_vms + 1),
                prior_failures=prior_failures,
            )
        )
    return machines
