"""Ablation abl-pool: sampled-eviction fidelity knobs.

Two Redis implementation details materially affect how fast a good
eviction policy can act on its preferences, and therefore how large
Table 3's freq/size margin can get on a sampled-eviction cache:

- ``maxmemory-samples`` (the per-eviction candidate sample size);
- the eviction pool (Redis >= 3.0), which remembers the best victims
  seen in earlier samples.

We also ablate the freq/size *rate estimator*: the naive ``count/age``
estimate is infinitely optimistic about freshly inserted items, which
shields new large items exactly when evicting them is cheapest.
"""

import pytest

from repro.cache import (
    BigSmallWorkload,
    CacheSim,
    freq_size_policy,
    naive_freq_size_policy,
    random_eviction_policy,
)
from repro.simsys.random_source import RandomSource

from benchmarks.conftest import print_table

CAPACITY = 700
N_REQUESTS = 40000


def deploy(policy, sample_size, pool_size, seed=3):
    workload = BigSmallWorkload(randomness=RandomSource(seed, _name="wl"))
    sim = CacheSim(
        CAPACITY, policy, sample_size=sample_size, seed=seed,
        pool_size=pool_size,
    )
    return sim.run(workload.requests(N_REQUESTS), keep_log=False).hit_rate


@pytest.fixture(scope="module")
def study():
    rows = {}
    rows["random (k=5)"] = deploy(random_eviction_policy(), 5, 0)
    for k in (5, 10):
        for pool in (0, 16):
            rows[f"freq/size (k={k}, pool={pool})"] = deploy(
                freq_size_policy(), k, pool
            )
    rows["freq/size-naive (k=10, pool=16)"] = deploy(
        naive_freq_size_policy(), 10, 16
    )
    return rows


class TestEvictionPoolAblation:
    def test_larger_sample_helps(self, study):
        assert (
            study["freq/size (k=10, pool=0)"]
            >= study["freq/size (k=5, pool=0)"]
        )

    def test_pool_helps_at_fixed_sample(self, study):
        assert (
            study["freq/size (k=10, pool=16)"]
            >= study["freq/size (k=10, pool=0)"] - 0.005
        )

    def test_best_config_beats_random_clearly(self, study):
        assert (
            study["freq/size (k=10, pool=16)"]
            > study["random (k=5)"] + 0.03
        )

    def test_naive_rate_estimate_costs_hit_rate(self, study):
        """Fresh-item optimism is worth ~a point of hit rate: the
        smoothed estimator beats the naive one at identical settings."""
        assert (
            study["freq/size (k=10, pool=16)"]
            > study["freq/size-naive (k=10, pool=16)"]
        )

    def test_even_weakest_freq_size_beats_random(self, study):
        assert study["freq/size (k=5, pool=0)"] > study["random (k=5)"]

    def test_print_table(self, study):
        print_table(
            "Ablation abl-pool: eviction fidelity knobs vs hit rate",
            ["configuration", "hit rate"],
            [[name, f"{rate:.1%}"] for name, rate in study.items()],
        )

    def test_benchmark_pooled_eviction(self, benchmark):
        workload = BigSmallWorkload(randomness=RandomSource(5, _name="wl"))
        requests = list(workload.requests(4000))

        def run_once():
            sim = CacheSim(
                CAPACITY, freq_size_policy(), sample_size=10, seed=5,
                pool_size=16,
            )
            return sim.run(requests, keep_log=False)

        benchmark.pedantic(run_once, rounds=2, iterations=1)
