"""Extension ext-replay: model-based evaluation closes the caching loop.

Table 3 leaves the caching scenario unsolved: the greedy CB reward
cannot rank freq/size above random, and per-decision IPS cannot see
long-term effects.  §2's taxonomy offers the way out: "model-based
approaches model the system workings and evaluate a policy against
this model" — biased exactly insofar as the model is wrong.

For caches the model is nearly free: the GET stream *is* the workload
(requests don't depend on eviction decisions), so replaying the logged
requests through a simulated cache under a candidate policy predicts
its hit rate offline.  We verify:

- replay predictions match deployment ground truth per policy;
- replay (unlike the greedy CB objective) ranks freq/size first from
  the same logs Table 3 harvested;
- the greedy CB reward actually *is* optimized by the CB policy —
  its failure is objective mismatch, not optimization error.
"""

import numpy as np
import pytest

from repro.cache import (
    BigSmallWorkload,
    CacheSim,
    eviction_dataset_from_log,
    freq_size_policy,
    lru_policy,
    random_eviction_policy,
    replay_rank,
    train_cb_eviction,
)
from repro.cache.eviction import ScoredEvictionPolicy
from repro.core import IPSEstimator
from repro.simsys.random_source import RandomSource

from benchmarks.conftest import print_table

CAPACITY = 700
SAMPLE_SIZE = 10
POOL_SIZE = 16
N_REQUESTS = 40000


def deploy(policy, seed=3):
    pool = POOL_SIZE if isinstance(policy, ScoredEvictionPolicy) else 0
    workload = BigSmallWorkload(randomness=RandomSource(seed, _name="wl"))
    sim = CacheSim(
        CAPACITY, policy, sample_size=SAMPLE_SIZE, seed=seed, pool_size=pool
    )
    return sim.run(workload.requests(N_REQUESTS), keep_log=False).hit_rate


@pytest.fixture(scope="module")
def study():
    workload = BigSmallWorkload(randomness=RandomSource(11, _name="wl"))
    collector = CacheSim(
        CAPACITY, random_eviction_policy(), sample_size=SAMPLE_SIZE, seed=11
    )
    collection = collector.run(workload.requests(N_REQUESTS))
    eviction_dataset = eviction_dataset_from_log(
        collection.log_lines, sample_size=SAMPLE_SIZE
    )
    cb = train_cb_eviction(eviction_dataset)
    candidates = {
        "Random": random_eviction_policy(),
        "LRU": lru_policy(),
        "CB policy": cb,
        "Freq/size": freq_size_policy(),
    }
    replay_scores = dict(
        (policy.name, score)
        for policy, score in replay_rank(
            collection.log_lines,
            list(candidates.values()),
            CAPACITY,
            sample_size=SAMPLE_SIZE,
            pool_size=POOL_SIZE,
            seed=11,
        )
    )
    deployed = {name: deploy(policy) for name, policy in candidates.items()}
    # IPS value of each policy's *greedy objective* (time to next access)
    # on the eviction dataset — the quantity CB actually optimizes.
    ips = IPSEstimator()
    greedy_values = {
        name: ips.estimate(policy, eviction_dataset).value
        for name, policy in candidates.items()
        if name != "Random"
    }
    greedy_values["Random"] = float(eviction_dataset.rewards().mean())
    return candidates, replay_scores, deployed, greedy_values


class TestReplayExtension:
    def test_replay_matches_deployment(self, study):
        candidates, replay_scores, deployed, _ = study
        for name, policy in candidates.items():
            assert replay_scores[policy.name] == pytest.approx(
                deployed[name], abs=0.03
            )

    def test_replay_ranks_freq_size_first(self, study):
        candidates, replay_scores, _, _ = study
        fs_name = candidates["Freq/size"].name
        assert replay_scores[fs_name] == max(replay_scores.values())

    def test_greedy_objective_misleads(self, study):
        """The CB policy scores at least as well as freq/size on the
        greedy time-to-next-access objective, yet loses on hit rate —
        the objective, not the optimizer, is what fails."""
        _, _, deployed, greedy_values = study
        assert greedy_values["CB policy"] >= 0.95 * greedy_values["Freq/size"]
        assert deployed["CB policy"] < deployed["Freq/size"]

    def test_replay_and_truth_rank_identically(self, study):
        candidates, replay_scores, deployed, _ = study
        replay_order = sorted(
            candidates, key=lambda n: replay_scores[candidates[n].name]
        )
        true_order = sorted(candidates, key=lambda n: deployed[n])
        assert replay_order[-1] == true_order[-1] == "Freq/size"

    def test_print_table(self, study):
        candidates, replay_scores, deployed, greedy_values = study
        rows = [
            [
                name,
                f"{replay_scores[candidates[name].name]:.1%}",
                f"{deployed[name]:.1%}",
                f"{greedy_values[name]:.0f}",
            ]
            for name in candidates
        ]
        print_table(
            "Extension ext-replay: replay-predicted vs deployed hit "
            "rate, and the greedy objective each policy achieves",
            ["Policy", "replay hit rate", "deployed hit rate",
             "greedy reward (IPS)"],
            rows,
        )

    def test_benchmark_replay(self, study, benchmark):
        workload = BigSmallWorkload(randomness=RandomSource(9, _name="wl"))
        collector = CacheSim(
            CAPACITY, random_eviction_policy(), sample_size=SAMPLE_SIZE,
            seed=9,
        )
        lines = collector.run(workload.requests(4000)).log_lines

        def replay_once():
            return replay_rank(
                lines, [lru_policy()], CAPACITY, sample_size=SAMPLE_SIZE,
                seed=9,
            )

        benchmark.pedantic(replay_once, rounds=2, iterations=1)
