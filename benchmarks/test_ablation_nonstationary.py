"""Ablation abl-drift: non-stationary rewards and incremental learning.

§5 "Violations of independence": A2 (i.i.d. rewards) "is violated, for
example, when the workload or environment changes.  Like prior work,
we can address this by using incremental learning algorithms that
continuously update the policy (i.e., repeating steps 1–3 of our
methodology)."

Setup: midway through a deployment, server 1 (the fast server) suffers
a permanent 3x regression (a bad rollout).  We deploy three policies
through the drift:

- the *frozen* CB policy trained on pre-drift logs;
- the same policy wrapped with ε-greedy exploration and an *online
  learner* that keeps updating from its own exploration data;
- least-loaded (load-reactive, so naturally drift-proof) as reference.

Expected shape: pre-drift the frozen policy is fine; post-drift it
keeps routing to the now-slow server and degrades sharply, while the
incremental learner recovers to near the load-reactive reference.
"""

import numpy as np
import pytest

from repro.chaos import EnvironmentDrift
from repro.core import EpsilonGreedyPolicy, UniformRandomPolicy
from repro.core.features import Featurizer, interaction_features
from repro.core.learners.cb import EpsilonGreedyLearner
from repro.core.types import Interaction
from repro.loadbalance import LoadBalancerSim, Workload, fig5_servers
from repro.loadbalance.harvest import dataset_from_access_log, train_cb_policy
from repro.loadbalance.policies import least_loaded_policy, random_policy
from repro.simsys.random_source import RandomSource

from benchmarks.conftest import print_table

N_DEPLOY = 16000
DRIFT_MULTIPLIER = 3.0
#: Requests arrive at rate 10/s, so the drift lands mid-deployment.
DRIFT_TIME = N_DEPLOY / 10.0 / 2.0
PAIRS = [("req_weight", "conns_0"), ("req_weight", "conns_1")]


def split_latencies(result, n=N_DEPLOY):
    """(pre-drift, post-drift) mean latency from one deployment."""
    latencies = np.array(
        [e.upstream_response_time for e in result.access_log]
    )
    times = np.array([e.time for e in result.access_log])
    pre = latencies[(times < DRIFT_TIME) & (times > DRIFT_TIME * 0.1)]
    post = latencies[times >= DRIFT_TIME * 1.1]
    return float(pre.mean()), float(post.mean())


def deploy(policy, observer=None, seed=7):
    workload = Workload(10.0, randomness=RandomSource(seed, _name="wl"))
    drift = EnvironmentDrift(DRIFT_TIME, {0: DRIFT_MULTIPLIER})
    sim = LoadBalancerSim(
        fig5_servers(), policy, workload, seed=seed, chaos=drift
    )
    return sim.run(N_DEPLOY, observer=observer)


class IncrementalCBDeployment:
    """A CB policy that keeps learning from its own deployment.

    Warm-started from the offline exploration log, deployed with an ε
    floor so its own logs stay harvestable, and updated online through
    the proxy's observer hook — the continuous-loop version of the
    methodology.
    """

    def __init__(self, warmstart_dataset, epsilon=0.1):
        self.learner = EpsilonGreedyLearner(
            2, featurizer=Featurizer(64), learning_rate=0.5, maximize=False
        )
        augmented = [
            Interaction(
                interaction_features(i.context, PAIRS), i.action,
                i.reward, i.propensity, i.timestamp,
            )
            for i in warmstart_dataset
        ]
        for _ in range(3):
            for interaction in augmented:
                self.learner.observe(interaction)
        self.epsilon = epsilon

    def policy(self):
        from repro.core.policies import GreedyRegressorPolicy

        greedy = GreedyRegressorPolicy(
            lambda c, a: self.learner.predict(
                interaction_features(c, PAIRS), a
            ),
            maximize=False,
            name="CB incremental",
        )
        return EpsilonGreedyPolicy(greedy, self.epsilon, name="CB incremental")

    def observe(self, context, action, latency, propensity):
        self.learner.observe(
            Interaction(
                interaction_features(context, PAIRS), action, latency,
                max(propensity, 1e-3),
            )
        )


@pytest.fixture(scope="module")
def study():
    # Offline phase: collect pre-drift logs, train the CB policy.
    workload = Workload(10.0, randomness=RandomSource(42, _name="wl"))
    collector = LoadBalancerSim(
        fig5_servers(), random_policy(), workload, seed=42
    )
    dataset = dataset_from_access_log(
        collector.run(12000).access_log, logging_policy=UniformRandomPolicy()
    )

    frozen = train_cb_policy(dataset, n_servers=2, name="CB frozen")
    incremental = IncrementalCBDeployment(dataset)

    results = {
        "CB frozen": split_latencies(deploy(frozen)),
        "CB incremental": split_latencies(
            deploy(incremental.policy(), observer=incremental.observe)
        ),
        "least-loaded": split_latencies(deploy(least_loaded_policy())),
    }
    return results


class TestNonstationaryAblation:
    def test_frozen_fine_before_drift(self, study):
        pre_frozen = study["CB frozen"][0]
        pre_reference = study["least-loaded"][0]
        assert pre_frozen < pre_reference * 1.05

    def test_frozen_degrades_after_drift(self, study):
        pre, post = study["CB frozen"]
        assert post > 1.5 * pre

    def test_incremental_recovers(self, study):
        """The §5 fix: continuous updates track the new environment —
        post-drift the incremental policy is much closer to the
        load-reactive reference than the frozen one is."""
        frozen_post = study["CB frozen"][1]
        incremental_post = study["CB incremental"][1]
        reference_post = study["least-loaded"][1]
        assert incremental_post < frozen_post
        frozen_gap = frozen_post - reference_post
        incremental_gap = incremental_post - reference_post
        assert incremental_gap < 0.5 * frozen_gap

    def test_exploration_tax_is_small_predrift(self, study):
        """The ε floor costs a little pre-drift — that's the price of
        staying adaptable."""
        pre_frozen = study["CB frozen"][0]
        pre_incremental = study["CB incremental"][0]
        assert pre_incremental < 1.3 * pre_frozen

    def test_print_table(self, study):
        rows = [
            [name, f"{pre:.3f}s", f"{post:.3f}s", f"{post / pre:.2f}x"]
            for name, (pre, post) in study.items()
        ]
        print_table(
            f"Ablation abl-drift: mean latency before/after a "
            f"{DRIFT_MULTIPLIER:g}x regression of server 1 at "
            f"t={DRIFT_TIME:.0f}s",
            ["policy", "pre-drift", "post-drift", "blow-up"],
            rows,
        )

    def test_benchmark_incremental_observe(self, benchmark):
        learner = EpsilonGreedyLearner(2, maximize=False)
        interaction = Interaction(
            {"conns_0": 1.0, "conns_1": 2.0, "req_weight": 1.0}, 0, 0.4, 0.5
        )
        benchmark(learner.observe, interaction)
