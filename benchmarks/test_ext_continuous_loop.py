"""Extension ext-loop: continuously repeating steps 1–3.

§3: "we may want to repeat steps 1-3 to continuously optimize the
system" — and §4's caveat that the supervised ceiling "cannot be
deployed long-term: as soon as we integrate it into the system, new
interactions would only provide partial feedback."

This bench runs that life-cycle on machine health:

- round 0 deploys the safe wait-10 default (full feedback — but we
  *only* let the pipeline see what the deployed policy observed, i.e.
  partial feedback once we switch to CB);
- each subsequent round deploys the current CB policy with an ε-greedy
  floor (so its own logs stay harvestable), harvests that round's log,
  and updates the learner — scavenge → infer → evaluate → deploy,
  repeated.

Assertions: downtime improves over rounds, the deployed policy's logs
keep a positive propensity floor, and the loop converges near (but not
past) the undeployable supervised ceiling.
"""

import numpy as np
import pytest

from repro.core import SupervisedTrainer
from repro.core.learners.cb import EpsilonGreedyLearner
from repro.core.types import Dataset, Interaction
from repro.machinehealth import (
    build_full_feedback_dataset,
    default_policy_reward,
    ground_truth_value,
    simulate_exploration,
)

from benchmarks.conftest import print_table

N_ROUNDS = 6
INCIDENTS_PER_ROUND = 3000
EPSILON = 0.2
N_ACTIONS = 10
#: Importance weights from an ε-greedy log reach |A|/ε = 50; clipping
#: at 10 trades a little bias for the stability a continuously
#: retrained production policy needs.
IMPORTANCE_CLIP = 10.0


@pytest.fixture(scope="module")
def study():
    # A long stream of incidents; each round consumes a fresh slice
    # (the world keeps failing machines), plus a held-out test slice.
    scenario = build_full_feedback_dataset(
        n_events=INCIDENTS_PER_ROUND * (N_ROUNDS + 2), seed=29
    )
    slices = [
        scenario.full[i * INCIDENTS_PER_ROUND:(i + 1) * INCIDENTS_PER_ROUND]
        for i in range(N_ROUNDS + 2)
    ]
    test = slices[-1]
    supervised_ceiling = ground_truth_value(
        SupervisedTrainer(N_ACTIONS, maximize=False)
        .fit(slices[-2])
        .policy(),
        test,
    )

    rng = np.random.default_rng(0)
    learner = EpsilonGreedyLearner(
        N_ACTIONS, maximize=False, learning_rate=0.5,
        importance_clip=IMPORTANCE_CLIP,
    )
    rounds = []
    min_propensities = []
    for round_index in range(N_ROUNDS):
        fresh = slices[round_index]
        if round_index == 0:
            # Bootstrap round: uniform exploration (e.g. a brief
            # randomized trial), as in the paper's simulations.
            log = simulate_exploration(fresh, rng)
        else:
            deployed = learner.exploration_policy(EPSILON)
            log = simulate_exploration(fresh, rng, logging_policy=deployed)
        min_propensities.append(log.min_propensity())
        learner.observe_all(log)
        deployed_value = ground_truth_value(learner.policy(), test)
        live_downtime = float(log.rewards().mean())
        rounds.append((round_index, live_downtime, deployed_value))
    default = default_policy_reward(test)
    return rounds, min_propensities, supervised_ceiling, default


class TestContinuousLoop:
    def test_live_downtime_improves_over_rounds(self, study):
        rounds, _, _, _ = study
        live = [r[1] for r in rounds]
        # Round 0 is uniform exploration (expensive); later rounds
        # exploit with only an ε tax.
        assert live[-1] < live[0]

    def test_policy_quality_improves(self, study):
        rounds, _, _, _ = study
        quality = [r[2] for r in rounds]
        assert quality[-1] <= quality[0]

    def test_final_policy_beats_default_clearly(self, study):
        rounds, _, _, default = study
        assert rounds[-1][2] < 0.85 * default

    def test_converges_near_but_not_past_ceiling(self, study):
        rounds, _, ceiling, _ = study
        final = rounds[-1][2]
        assert final <= 1.25 * ceiling
        assert final >= ceiling * 0.97  # partial feedback keeps a gap

    def test_deployed_logs_stay_harvestable(self, study):
        """Every post-bootstrap round logs with the ε-greedy floor
        ε/|A| — the propensities that keep the loop alive."""
        _, min_propensities, _, _ = study
        for p in min_propensities[1:]:
            assert p == pytest.approx(EPSILON / N_ACTIONS)

    def test_exploitation_rounds_cheaper_than_bootstrap(self, study):
        """Live downtime while logging: once a decent policy is
        deployed (round ≥ 2; round 1 still runs the bootstrap-trained
        one), the ε-greedy rounds pay less than uniform exploration."""
        rounds, _, _, _ = study
        bootstrap_cost = rounds[0][1]
        later_costs = [r[1] for r in rounds[2:]]
        assert float(np.mean(later_costs)) < bootstrap_cost

    def test_print_table(self, study):
        rounds, _, ceiling, default = study
        rows = [
            [index, f"{live:.1f}", f"{deployed:.1f}",
             f"{deployed / ceiling:.3f}"]
            for index, live, deployed in rounds
        ]
        print_table(
            f"Extension ext-loop: continuous optimization "
            f"(ceiling {ceiling:.1f}, default {default:.1f} VM-min)",
            ["round", "live downtime while logging",
             "deployed-policy downtime", "ratio to ceiling"],
            rows,
        )

    def test_benchmark_one_round(self, benchmark):
        scenario = build_full_feedback_dataset(n_events=1000, seed=31)
        rng = np.random.default_rng(1)
        learner = EpsilonGreedyLearner(N_ACTIONS, maximize=False)

        def one_round():
            log = simulate_exploration(scenario.full, rng)
            learner.observe_all(log)

        benchmark.pedantic(one_round, rounds=2, iterations=1)
