"""Ablation abl-ci: which confidence interval should you trust?

Fig. 3 draws error bars from a thousand simulations — a luxury only
synthetic full-feedback data affords.  In production you get *one* log
and must quote an interval computed from it.  This ablation measures,
on the machine-health scenario, the actual coverage and width of the
candidate intervals at ~95% nominal:

- normal approximation (mean ± 1.96·SE of the IPS terms);
- percentile bootstrap over the IPS terms;
- empirical Bernstein (distribution-free, needs the term range);
- Hoeffding (distribution-free, worst-case).

Expected: normal and bootstrap are near-nominal and tight; Bernstein
is valid but wider; Hoeffding is extremely conservative.  (The paper
computes intervals of the first kind implicitly when it concludes "with
high confidence" from 3500 points.)
"""

import numpy as np
import pytest

from repro.core.bootstrap import bootstrap_interval_from_terms
from repro.core.estimators.bounds import (
    empirical_bernstein_interval,
    hoeffding_interval,
)
from repro.core.learners.cb import EpsilonGreedyLearner
from repro.machinehealth import build_full_feedback_dataset, simulate_exploration

from benchmarks.conftest import print_table

N_TEST = 1000
N_REPLICATIONS = 300
N_ACTIONS = 10
DOWNTIME_CAP = 600.0


@pytest.fixture(scope="module")
def study():
    scenario = build_full_feedback_dataset(
        n_events=10000, n_machines=800, seed=13
    )
    train, test = scenario.split(0.5)
    rng = np.random.default_rng(0)
    learner = EpsilonGreedyLearner(N_ACTIONS, maximize=False,
                                   learning_rate=0.5)
    for _ in range(3):
        learner.observe_all(simulate_exploration(train, rng))
    policy = learner.policy()

    full_rewards = np.array([i.full_rewards for i in test])
    chosen = np.array(
        [policy.action(i.context, list(range(N_ACTIONS))) for i in test]
    )
    truth = float(full_rewards[np.arange(len(test)), chosen].mean())

    # Max possible IPS term: reward cap / propensity (1/10).
    term_range = DOWNTIME_CAP * N_ACTIONS

    methods = ["normal", "bootstrap", "bernstein", "hoeffding"]
    covered = {m: 0 for m in methods}
    widths = {m: [] for m in methods}
    n_test_total = len(test)
    for rep in range(N_REPLICATIONS):
        idx = rng.choice(n_test_total, size=N_TEST, replace=False)
        actions = rng.integers(0, N_ACTIONS, size=N_TEST)
        terms = (
            (actions == chosen[idx])
            * full_rewards[idx, actions]
            * N_ACTIONS
        ).astype(float)
        mean = float(terms.mean())
        se = float(terms.std(ddof=1) / np.sqrt(N_TEST))
        intervals = {
            "normal": (mean - 1.96 * se, mean + 1.96 * se),
        }
        boot = bootstrap_interval_from_terms(
            terms, delta=0.05, n_boot=400, rng=rng
        )
        intervals["bootstrap"] = (boot.low, boot.high)
        bern = empirical_bernstein_interval(terms, 0.05, term_range)
        intervals["bernstein"] = (bern.low, bern.high)
        hoef = hoeffding_interval(terms, 0.05, term_range)
        intervals["hoeffding"] = (hoef.low, hoef.high)
        for method, (lo, hi) in intervals.items():
            covered[method] += int(lo <= truth <= hi)
            widths[method].append(hi - lo)
    coverage = {m: covered[m] / N_REPLICATIONS for m in methods}
    mean_width = {m: float(np.mean(widths[m])) for m in methods}
    return coverage, mean_width, truth


class TestCICoverage:
    def test_normal_near_nominal(self, study):
        coverage, _, _ = study
        assert coverage["normal"] >= 0.88

    def test_bootstrap_near_nominal(self, study):
        coverage, _, _ = study
        assert coverage["bootstrap"] >= 0.88

    def test_distribution_free_intervals_are_valid(self, study):
        """Bernstein/Hoeffding promise ≥95% and must deliver it."""
        coverage, _, _ = study
        assert coverage["bernstein"] >= 0.95
        assert coverage["hoeffding"] >= 0.95

    def test_width_ordering(self, study):
        """Tightness: normal ≈ bootstrap < Bernstein < Hoeffding."""
        _, width, _ = study
        assert width["bootstrap"] < 1.5 * width["normal"]
        assert width["normal"] < width["bernstein"]
        assert width["bernstein"] < width["hoeffding"]

    def test_hoeffding_practically_useless_here(self, study):
        """With term range 6000, the Hoeffding radius dwarfs the truth —
        why the paper's style of interval (CLT-based) is what ships."""
        _, width, truth = study
        assert width["hoeffding"] > 2 * truth

    def test_print_table(self, study):
        coverage, width, truth = study
        rows = [
            [m, f"{coverage[m]:.1%}", f"{width[m]:.1f}"]
            for m in ("normal", "bootstrap", "bernstein", "hoeffding")
        ]
        print_table(
            f"Ablation abl-ci: 95% interval coverage/width at N={N_TEST} "
            f"(truth {truth:.1f} VM-min, {N_REPLICATIONS} replications)",
            ["method", "coverage", "mean width"],
            rows,
        )

    def test_benchmark_bootstrap_kernel(self, benchmark):
        rng = np.random.default_rng(1)
        terms = rng.exponential(50.0, size=2000)
        benchmark(
            bootstrap_interval_from_terms, terms, 0.05, 500,
            np.random.default_rng(2),
        )
