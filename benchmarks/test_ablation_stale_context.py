"""Ablation abl-stale: CB robustness to stale load information.

§5 "Data collection and distributed state": balancers may not see
fresh backend state — "collecting this data will inevitably result in
stale or incomplete contexts.  We suspect that CB algorithms can
naturally tolerate staleness."

We deploy the load-aware policies with connection counts refreshed only
every S virtual seconds and measure online latency vs staleness.
Expected shape: mild staleness costs little (the paper's suspicion);
extreme staleness degrades load-aware policies toward — but, thanks to
the learned base-latency preference, not beyond — load-oblivious
routing.
"""

import numpy as np
import pytest

from repro.core import UniformRandomPolicy
from repro.loadbalance import LoadBalancerSim, Workload, fig5_servers
from repro.loadbalance.harvest import dataset_from_access_log, train_cb_policy
from repro.loadbalance.policies import least_loaded_policy, random_policy
from repro.simsys.random_source import RandomSource

from benchmarks.conftest import print_table

STALENESS = [0.0, 0.5, 2.0, 8.0, 32.0]
N_ONLINE = 8000


def run_online(policy, staleness, seeds=(7, 8)):
    latencies = []
    for seed in seeds:
        workload = Workload(10.0, randomness=RandomSource(seed, _name="wl"))
        sim = LoadBalancerSim(
            fig5_servers(), policy, workload, seed=seed,
            context_refresh_interval=staleness,
        )
        latencies.append(sim.run(N_ONLINE).mean_latency)
    return float(np.mean(latencies))


@pytest.fixture(scope="module")
def study():
    # Train the CB policy on fresh-context exploration data.
    workload = Workload(10.0, randomness=RandomSource(42, _name="wl"))
    collector = LoadBalancerSim(
        fig5_servers(), random_policy(), workload, seed=42
    )
    dataset = dataset_from_access_log(
        collector.run(12000).access_log, logging_policy=UniformRandomPolicy()
    )
    cb = train_cb_policy(dataset, n_servers=2)

    curves = {"least-loaded": {}, "CB policy": {}}
    for staleness in STALENESS:
        curves["least-loaded"][staleness] = run_online(
            least_loaded_policy(), staleness
        )
        curves["CB policy"][staleness] = run_online(cb, staleness)
    baseline_random = run_online(random_policy(), 0.0)
    return curves, baseline_random


class TestStaleContextAblation:
    def test_fresh_context_is_best(self, study):
        curves, _ = study
        for name, curve in curves.items():
            assert curve[0.0] <= min(curve.values()) + 1e-9

    def test_mild_staleness_tolerated(self, study):
        """The §5 suspicion: CB tolerates staleness.  Half-second-stale
        load data costs the CB policy < 10% extra latency."""
        curves, _ = study
        cb = curves["CB policy"]
        assert cb[0.5] < 1.10 * cb[0.0]

    def test_staleness_degrades_monotonically_ish(self, study):
        curves, _ = study
        for curve in curves.values():
            assert curve[32.0] > curve[0.0]

    def test_cb_degrades_more_gracefully_than_least_loaded(self, study):
        """With stale loads the CB policy still has its learned
        base-latency/type preferences; least-loaded becomes noise."""
        curves, _ = study
        cb_blowup = curves["CB policy"][32.0] / curves["CB policy"][0.0]
        ll_blowup = (
            curves["least-loaded"][32.0] / curves["least-loaded"][0.0]
        )
        assert cb_blowup < ll_blowup

    def test_moderately_stale_cb_still_beats_random(self, study):
        """Up to ~2s-stale load data the CB policy still beats load-
        oblivious routing; beyond that, deterministic policies herd
        (all requests between refreshes see the same snapshot and pile
        onto one server) and staleness must be engineered around —
        the §5 'assist the learner' discussion."""
        curves, baseline_random = study
        assert curves["CB policy"][2.0] < baseline_random
        # The herding regime exists and is visible:
        assert curves["CB policy"][32.0] > baseline_random

    def test_print_table(self, study):
        curves, baseline_random = study
        rows = [
            [s, f"{curves['least-loaded'][s]:.3f}s",
             f"{curves['CB policy'][s]:.3f}s"]
            for s in STALENESS
        ]
        rows.append(["(random, fresh)", f"{baseline_random:.3f}s", "-"])
        print_table(
            "Ablation abl-stale: online latency vs context staleness "
            "(refresh interval, virtual seconds)",
            ["staleness", "least-loaded", "CB policy"],
            rows,
        )

    def test_benchmark_stale_run(self, benchmark):
        def run_small():
            workload = Workload(10.0, randomness=RandomSource(1, _name="wl"))
            sim = LoadBalancerSim(
                fig5_servers(), least_loaded_policy(), workload, seed=1,
                context_refresh_interval=2.0,
            )
            return sim.run(1000)

        benchmark.pedantic(run_small, rounds=1, iterations=1)
