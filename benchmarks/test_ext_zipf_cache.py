"""Extension ext-zipf: the cache substrate on a classic workload.

Table 3's big/small workload is adversarial by design.  This bench
validates the cache substrate on the standard Zipf-popularity workload
(where recency/frequency heuristics *should* win), both as a sanity
check of the simulator and to show the freq/size policy is not a
one-trick pony:

- LRU and LFU beat random eviction (the textbook result);
- with heterogeneous item sizes, freq/size is at least competitive
  with the best classic heuristic.
"""

import pytest

from repro.cache import (
    CacheSim,
    ZipfWorkload,
    freq_size_policy,
    lfu_policy,
    lru_policy,
    random_eviction_policy,
)
from repro.cache.eviction import ScoredEvictionPolicy
from repro.simsys.random_source import RandomSource

from benchmarks.conftest import print_table

N_ITEMS = 2000
ALPHA = 0.9
N_REQUESTS = 50000
SAMPLE_SIZE = 10
POOL_SIZE = 16


def total_bytes():
    return sum(
        ZipfWorkload(
            n_items=N_ITEMS, alpha=ALPHA, randomness=RandomSource(0)
        ).size_of(f"item-{i}")
        for i in range(N_ITEMS)
    )


@pytest.fixture(scope="module")
def study():
    capacity = int(total_bytes() * 0.2)  # a 20% cache
    results = {}
    for policy in (
        random_eviction_policy(),
        lru_policy(),
        lfu_policy(),
        freq_size_policy(),
    ):
        pool = POOL_SIZE if isinstance(policy, ScoredEvictionPolicy) else 0
        workload = ZipfWorkload(
            n_items=N_ITEMS, alpha=ALPHA,
            randomness=RandomSource(3, _name="wl"),
        )
        sim = CacheSim(
            capacity, policy, sample_size=SAMPLE_SIZE, seed=3,
            pool_size=pool,
        )
        results[policy.name] = sim.run(
            workload.requests(N_REQUESTS), keep_log=False
        ).hit_rate
    return results, capacity


class TestZipfCache:
    def test_lru_beats_random(self, study):
        results, _ = study
        assert results["lru"] > results["random-eviction"] + 0.01

    def test_lfu_beats_random(self, study):
        """On a stationary Zipf workload frequency is the right signal
        (unlike the big/small trap, where it backfires)."""
        results, _ = study
        assert results["lfu"] > results["random-eviction"] + 0.01

    def test_freq_size_competitive_with_best_heuristic(self, study):
        results, _ = study
        best_classic = max(results["lru"], results["lfu"])
        assert results["freq/size"] > best_classic - 0.02

    def test_hit_rates_sane(self, study):
        results, _ = study
        for name, rate in results.items():
            assert 0.1 < rate < 0.95, f"{name} hit rate {rate} implausible"

    def test_print_table(self, study):
        results, capacity = study
        print_table(
            f"Extension ext-zipf: Zipf({ALPHA}) workload, {N_ITEMS} items, "
            f"{capacity}-byte cache (20%)",
            ["Policy", "Hit rate"],
            [[name, f"{rate:.1%}"] for name, rate in results.items()],
        )

    def test_benchmark_zipf_run(self, benchmark):
        workload = ZipfWorkload(
            n_items=N_ITEMS, alpha=ALPHA,
            randomness=RandomSource(5, _name="wl"),
        )
        requests = list(workload.requests(5000))
        capacity = int(total_bytes() * 0.2)

        def run_once():
            sim = CacheSim(
                capacity, lru_policy(), sample_size=SAMPLE_SIZE, seed=5,
                pool_size=POOL_SIZE,
            )
            return sim.run(requests, keep_log=False)

        benchmark.pedantic(run_once, rounds=2, iterations=1)
