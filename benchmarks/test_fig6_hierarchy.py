"""Figure 6: hierarchical harvesting (Azure Front Door).

Fig. 6 is an architecture figure: the edge proxy balances over service
endpoints (clusters) while standard load balancers distribute within
each cluster.  §5's quantitative point: "This reduces the action space
at each level, allowing us to apply our methodology to both levels."

We run the two-level simulation, harvest *both* levels, and measure:

- each level's ε is 1/(its small action count), so by Eq. 1 each level
  needs far less data than a flat policy over all servers;
- both levels' datasets support off-policy evaluation (the edge-level
  estimate correctly ranks clusters by speed).
"""

import pytest

from repro.core import IPSEstimator, UniformRandomPolicy, ips_sample_size
from repro.loadbalance.frontdoor import Cluster, FrontDoorSim
from repro.loadbalance.policies import send_to_policy
from repro.loadbalance.server import ServerConfig
from repro.loadbalance.workload import Workload
from repro.simsys.random_source import RandomSource

from benchmarks.conftest import print_table

N_CLUSTERS = 4
SERVERS_PER_CLUSTER = 8
TOTAL_SERVERS = N_CLUSTERS * SERVERS_PER_CLUSTER
N_REQUESTS = 20000
TARGET_ERROR = 0.05
K_POLICIES = 10**6


def make_clusters():
    clusters = []
    for c in range(N_CLUSTERS):
        configs = [
            ServerConfig(
                server_id=s,
                base_latency=0.15 + 0.03 * c,  # cluster 0 fastest
                latency_per_connection=0.02,
            )
            for s in range(SERVERS_PER_CLUSTER)
        ]
        clusters.append(Cluster(f"cluster-{c}", configs, UniformRandomPolicy()))
    return clusters


@pytest.fixture(scope="module")
def frontdoor():
    workload = Workload(30.0, randomness=RandomSource(3, _name="wl"))
    sim = FrontDoorSim(
        make_clusters(), UniformRandomPolicy(), workload, seed=3
    )
    return sim.run(N_REQUESTS)


class TestFig6:
    def test_both_levels_harvested_in_full(self, frontdoor):
        assert len(frontdoor.edge_dataset) == N_REQUESTS
        assert sum(
            len(d) for d in frontdoor.cluster_datasets.values()
        ) == N_REQUESTS

    def test_per_level_epsilons(self, frontdoor):
        assert frontdoor.edge_min_propensity == pytest.approx(1 / N_CLUSTERS)
        for dataset in frontdoor.cluster_datasets.values():
            assert dataset.min_propensity() == pytest.approx(
                1 / SERVERS_PER_CLUSTER
            )

    def test_hierarchy_reduces_data_requirement(self):
        """Eq. 1 at each level's ε vs a flat 32-action policy."""
        flat = ips_sample_size(TARGET_ERROR, 1 / TOTAL_SERVERS, k=K_POLICIES)
        edge = ips_sample_size(TARGET_ERROR, 1 / N_CLUSTERS, k=K_POLICIES)
        local = ips_sample_size(
            TARGET_ERROR, 1 / SERVERS_PER_CLUSTER, k=K_POLICIES
        )
        assert flat / edge == pytest.approx(TOTAL_SERVERS / N_CLUSTERS)
        assert flat / local == pytest.approx(
            TOTAL_SERVERS / SERVERS_PER_CLUSTER
        )
        assert flat > 4 * max(edge, local) - 1e-9

    def test_edge_level_evaluation_ranks_clusters(self, frontdoor):
        """Off-policy evaluation on the edge log alone correctly orders
        the clusters by speed."""
        ips = IPSEstimator()
        estimates = [
            ips.estimate(send_to_policy(c), frontdoor.edge_dataset).value
            for c in range(N_CLUSTERS)
        ]
        assert estimates == sorted(estimates)

    def test_edge_context_hides_server_detail(self, frontdoor):
        """The edge sees aggregate cluster load only — the reduced
        action space comes with reduced (but sufficient) context."""
        context = frontdoor.edge_dataset[100].context
        cluster_keys = [k for k in context if k.startswith("cluster_conns_")]
        assert len(cluster_keys) == N_CLUSTERS

    def test_print_figure(self, frontdoor):
        ips = IPSEstimator()
        rows = [
            [
                "edge",
                N_CLUSTERS,
                f"{frontdoor.edge_min_propensity:.3f}",
                len(frontdoor.edge_dataset),
                f"{ips_sample_size(TARGET_ERROR, 1 / N_CLUSTERS, k=K_POLICIES):,.0f}",
            ]
        ]
        for name, dataset in frontdoor.cluster_datasets.items():
            rows.append(
                [
                    name,
                    SERVERS_PER_CLUSTER,
                    f"{dataset.min_propensity():.3f}",
                    len(dataset),
                    f"{ips_sample_size(TARGET_ERROR, 1 / SERVERS_PER_CLUSTER, k=K_POLICIES):,.0f}",
                ]
            )
        rows.append(
            [
                "flat (no hierarchy)",
                TOTAL_SERVERS,
                f"{1 / TOTAL_SERVERS:.3f}",
                "-",
                f"{ips_sample_size(TARGET_ERROR, 1 / TOTAL_SERVERS, k=K_POLICIES):,.0f}",
            ]
        )
        print_table(
            "Figure 6: hierarchical harvesting — per-level action spaces "
            f"and Eq. 1 data needs (error {TARGET_ERROR}, K={K_POLICIES:.0e})",
            ["level", "actions", "epsilon", "tuples harvested",
             "N needed (Eq. 1)"],
            rows,
        )

    def test_benchmark_two_level_simulation(self, benchmark):
        def run_small():
            workload = Workload(30.0, randomness=RandomSource(4, _name="wl"))
            sim = FrontDoorSim(
                make_clusters(), UniformRandomPolicy(), workload, seed=4
            )
            return sim.run(1000)

        benchmark(run_small)
