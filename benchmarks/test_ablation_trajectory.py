"""Ablation abl-traj: trajectory estimators on the load balancer.

§5's diagnosis of the Table 2 failure: plain IPS ignores a policy's
long-term impact on contexts.  Its proposed fix reweighs *sequences* of
actions ("the probability of matching sequences of actions rather than
single actions"), which is unbiased but suffers variance that grows
with the horizon: "since the probability of matching long sequences is
very low, these estimators suffer from high variance."

We measure both halves of that trade-off on the Fig. 5 exploration log
when evaluating the degenerate send-to-1 policy:

- *effective data collapses geometrically*: the fraction of episodes
  with nonzero weight decays like (1/2)^h;
- the trajectory estimator is *less optimistic* than plain IPS about
  send-to-1 (its surviving episodes contain consecutive sends to
  server 1, which already show the latency build-up).
"""

import numpy as np
import pytest

from repro.core import IPSEstimator, UniformRandomPolicy
from repro.core.estimators.trajectory import (
    PerDecisionISEstimator,
    TrajectoryISEstimator,
)
from repro.loadbalance import LoadBalancerSim, Workload, fig5_servers
from repro.loadbalance.harvest import dataset_from_access_log
from repro.loadbalance.policies import random_policy, send_to_policy
from repro.simsys.random_source import RandomSource

from benchmarks.conftest import print_table

HORIZONS = [1, 2, 4, 6, 8]
N_COLLECT = 30000


@pytest.fixture(scope="module")
def study():
    workload = Workload(10.0, randomness=RandomSource(42, _name="wl"))
    sim = LoadBalancerSim(fig5_servers(), random_policy(), workload, seed=42)
    result = sim.run(N_COLLECT)
    dataset = dataset_from_access_log(
        result.access_log, logging_policy=UniformRandomPolicy()
    )
    online_workload = Workload(10.0, randomness=RandomSource(7, _name="wl"))
    online = LoadBalancerSim(
        fig5_servers(), send_to_policy(0), online_workload, seed=7
    ).run(8000).mean_latency

    target = send_to_policy(0)
    ips_value = IPSEstimator().estimate(target, dataset).value
    rows = {}
    for horizon in HORIZONS:
        estimate = TrajectoryISEstimator(horizon).estimate(target, dataset)
        pdis = PerDecisionISEstimator(horizon).estimate(target, dataset)
        rows[horizon] = {
            "tis_value": estimate.value,
            "tis_se": estimate.std_error,
            "match_fraction": estimate.details["nonzero_weight"]
            / estimate.details["episodes"],
            "pdis_se": pdis.std_error,
        }
    return dataset, rows, ips_value, online


class TestTrajectoryAblation:
    def test_match_fraction_decays_geometrically(self, study):
        _, rows, _, _ = study
        for horizon in HORIZONS:
            expected = 0.5**horizon
            assert rows[horizon]["match_fraction"] == pytest.approx(
                expected, rel=0.35
            )

    def test_variance_grows_with_horizon(self, study):
        _, rows, _, _ = study
        ses = [rows[h]["tis_se"] for h in HORIZONS]
        assert ses[-1] > 2 * ses[0]

    def test_pdis_never_worse_than_full_trajectory(self, study):
        _, rows, _, _ = study
        for horizon in HORIZONS:
            assert rows[horizon]["pdis_se"] <= rows[horizon]["tis_se"] * 1.001

    def test_trajectory_less_optimistic_than_ips(self, study):
        """Surviving length-h episodes contain h consecutive sends to
        server 1, whose later requests already feel the queue build-up,
        so the sequence estimate drifts *upward* toward the online
        truth as h grows."""
        _, rows, ips_value, online = study
        long_h = rows[HORIZONS[-1]]["tis_value"]
        assert long_h > ips_value
        # And it closes part of the offline->online gap.
        assert (long_h - ips_value) / (online - ips_value) > 0.1

    def test_ips_badly_underestimates_online(self, study):
        _, _, ips_value, online = study
        assert online > 1.8 * ips_value

    def test_print_table(self, study):
        _, rows, ips_value, online = study
        table = [
            [
                h,
                f"{rows[h]['tis_value']:.3f}",
                f"{rows[h]['tis_se']:.3f}",
                f"{rows[h]['match_fraction']:.4f}",
                f"{rows[h]['pdis_se']:.3f}",
            ]
            for h in HORIZONS
        ]
        print_table(
            f"Ablation abl-traj: evaluating send-to-1 "
            f"(IPS={ips_value:.3f}s, online truth={online:.3f}s)",
            ["horizon", "trajectory-IS value", "std err", "match frac",
             "PDIS std err"],
            table,
        )

    def test_benchmark_trajectory_estimate(self, study, benchmark):
        dataset, _, _, _ = study
        estimator = TrajectoryISEstimator(4)
        benchmark(estimator.estimate, send_to_policy(0), dataset[:5000])
