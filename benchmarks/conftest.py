"""Shared helpers for the benchmark harness.

Every file in this directory regenerates one table or figure from the
paper (or one ablation from DESIGN.md §4).  Conventions:

- expensive setup (simulations, log collection) happens once per module
  in session-scoped fixtures;
- each test *prints* the paper-format rows/series so running
  ``pytest benchmarks/ --benchmark-only -s`` reproduces the artifacts;
- each test asserts the paper's qualitative shape, so a regression in
  any subsystem fails the harness;
- the ``benchmark`` fixture times the representative computational
  kernel of the experiment.
"""

from __future__ import annotations

import csv
import os
import re

#: Every printed table is also dropped here as CSV, ready for plotting.
ARTIFACTS_DIR = os.path.join(os.path.dirname(__file__), "artifacts")


def _slug(title: str) -> str:
    head = title.split(":", 1)[0]
    return re.sub(r"[^a-z0-9]+", "_", head.lower()).strip("_")


def _save_csv(title: str, headers: list, rows: list) -> None:
    os.makedirs(ARTIFACTS_DIR, exist_ok=True)
    path = os.path.join(ARTIFACTS_DIR, _slug(title) + ".csv")
    with open(path, "w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(headers)
        writer.writerows(rows)


def print_table(title: str, headers: list, rows: list) -> None:
    """Print a compact aligned table and save it as a CSV artifact."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title}")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    _save_csv(title, headers, rows)


def print_series(title: str, x_label: str, xs, series: dict) -> None:
    """Print a figure as aligned columns (x plus one column per line)."""
    headers = [x_label] + list(series)
    rows = [
        [xs[i]] + [series[name][i] for name in series]
        for i in range(len(xs))
    ]
    print_table(title, headers, rows)
