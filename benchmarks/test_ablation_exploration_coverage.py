"""Ablation abl-coverage: per-request vs windowed randomization.

§5 "Exploration coverage": "a uniform random load balancing policy
will almost never choose the same server twenty times in a row.  We
will thus lack data to evaluate the long-term impact of a policy that
always sends to one server. ... instead of randomizing each request, a
load balancer could randomize the share of traffic sent to each server
during the next N requests."

We collect exploration logs under (a) per-request uniform randomization
and (b) per-window randomized weights, and compare:

- how often the log contains runs of >= 20 consecutive sends to the
  same server (the long-sequence coverage);
- how much of the load-imbalance context space each log visits;
- the nonzero-match fraction of a horizon-20 trajectory estimator for
  the send-to-1 policy (zero without windowed exploration).
"""

import itertools

import numpy as np
import pytest

from repro.core.estimators.trajectory import TrajectoryISEstimator
from repro.loadbalance import LoadBalancerSim, Workload, fig5_servers
from repro.loadbalance.harvest import dataset_from_access_log
from repro.loadbalance.policies import (
    random_policy,
    send_to_policy,
    window_randomized_weights_policy,
)
from repro.simsys.random_source import RandomSource

from benchmarks.conftest import print_table

N_COLLECT = 20000
RUN_LENGTH = 20


def collect(policy, seed=42):
    workload = Workload(10.0, randomness=RandomSource(seed, _name="wl"))
    sim = LoadBalancerSim(fig5_servers(), policy, workload, seed=seed)
    return sim.run(N_COLLECT)


def longest_runs(upstreams):
    """Count runs of >= RUN_LENGTH consecutive identical choices."""
    count = 0
    for _, group in itertools.groupby(upstreams):
        if len(list(group)) >= RUN_LENGTH:
            count += 1
    return count


def coverage_stats(result):
    upstreams = [e.upstream for e in result.access_log]
    conns = np.array([list(e.connections) for e in result.access_log])
    imbalance = np.abs(conns[:, 0] - conns[:, 1])
    return {
        "long_runs": longest_runs(upstreams),
        "p99_imbalance": float(np.percentile(imbalance, 99)),
        "max_imbalance": float(imbalance.max()),
        "mean_latency": result.mean_latency,
    }


@pytest.fixture(scope="module")
def study():
    per_request = collect(random_policy())
    windowed = collect(
        window_randomized_weights_policy(2, window=50, seed=1,
                                         concentration=0.3)
    )
    stats = {
        "per-request uniform": coverage_stats(per_request),
        "windowed weights": coverage_stats(windowed),
    }
    # Horizon-20 trajectory evaluation of send-to-1 on each log.
    matches = {}
    for name, result in (("per-request uniform", per_request),
                         ("windowed weights", windowed)):
        dataset = dataset_from_access_log(result.access_log)
        estimate = TrajectoryISEstimator(RUN_LENGTH).estimate(
            send_to_policy(0), dataset
        )
        matches[name] = (
            estimate.details["nonzero_weight"] / estimate.details["episodes"]
        )
    return stats, matches


class TestExplorationCoverage:
    def test_uniform_almost_never_runs_twenty(self, study):
        stats, _ = study
        # P(20 identical coin flips) ~ 2 * 2^-20; ~20000 requests ->
        # essentially never.
        assert stats["per-request uniform"]["long_runs"] == 0

    def test_windowed_produces_long_runs(self, study):
        stats, _ = study
        assert stats["windowed weights"]["long_runs"] > 10

    def test_windowed_visits_imbalanced_contexts(self, study):
        stats, _ = study
        assert (
            stats["windowed weights"]["p99_imbalance"]
            > 1.5 * stats["per-request uniform"]["p99_imbalance"]
        )

    def test_windowed_enables_long_horizon_evaluation(self, study):
        """Horizon-20 trajectory matching for send-to-1: essentially
        zero on uniform logs, materially positive on windowed logs."""
        _, matches = study
        assert matches["per-request uniform"] < 1e-4
        assert matches["windowed weights"] > 20 * max(
            matches["per-request uniform"], 1e-6
        )

    def test_exploration_cost_is_bounded(self, study):
        """Richer exploration costs some live latency, but not a
        catastrophic amount (the 'less invasive than deploying a new
        learning system' argument)."""
        stats, _ = study
        assert (
            stats["windowed weights"]["mean_latency"]
            < 2.0 * stats["per-request uniform"]["mean_latency"]
        )

    def test_print_table(self, study):
        stats, matches = study
        rows = [
            [
                name,
                s["long_runs"],
                f"{s['p99_imbalance']:.1f}",
                f"{s['max_imbalance']:.0f}",
                f"{s['mean_latency']:.3f}s",
                f"{matches[name]:.5f}",
            ]
            for name, s in stats.items()
        ]
        print_table(
            "Ablation abl-coverage: exploration coverage of logging "
            f"schemes ({N_COLLECT} requests)",
            ["logging policy", f">={RUN_LENGTH}-runs", "p99 imbalance",
             "max imbalance", "mean latency", f"h={RUN_LENGTH} match frac"],
            rows,
        )

    def test_benchmark_windowed_collection(self, benchmark):
        def run_small():
            return collect(
                window_randomized_weights_policy(2, window=50, seed=2),
                seed=5,
            ).n_requests

        benchmark.pedantic(run_small, rounds=1, iterations=1)
