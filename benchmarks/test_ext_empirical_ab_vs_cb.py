"""Extension ext-fig1-empirical: Fig. 1's claim, measured.

Fig. 1 compares A/B testing and CB evaluation through their *bounds*.
This bench runs the horse race empirically on a known synthetic
environment, at a fixed interaction budget N:

- **A/B**: split N evenly over the K candidates, run each on its
  slice, pick the best arm.
- **CB**: spend the same N on uniform-random exploration once, IPS-
  evaluate all K candidates offline, pick the best.

We score both by the *regret* of the policy they pick (true value of
the best candidate minus true value of the picked one), averaged over
replications.  As K grows with N fixed, A/B's per-arm slice starves
and its picks degrade; CB's shared log keeps identifying near-best
policies — the measured form of "exponentially more data-efficient".
"""

import numpy as np
import pytest

from repro.core.estimators.ips import IPSEstimator
from repro.core.policies import LinearThresholdPolicy, Policy, UniformRandomPolicy
from repro.core.types import ActionSpace, Dataset, Interaction

from benchmarks.conftest import print_table

N_BUDGET = 3000
K_GRID = [2, 8, 32, 128]
N_REPLICATIONS = 40
N_ACTIONS = 3


def reward_mean(context, action):
    return 0.2 + 0.15 * action + 0.3 * context["x"] * (1 if action == 2 else -1)


def draw_reward(context, action, rng):
    return float(np.clip(reward_mean(context, action) + rng.normal(0, 0.1),
                         0, 1))


def make_candidates(k, rng) -> list[Policy]:
    """K linear-threshold candidates (plus useful diversity)."""
    policies = []
    for index in range(k):
        weights = rng.normal(0.0, 1.0, size=(N_ACTIONS, 2))
        policies.append(
            LinearThresholdPolicy(weights, ["x"], name=f"cand-{index}")
        )
    return policies


def true_value(policy, contexts):
    actions = [policy.action(c, list(range(N_ACTIONS))) for c in contexts]
    return float(np.mean([reward_mean(c, a) for c, a in zip(contexts, actions)]))


def _chosen_actions(weight_stack: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Vectorized argmax actions: (K, A, 2) weights x (N,) contexts →
    (K, N) chosen actions.  Matches LinearThresholdPolicy exactly."""
    phi = np.stack([xs, np.ones_like(xs)])  # (2, N)
    scores = weight_stack @ phi  # (K, A, N)
    return scores.argmax(axis=1)


def _reward_means(xs: np.ndarray, actions: np.ndarray) -> np.ndarray:
    """Vectorized reward_mean over contexts/action arrays."""
    sign = np.where(actions == 2, 1.0, -1.0)
    return 0.2 + 0.15 * actions + 0.3 * xs * sign


@pytest.fixture(scope="module")
def study():
    eval_rng = np.random.default_rng(999)
    eval_xs = eval_rng.uniform(-1, 1, size=3000)

    regrets = {"ab": {}, "cb": {}}
    for k in K_GRID:
        weight_rng = np.random.default_rng(k)
        weight_stack = weight_rng.normal(0.0, 1.0, size=(k, N_ACTIONS, 2))
        truth_actions = _chosen_actions(weight_stack, eval_xs)  # (K, N)
        truths = _reward_means(eval_xs[None, :], truth_actions).mean(axis=1)
        best = truths.max()

        ab_regret, cb_regret = [], []
        for rep in range(N_REPLICATIONS):
            rng = np.random.default_rng(1000 * k + rep)

            # --- A/B: each arm runs on its slice of live traffic.
            per_arm = N_BUDGET // k
            ab_xs = rng.uniform(-1, 1, size=(k, per_arm))
            means = np.empty(k)
            for index in range(k):
                actions = _chosen_actions(
                    weight_stack[index:index + 1], ab_xs[index]
                )[0]
                rewards = np.clip(
                    _reward_means(ab_xs[index], actions)
                    + rng.normal(0, 0.1, size=per_arm),
                    0, 1,
                )
                means[index] = rewards.mean()
            ab_regret.append(best - truths[int(np.argmax(means))])

            # --- CB: one uniform-random log, IPS for every candidate.
            log_xs = rng.uniform(-1, 1, size=N_BUDGET)
            log_actions = rng.integers(N_ACTIONS, size=N_BUDGET)
            log_rewards = np.clip(
                _reward_means(log_xs, log_actions)
                + rng.normal(0, 0.1, size=N_BUDGET),
                0, 1,
            )
            chosen = _chosen_actions(weight_stack, log_xs)  # (K, N)
            matches = chosen == log_actions[None, :]
            estimates = (matches * log_rewards[None, :] * N_ACTIONS).mean(
                axis=1
            )
            cb_regret.append(best - truths[int(np.argmax(estimates))])
        regrets["ab"][k] = float(np.mean(ab_regret))
        regrets["cb"][k] = float(np.mean(cb_regret))
    return regrets


class TestEmpiricalABvsCB:
    def test_vectorization_matches_policy_objects(self):
        """The fast path must agree with LinearThresholdPolicy and
        IPSEstimator exactly (spot-checked on a small instance)."""
        rng = np.random.default_rng(5)
        weight_stack = rng.normal(size=(4, N_ACTIONS, 2))
        xs = rng.uniform(-1, 1, size=50)
        fast = _chosen_actions(weight_stack, xs)
        for index in range(4):
            policy = LinearThresholdPolicy(weight_stack[index], ["x"])
            slow = [
                policy.action({"x": float(x)}, list(range(N_ACTIONS)))
                for x in xs
            ]
            assert fast[index].tolist() == slow

        # Vectorized IPS == IPSEstimator on the same log.
        log_actions = rng.integers(N_ACTIONS, size=50)
        log_rewards = rng.uniform(0, 1, size=50)
        log = Dataset(action_space=ActionSpace(N_ACTIONS))
        for t in range(50):
            log.append(
                Interaction({"x": float(xs[t])}, int(log_actions[t]),
                            float(log_rewards[t]), 1 / N_ACTIONS, float(t))
            )
        policy = LinearThresholdPolicy(weight_stack[0], ["x"])
        slow_estimate = IPSEstimator().estimate(policy, log).value
        matches = fast[0] == log_actions
        fast_estimate = float((matches * log_rewards * N_ACTIONS).mean())
        assert fast_estimate == pytest.approx(slow_estimate)

    def test_cb_regret_stays_flat_as_k_grows(self, study):
        cb = [study["cb"][k] for k in K_GRID]
        assert cb[-1] < 0.05  # still near-best at K=128

    def test_ab_regret_grows_with_k(self, study):
        ab = study["ab"]
        assert ab[K_GRID[-1]] > ab[K_GRID[0]]

    def test_cb_beats_ab_at_large_k(self, study):
        k = K_GRID[-1]
        assert study["cb"][k] < study["ab"][k]

    def test_comparable_at_small_k(self, study):
        """With K=2 both methods have plenty of data per candidate —
        neither should be badly wrong."""
        assert study["ab"][2] < 0.05
        assert study["cb"][2] < 0.05

    def test_print_table(self, study):
        rows = [
            [k, f"{study['ab'][k]:.4f}", f"{study['cb'][k]:.4f}"]
            for k in K_GRID
        ]
        print_table(
            f"Extension ext-fig1-empirical: regret of the selected "
            f"policy (budget N={N_BUDGET}, {N_REPLICATIONS} reps)",
            ["K candidates", "A/B regret", "CB (offline) regret"],
            rows,
        )

    def test_benchmark_cb_selection(self, benchmark):
        rng = np.random.default_rng(0)
        candidates = make_candidates(16, rng)
        log = Dataset(action_space=ActionSpace(N_ACTIONS))
        for t in range(500):
            context = {"x": float(rng.uniform(-1, 1))}
            action = int(rng.integers(N_ACTIONS))
            log.append(
                Interaction(context, action,
                            draw_reward(context, action, rng),
                            1 / N_ACTIONS, float(t))
            )
        ips = IPSEstimator()

        def select():
            return int(np.argmax(
                [ips.estimate(p, log).value for p in candidates]
            ))

        benchmark.pedantic(select, rounds=2, iterations=1)
