"""Table 3: cache-eviction hit rates on the big/small workload.

Paper (Redis):

    Policy   | Random | LRU   | LFU   | CB policy | Freq/size
    Hit rate | 48.5%  | 48.2% | 44.0% | 48.7%     | 58.9%

"Both the CB policy and LRU perform as poorly as random eviction,
because they greedily keep the large items ... a policy manually
designed to take size into account (by optimizing the ratio of access
frequency to size) has a hitrate 10 percentage points higher."

Shape we assert: CB ≈ LRU ≈ random (within a couple of points), LFU at
or below that cluster, and freq/size clearly on top.  Our sampled-
eviction substrate reproduces the ordering with a somewhat smaller
winning margin (~5 points; see EXPERIMENTS.md for why).
"""

import pytest

from repro.cache import (
    BigSmallWorkload,
    CacheSim,
    eviction_dataset_from_log,
    freq_size_policy,
    lfu_policy,
    lru_policy,
    random_eviction_policy,
    train_cb_eviction,
)
from repro.cache.eviction import ScoredEvictionPolicy
from repro.simsys.random_source import RandomSource

from benchmarks.conftest import print_table

CAPACITY = 700       # bytes; total item population is 1400
SAMPLE_SIZE = 10     # Redis maxmemory-samples
POOL_SIZE = 16       # Redis eviction pool, for deterministic policies
N_REQUESTS = 50000
DEPLOY_SEED = 3


def deploy(policy):
    """Ground-truth hit rate of a policy in the prototype."""
    pool = POOL_SIZE if isinstance(policy, ScoredEvictionPolicy) else 0
    workload = BigSmallWorkload(
        randomness=RandomSource(DEPLOY_SEED, _name="wl")
    )
    sim = CacheSim(
        CAPACITY, policy, sample_size=SAMPLE_SIZE, seed=DEPLOY_SEED,
        pool_size=pool,
    )
    return sim.run(workload.requests(N_REQUESTS), keep_log=False).hit_rate


@pytest.fixture(scope="module")
def table3():
    # Collect exploration data under the random policy (plain sampling,
    # clean 1/k propensities), harvest, train the CB policy.
    workload = BigSmallWorkload(randomness=RandomSource(11, _name="wl"))
    collector = CacheSim(
        CAPACITY, random_eviction_policy(), sample_size=SAMPLE_SIZE, seed=11
    )
    collection = collector.run(workload.requests(N_REQUESTS))
    dataset = eviction_dataset_from_log(
        collection.log_lines, sample_size=SAMPLE_SIZE
    )
    cb_policy = train_cb_eviction(dataset)
    return {
        "Random": deploy(random_eviction_policy()),
        "LRU": deploy(lru_policy()),
        "LFU": deploy(lfu_policy()),
        "CB policy": deploy(cb_policy),
        "Freq/size": deploy(freq_size_policy()),
    }


class TestTable3:
    def test_freq_size_wins(self, table3):
        best_other = max(
            v for name, v in table3.items() if name != "Freq/size"
        )
        assert table3["Freq/size"] > best_other + 0.03

    def test_cb_clusters_with_random_and_lru(self, table3):
        """The greedy CB policy is no better than the simple
        heuristics — the long-term-reward failure."""
        cluster = [table3["Random"], table3["LRU"], table3["CB policy"]]
        assert max(cluster) - min(cluster) < 0.03

    def test_lfu_at_bottom_of_cluster(self, table3):
        """LFU keeps the (individually hotter) big items hardest."""
        assert table3["LFU"] <= table3["Random"]
        assert table3["LFU"] <= table3["LRU"] + 0.01

    def test_absolute_scale_near_paper(self, table3):
        """Random should land in the paper's neighborhood (~48%)."""
        assert 0.40 < table3["Random"] < 0.56

    def test_only_size_awareness_escapes_the_trap(self, table3):
        """Every policy that ignores item size sits within a few points
        of random; the size-aware one escapes by a clear margin."""
        size_blind = [
            table3[name] for name in ("Random", "LRU", "LFU", "CB policy")
        ]
        assert table3["Freq/size"] - max(size_blind) > 2 * (
            max(size_blind) - min(size_blind)
        ) / 2

    def test_print_table(self, table3):
        print_table(
            "Table 3: hit rates of eviction policies (Redis sim, "
            "big/small workload)",
            ["Policy", "Hit rate"],
            [[name, f"{rate:.1%}"] for name, rate in table3.items()],
        )

    def test_benchmark_cache_run(self, benchmark):
        workload = BigSmallWorkload(randomness=RandomSource(5, _name="wl"))
        requests = list(workload.requests(5000))

        def run_once():
            sim = CacheSim(
                CAPACITY, random_eviction_policy(),
                sample_size=SAMPLE_SIZE, seed=5,
            )
            return sim.run(requests, keep_log=False)

        benchmark(run_once)
